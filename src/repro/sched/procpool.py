"""Process-isolated crawl workers with a single-writer storage broker.

The thread pool (:mod:`repro.sched.pool`) can *detect* a hung visit via
the watchdog but cannot kill it — a wedged JS interpretation holds its
thread (and the GIL) forever. This module gives the watchdog teeth:

* each worker is a **spawned subprocess** owning one browser slot and a
  worker-local in-memory :class:`StorageController`;
* workers claim jobs from the shared SQLite :class:`JobQueue` (WAL mode
  + busy timeout, wall-clock leases valid across processes);
* every record a job produced is exported from the worker database and
  shipped over a pipe to the coordinator's **storage broker** — the one
  and only writer of the crawl database, so SQLite never sees
  concurrent writers and the lease-retraction semantics of the thread
  path keep working unchanged;
* the broker applies *final* job resolutions in strict job-id order, so
  a clean N-process crawl lands byte-identical visit ids and row order
  to the 1-worker inline path;
* a supervisor watches per-worker heartbeats and walks the ladder
  **heartbeat miss → SIGKILL → lease release → respawn (with crash-loop
  backoff) → pool shrink → crawl abort**, keeping the queue's
  exactly-once accounting intact at every rung.

**Sharded storage mode** (``shard_dbs=True``, the ``--shard-dbs``
flag): the broker round-trip disappears. Each worker owns a private
*file-backed* shard database (``<db>.shards/shard-NN.sqlite``), writes
visit records locally, and resolves its own queue verdicts — the pipes
carry only lifecycle events (claim/complete/fail/lost + metric
snapshots), so storage throughput scales with worker count instead of
serializing through one writer. A :class:`ShardRecorder` in every
shard records per-attempt row ranges, the coordinator ledgers reclaim
terminals into its own ``coordinator.sqlite`` shard, and the
end-of-crawl merge (:mod:`repro.openwpm.merge`) folds everything into
the canonical database in strict job-id order — byte-identical to the
broker path on clean runs, and to the inline path under the chaos
scenarios the tests pin. ``pin_cpus=True`` additionally pins each
worker to one CPU via ``os.sched_setaffinity`` (a no-op with a warning
where unsupported).

Fault injection: the plan's ``proc.claim`` / ``proc.mid_visit`` /
``proc.envelope`` / ``proc.resolve`` / ``proc.respawn`` points drive
``worker_sigkill``, ``broker_pipe_error``, ``respawn_failure`` and
*real-time* ``hang`` faults (see :mod:`repro.faults.plan`). Workers
report proc-level rule firings before executing them, so a respawned
worker pre-consumes the spent ``times`` budget and a kill-once rule
kills exactly once per lineage.

Determinism caveats (documented, asserted by tests where it matters):

* clean runs (no faults) are byte-identical to the inline path for any
  worker count;
* under faults, *site-level exactly-once* accounting always holds
  (every enqueued site ends exactly once across completed /
  ``failed_visits`` / ``quarantined_sites``), but metric books may
  undercount for SIGKILLed workers (their last heartbeat snapshot is
  the final word) and ``times``/``nth`` budgets of visit-level rules
  are per-process.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import sys
import time
from dataclasses import dataclass, field, replace
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.clock import WallClock
from repro.obs.telemetry import Telemetry, coalesce
from repro.sched.jobs import Job, JobQueue, LeaseError

#: Real seconds a worker may stay silent before the supervisor SIGKILLs
#: it. Generous by default — worker start-up imports and world building
#: happen before the first heartbeat.
DEFAULT_HEARTBEAT_DEADLINE = 60.0
#: Abnormal deaths per slot before the pool shrinks instead of
#: respawning (the crash-loop ladder's last rung before abort).
DEFAULT_RESPAWN_LIMIT = 3


# ----------------------------------------------------------------------
# Worker specification (must stay picklable for the spawn context)
# ----------------------------------------------------------------------
@dataclass
class WorkerSpec:
    """Everything a worker process needs to rebuild its slice of the
    crawl. Plain data only — this crosses the spawn pickle boundary."""

    kind: str                       # "crawl" | "scan"
    slot: int                       # stable slot index
    owner: str                      # unique lease owner (per incarnation)
    queue_path: str
    seed: int = 0
    # crawl: worker-local manager config (fault_plan stripped — it is
    # rebuilt from ``fault_plan`` below; database_path is ":memory:").
    manager_params: Any = None
    browser_params: Any = None
    web: str = "lab"                # "lab" | "tranco"
    site_count: int = 0
    world_seed: int = 7             # build_world seed (tranco/scan webs)
    fault_plan: Optional[Dict[str, Any]] = None
    #: rule index -> firings already spent by this slot's dead
    #: predecessors (pre-consumed so kill-once rules kill once).
    fault_spent: Dict[int, int] = field(default_factory=dict)
    max_attempts: int = 2
    lease_seconds: float = 300.0
    backoff_base: float = 0.5
    backoff_cap: float = 60.0
    journal_dir: Optional[str] = None
    heartbeat_seconds: float = 1.0
    poll_seconds: float = 0.05
    #: max jobs this incarnation may claim (checkpoint stops: the
    #: coordinator's stop broadcast races fire-and-forget workers, so
    #: the budget is what makes ``stop_after_jobs`` deterministic).
    claim_budget: Optional[int] = None
    #: sharded storage mode: the worker's private shard database (crawl)
    #: or result spool (scan). ``None`` keeps the broker path.
    shard_path: Optional[str] = None
    #: pin this worker process to one CPU (``--pin-cpus``).
    pin_cpu: Optional[int] = None
    # scan:
    scan_client_id: str = "scan-client"
    scan_dwell: float = 60.0
    scan_max_subpages: int = 3
    scan_visit_subpages: bool = True


# ----------------------------------------------------------------------
# Metrics snapshot diffing (cumulative worker snapshot -> delta)
# ----------------------------------------------------------------------
def _labels_key(labels: Dict[str, Any]) -> Tuple:
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


def diff_snapshots(prev: Optional[List[Dict[str, Any]]],
                   curr: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The delta between two cumulative metric snapshots.

    Counters and histograms subtract (so applying the delta via
    :meth:`MetricsRegistry.restore` is additive and idempotent per
    message); gauges pass through absolute (restore adopts the value).
    """
    prev_map = {(m["name"], m["kind"], _labels_key(m.get("labels", {}))): m
                for m in (prev or [])}
    delta: List[Dict[str, Any]] = []
    for metric in curr:
        key = (metric["name"], metric["kind"],
               _labels_key(metric.get("labels", {})))
        base = prev_map.get(key)
        if metric["kind"] == "counter":
            value = metric["value"] - (base["value"] if base else 0.0)
            if value:
                delta.append({**metric, "value": value})
        elif metric["kind"] == "gauge":
            delta.append(dict(metric))
        else:  # histogram
            base_counts = base["bucket_counts"] if base \
                else [0] * len(metric["bucket_counts"])
            counts = [c - b for c, b in
                      zip(metric["bucket_counts"], base_counts)]
            count = metric["count"] - (base["count"] if base else 0)
            if count or any(counts):
                delta.append({**metric, "count": count,
                              "sum": metric["sum"]
                              - (base["sum"] if base else 0.0),
                              "bucket_counts": counts})
    return delta


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _send(conn: Any, message: Dict[str, Any]) -> None:
    conn.send(message)


def _build_worker_plan(spec: WorkerSpec) -> Optional[Any]:
    from repro.faults.plan import FaultPlan

    if spec.fault_plan is None:
        return None
    plan = FaultPlan.from_dict(spec.fault_plan)
    for index, fires in (spec.fault_spent or {}).items():
        plan.preconsume(int(index), int(fires))
    return plan


class _ProcFaults:
    """Worker-side handler for the ``proc.*`` choke points."""

    def __init__(self, plan: Optional[Any], conn: Any,
                 journal: Any) -> None:
        self.plan = plan
        self.conn = conn
        self.journal = journal

    def install_reporting(self) -> None:
        """Report proc-level firings to the supervisor *before* their
        effect runs, chaining any hook the task manager installed."""
        if self.plan is None:
            return
        previous = self.plan.on_trigger

        def on_trigger(point: str, url: str, index: int,
                       fault: str) -> None:
            if previous is not None:
                previous(point, url, index, fault)
            if point.startswith("proc."):
                try:
                    _send(self.conn, {"type": "fault_fired",
                                      "rule": index, "fault": fault,
                                      "point": point})
                except (OSError, ValueError):
                    pass  # pipe gone; the supervisor infers the death

        self.plan.on_trigger = on_trigger

    def check(self, point: str, url: str = "") -> None:
        """Fire a proc-level fault if one matches. May not return."""
        if self.plan is None:
            return
        rule = self.plan.check(point, url)
        if rule is None:
            return
        from repro.faults.plan import DEFAULT_HANG_SECONDS

        if rule.fault == "worker_sigkill":
            self.journal.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        elif rule.fault == "broker_pipe_error":
            # Poison the envelope channel: the next send raises, the
            # worker dies, the supervisor reaps and re-runs the job.
            self.journal.flush()
            self.conn.close()
            raise RuntimeError("broker pipe error (injected)")
        elif rule.fault == "hang":
            # REAL wall time with no heartbeats — only the supervisor's
            # SIGKILL ladder rescues the slot.
            time.sleep(rule.seconds or DEFAULT_HANG_SECONDS)
        # Other kinds are meaningless at proc points; ignore.


def _apply_cpu_pin(spec: WorkerSpec, conn: Any) -> None:
    """Pin this process to its slot's CPU, or report why not.

    ``sched_setaffinity`` is Linux-only; elsewhere (and on failure)
    pinning degrades to a no-op plus a supervisor-side warning.
    """
    if spec.pin_cpu is None:
        return
    if not hasattr(os, "sched_setaffinity"):
        _send(conn, {"type": "pin_failed",
                     "reason": "os.sched_setaffinity unsupported "
                               "on this platform"})
        return
    try:
        os.sched_setaffinity(0, {spec.pin_cpu})
        _send(conn, {"type": "pinned", "cpu": spec.pin_cpu})
    except OSError as exc:
        _send(conn, {"type": "pin_failed", "reason": repr(exc)})


def _worker_entry(spec: WorkerSpec, conn: Any) -> None:
    """Spawn entry point (module-level so the spawn context can pickle
    a reference to it)."""
    from repro.obs.journal import NULL_JOURNAL, Journal

    _apply_cpu_pin(spec, conn)
    telemetry = Telemetry()
    journal: Any = NULL_JOURNAL
    if spec.journal_dir is not None:
        # Each worker process claims its own journal epoch through the
        # MANIFEST (atomic O_EXCL claim), so a respawn's fresh epoch
        # never interleaves with a SIGKILLed predecessor's torn tail.
        journal = Journal(spec.journal_dir, telemetry.clock)
        telemetry.attach_journal(journal)
    try:
        if spec.kind == "crawl":
            _run_crawl_worker(spec, conn, telemetry, journal)
        elif spec.kind == "scan":
            _run_scan_worker(spec, conn, telemetry, journal)
        else:  # pragma: no cover - spec built by this module
            raise ValueError(f"unknown worker kind {spec.kind!r}")
    except BaseException as exc:  # noqa: BLE001 - shipped to supervisor
        try:
            _send(conn, {"type": "fatal", "error": repr(exc),
                         "metrics": telemetry.metrics.snapshot()})
        except (OSError, ValueError):
            pass
        raise
    finally:
        journal.flush()
        journal.close()
        try:
            conn.close()
        except OSError:
            pass


def _open_worker_queue(spec: WorkerSpec) -> JobQueue:
    return JobQueue(spec.queue_path, seed=spec.seed,
                    max_attempts=spec.max_attempts,
                    lease_seconds=spec.lease_seconds,
                    backoff_base=spec.backoff_base,
                    backoff_cap=spec.backoff_cap, clock=WallClock())


def _poll_stop(conn: Any) -> bool:
    """Drain coordinator->worker messages; True when a stop arrived."""
    stop = False
    while conn.poll():
        try:
            message = conn.recv()
        except EOFError:
            return True
        if isinstance(message, dict) and message.get("type") == "stop":
            stop = True
    return stop


class _Heartbeat:
    def __init__(self, conn: Any, telemetry: Telemetry,
                 interval: float) -> None:
        self.conn = conn
        self.telemetry = telemetry
        self.interval = interval
        self._last = 0.0

    def beat(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        _send(self.conn, {"type": "heartbeat",
                          "metrics": self.telemetry.metrics.snapshot()})


def _run_crawl_worker(spec: WorkerSpec, conn: Any, telemetry: Telemetry,
                      journal: Any) -> None:
    from repro.openwpm.task_manager import TaskManager
    from repro.sched.pool import JobFailed

    if spec.web == "tranco":
        from repro.web import build_world

        network = build_world(site_count=spec.site_count,
                              seed=spec.world_seed).network
    else:
        from repro.core.lab import make_lab_network

        network = make_lab_network()

    plan = _build_worker_plan(spec)
    # Worker databases are never read paths: the canonical rollups are
    # maintained by the broker (or rebuilt by the merge) on the
    # coordinator side, so maintaining them here too would only burn
    # CPU on aggregates nobody queries.
    os.environ["REPRO_ROLLUPS"] = "off"
    manager = TaskManager(
        replace(spec.manager_params, num_browsers=1,
                database_path=spec.shard_path or ":memory:",
                fault_plan=plan),
        [spec.browser_params], network, telemetry=telemetry)
    faults = _ProcFaults(manager.fault_plan, conn, journal)
    faults.install_reporting()

    queue = _open_worker_queue(spec)
    recorder = None
    if spec.shard_path is not None:
        from repro.openwpm.storage_shard import ShardRecorder

        recorder = ShardRecorder(manager.storage)
        # A predecessor incarnation may have died inside the
        # provisional window or mid-visit; settle its rows against the
        # queue and prune anything it never recorded.
        recorder.recover(queue)
    wall = queue.clock
    journal.bind_worker(spec.owner)
    tm = telemetry
    busy = tm.metrics.gauge("sched_workers_busy")
    queue_wait = tm.metrics.histogram("sched_queue_wait_seconds")
    lease_duration = tm.metrics.histogram("sched_lease_seconds")
    heartbeat = _Heartbeat(conn, telemetry, spec.heartbeat_seconds)

    # Per-job export cursors into the worker-local database: everything
    # past a cursor belongs to the job that just ran (including the
    # partial visits a crashed attempt committed, exactly as inline).
    visit_cursor = 0
    content_cursor = 0
    ledger_cursors = {"crash_history": 0, "failed_visits": 0,
                      "quarantined_sites": 0}

    def export_envelope() -> Dict[str, Any]:
        nonlocal visit_cursor, content_cursor
        storage = manager.storage
        visits = []
        for visit_id in storage.visit_ids_since(visit_cursor):
            visits.append(storage.export_visit(visit_id))
            visit_cursor = visit_id
        content_cursor, content = \
            storage.export_content_rows(content_cursor)
        ledger: Dict[str, List[Tuple]] = {}
        for table in ledger_cursors:
            ledger_cursors[table], rows = \
                storage.export_ledger_rows(table, ledger_cursors[table])
            ledger[table] = rows
        return {"visits": visits, "content": content, "ledger": ledger}

    _send(conn, {"type": "ready", "owner": spec.owner,
                 "pid": os.getpid()})
    claimed = 0
    try:
        while True:
            if _poll_stop(conn) or (spec.claim_budget is not None
                                    and claimed >= spec.claim_budget):
                _send(conn, {"type": "stopped",
                             "metrics": tm.metrics.snapshot()})
                return
            heartbeat.beat()
            job = queue.claim(spec.owner)
            if job is None:
                counts = queue.counts()
                if counts.get("pending", 0) == 0 \
                        and counts.get("leased", 0) == 0:
                    _send(conn, {"type": "drained",
                                 "metrics": tm.metrics.snapshot()})
                    return
                time.sleep(spec.poll_seconds)
                continue
            claimed += 1
            faults.check("proc.claim", job.site_url)
            journal.emit("lease_claim", job_id=job.job_id,
                         url=job.site_url, attempts=job.attempts)
            tm.metrics.counter("sched_jobs_claimed").inc()
            queue_wait.observe(max(0.0, job.claimed_at
                                   - job.enqueued_at))
            busy.inc()
            attempt_lo = recorder.watermarks() \
                if recorder is not None else None
            resolution: Dict[str, Any]
            try:
                result = _run_crawl_job(spec, manager, faults, heartbeat,
                                        job)
                if result is None:
                    if manager.is_quarantined(job.site_url):
                        raise JobFailed("quarantined", retry=False)
                    raise JobFailed("failure_limit", retry=False)
                resolution = {"kind": "complete", "error": ""}
            except JobFailed as failure:
                resolution = {"kind": "terminal" if not failure.retry
                              else "retry", "error": failure.reason}
            except Exception as exc:  # noqa: BLE001 - mirrors pool
                resolution = {"kind": "retry", "error": repr(exc)}
            finally:
                busy.dec()
                lease_duration.observe(max(0.0, wall.peek()
                                           - job.claimed_at))
            faults.check("proc.envelope", job.site_url)
            if recorder is not None:
                _resolve_sharded(spec, manager, faults, queue, recorder,
                                 job, resolution, attempt_lo, conn,
                                 telemetry)
                continue
            envelope = export_envelope()
            _send(conn, {
                "type": "resolution", "job_id": job.job_id,
                "owner": spec.owner, "site_url": job.site_url,
                "attempts": job.attempts,
                "browser_id": spec.browser_params.browser_id,
                "quarantined": manager.is_quarantined(job.site_url),
                "metrics": tm.metrics.snapshot(), **resolution,
                **envelope})
    finally:
        journal.unbind()
        queue.close()
        manager.storage.close()


def _run_crawl_job(spec: WorkerSpec, manager: Any, faults: _ProcFaults,
                   heartbeat: _Heartbeat, job: Job) -> Any:
    from repro.openwpm.task_manager import CommandSequence

    def mid_visit(browser: Any, result: Any,
                  url: str = job.site_url) -> None:
        # Runs at the visit.callbacks stage of every attempt: the
        # natural place for a mid-visit SIGKILL (records exist, the
        # envelope was never shipped) and for an in-visit heartbeat.
        heartbeat.beat(force=True)
        faults.check("proc.mid_visit", url)

    return manager.execute_command_sequence(
        CommandSequence(url=job.site_url, callbacks=[mid_visit]),
        slot=manager.browsers[0], propagate_hangs=True)


def _resolve_sharded(spec: WorkerSpec, manager: Any, faults: _ProcFaults,
                     queue: JobQueue, recorder: Any, job: Job,
                     resolution: Dict[str, Any], attempt_lo: Dict[str, int],
                     conn: Any, telemetry: Telemetry) -> None:
    """Shard-mode verdict: the worker IS the broker for its own jobs.

    Mirrors ``CrawlBroker._apply_complete`` / ``_apply_terminal`` /
    ``_apply_retry`` against the local shard: the ledgering, counters,
    journal events, and lease-race retractions all happen here, and the
    coordinator only hears a lifecycle summary. The shard_jobs row is
    provisional across the queue call (see
    :mod:`repro.openwpm.storage_shard` for the crash-window story).
    """
    tm = telemetry
    journal = tm.journal
    url = job.site_url
    kind = resolution["kind"]
    error = resolution["error"]
    quarantined = manager.is_quarantined(url)
    exhausted = kind == "retry" and job.attempts >= spec.max_attempts
    final_kind = "terminal" if exhausted else kind
    if final_kind == "terminal" \
            and error not in ("failure_limit", "quarantined") \
            and not quarantined:
        # Speculative mirror of the broker's ``_record_terminal``: the
        # given-up ledger row must land inside this attempt's ranges,
        # and the exhaustion test is the exact predicate ``queue.fail``
        # applies. A lost lease voids it with the rest of the attempt.
        manager._record_given_up(spec.browser_params.browser_id, url,
                                 job.attempts, error)
    seq, attempt_hi = recorder.record_provisional(
        job_id=job.job_id, attempts=job.attempts, owner=spec.owner,
        site_url=url, browser_id=spec.browser_params.browser_id,
        kind=final_kind, error=error, quarantined=quarantined,
        lo=attempt_lo)
    faults.check("proc.resolve", url)
    applied = True
    state = ""
    try:
        if kind == "complete":
            queue.complete(job.job_id, spec.owner)
            state = "completed"
        else:
            state = queue.fail(job.job_id, spec.owner, error=error,
                               retry=kind == "retry")
    except LeaseError:
        applied = False
    if applied:
        if kind == "complete":
            journal.emit("lease_complete", job_id=job.job_id, url=url)
            tm.metrics.counter("sched_jobs_completed").inc()
            if quarantined:
                # A hung sibling attempt tripped this worker's breaker
                # while the visit was in flight; the queue accepted the
                # completion, so the shard's quarantine row is stale.
                manager._retract_stale_quarantine(url)
        else:
            journal.emit("lease_fail", job_id=job.job_id, url=url,
                         state=state, error=error)
            if state == "failed":
                tm.metrics.counter("sched_jobs_failed").inc()
            else:
                tm.metrics.counter("sched_jobs_retried").inc()
    else:
        # Lease race lost: void the attempt locally, exactly as the
        # broker's ``_discard`` voids a shipped envelope — visits go,
        # content and crash rows stay, failed rows retract site-wide,
        # a stale quarantine retracts iff the job actually completed.
        journal.emit("lease_lost", job_id=job.job_id, url=url)
        tm.metrics.counter("sched_leases_lost").inc()
        for visit_id in recorder.visit_ids_in(
                attempt_lo["site_visits"], attempt_hi["site_visits"]):
            journal.emit("visit_discarded", url=url, visit_id=visit_id)
            manager._count_discarded(
                manager.storage.delete_visit(visit_id))
            tm.metrics.counter("visits_discarded").inc()
        if recorder.has_rows("failed_visits",
                             attempt_lo["failed_visits"],
                             attempt_hi["failed_visits"]):
            manager._retract_failed_rows(url)
        if quarantined and queue.job_status(job.job_id) == "completed":
            manager._retract_stale_quarantine(url)
    recorder.finalize(seq, applied, state)
    _send(conn, {
        "type": "resolution", "shard": True, "job_id": job.job_id,
        "owner": spec.owner, "site_url": url,
        "attempts": job.attempts,
        "browser_id": spec.browser_params.browser_id,
        "kind": final_kind, "error": error, "applied": applied,
        "state": state, "quarantined": quarantined,
        "metrics": tm.metrics.snapshot()})


def _run_scan_worker(spec: WorkerSpec, conn: Any, telemetry: Telemetry,
                     journal: Any) -> None:
    from repro.core.scan.pipeline import ScanDataset, ScanPipeline
    from repro.core.scan.results_store import evidence_to_dict
    from repro.corpus import ScriptCorpus
    from repro.jsengine.interpreter import export_cache_metrics
    from repro.web import build_world

    web = build_world(site_count=spec.site_count, seed=spec.world_seed)
    pipeline = ScanPipeline(web, client_id=spec.scan_client_id,
                            seed=spec.seed, dwell=spec.scan_dwell,
                            max_subpages=spec.scan_max_subpages,
                            telemetry=telemetry)
    plan = _build_worker_plan(spec)
    faults = _ProcFaults(plan, conn, journal)
    faults.install_reporting()
    corpus = ScriptCorpus(":memory:")
    dataset = ScanDataset(corpus=corpus)
    queue = _open_worker_queue(spec)
    spool = None
    if spec.shard_path is not None:
        from repro.openwpm.storage_shard import ScanSpool

        spool = ScanSpool(spec.shard_path)
        spool.recover(queue)
    journal.bind_worker(spec.owner)
    tm = telemetry
    busy = tm.metrics.gauge("sched_workers_busy")
    heartbeat = _Heartbeat(conn, telemetry, spec.heartbeat_seconds)

    _send(conn, {"type": "ready", "owner": spec.owner,
                 "pid": os.getpid()})
    claimed = 0
    try:
        while True:
            if _poll_stop(conn) or (spec.claim_budget is not None
                                    and claimed >= spec.claim_budget):
                _send(conn, {"type": "stopped",
                             "metrics": tm.metrics.snapshot()})
                return
            heartbeat.beat()
            job = queue.claim(spec.owner)
            if job is None:
                counts = queue.counts()
                if counts.get("pending", 0) == 0 \
                        and counts.get("leased", 0) == 0:
                    _send(conn, {"type": "drained",
                                 "metrics": tm.metrics.snapshot()})
                    return
                time.sleep(spec.poll_seconds)
                continue
            claimed += 1
            faults.check("proc.claim", job.site_url)
            journal.emit("lease_claim", job_id=job.job_id,
                         url=job.site_url, attempts=job.attempts)
            tm.metrics.counter("sched_jobs_claimed").inc()
            busy.inc()
            resolution: Dict[str, Any] = {}
            batch = corpus.site_batch(job.site_url)
            try:
                pipeline._scan_site(job.site_url, dataset,
                                    spec.scan_visit_subpages, batch)
                batch.commit()
                heartbeat.beat(force=True)
                evidences = dataset.evidence[job.site_url]
                digests = {digest for evidence in evidences
                           for _, digest in evidence.scripts}
                resolution = {
                    "kind": "complete", "error": "",
                    "evidences": [evidence_to_dict(e)
                                  for e in evidences],
                    "bodies": {d: corpus.source(d) for d in digests},
                    "analysis": [row for row
                                 in corpus.export_analysis_cache()
                                 if row[0] in digests]}
            except Exception as exc:  # noqa: BLE001 - mirrors pool
                corpus.drop_staged(batch.token)
                abandon = getattr(web.network, "abandon_site", None)
                if abandon is not None:
                    abandon()
                resolution = {"kind": "retry", "error": repr(exc)}
            finally:
                busy.dec()
            faults.check("proc.envelope", job.site_url)
            # Refresh the engine-cache gauges so the shipped snapshot
            # carries them (the inline path exports these at run end).
            export_cache_metrics(tm.metrics)
            if spool is not None:
                _resolve_scan_sharded(spec, queue, spool, job,
                                      resolution, faults, conn,
                                      telemetry)
                continue
            _send(conn, {
                "type": "resolution", "job_id": job.job_id,
                "owner": spec.owner, "site_url": job.site_url,
                "attempts": job.attempts,
                "metrics": tm.metrics.snapshot(), **resolution})
    finally:
        journal.unbind()
        queue.close()
        corpus.close()
        if spool is not None:
            spool.close()


def _resolve_scan_sharded(spec: WorkerSpec, queue: JobQueue, spool: Any,
                          job: Job, resolution: Dict[str, Any],
                          faults: _ProcFaults, conn: Any,
                          telemetry: Telemetry) -> None:
    """Shard-mode scan verdict: spool the payload, resolve the queue.

    The payload row is provisional across the queue call so "completed
    in the queue" always implies "evidence on disk" (in the spool; the
    end-of-scan fold lands it in the canonical corpus/store in job-id
    order). Failed jobs spool nothing — there is nothing to fold.
    """
    tm = telemetry
    journal = tm.journal
    url = job.site_url
    kind = resolution["kind"]
    error = resolution.get("error", "")
    seq = None
    if kind == "complete":
        spool.add_bodies(resolution["bodies"])
        payload = json.dumps(
            {"evidences": resolution["evidences"],
             "analysis": [list(row)
                          for row in resolution["analysis"]]})
        seq = spool.record_provisional(
            job_id=job.job_id, attempts=job.attempts,
            owner=spec.owner, site_url=url, kind="complete",
            error="", payload=payload)
    faults.check("proc.resolve", url)
    applied = True
    state = ""
    try:
        if kind == "complete":
            queue.complete(job.job_id, spec.owner)
            state = "completed"
        else:
            state = queue.fail(job.job_id, spec.owner, error=error,
                               retry=True)
    except LeaseError:
        applied = False
    if applied:
        if kind == "complete":
            journal.emit("lease_complete", job_id=job.job_id, url=url)
            tm.metrics.counter("sched_jobs_completed").inc()
        else:
            journal.emit("lease_fail", job_id=job.job_id, url=url,
                         state=state, error=error)
            if state == "failed":
                tm.metrics.counter("sched_jobs_failed").inc()
            else:
                tm.metrics.counter("sched_jobs_retried").inc()
    else:
        journal.emit("lease_lost", job_id=job.job_id, url=url)
        tm.metrics.counter("sched_leases_lost").inc()
    if seq is not None:
        spool.finalize(seq, applied, state)
    _send(conn, {
        "type": "resolution", "shard": True, "job_id": job.job_id,
        "owner": spec.owner, "site_url": url,
        "attempts": job.attempts, "kind": kind, "error": error,
        "applied": applied, "state": state,
        "metrics": tm.metrics.snapshot()})


# ----------------------------------------------------------------------
# Coordinator side: ordered finalization
# ----------------------------------------------------------------------
class _Finalizer:
    """Applies *final* job resolutions in strict job-id order.

    The broker's guarantee that a clean N-process crawl produces the
    same AUTOINCREMENT ids and row order as the inline path: a final
    for job J waits until every job with a smaller id is finalized
    (applied, terminal at startup for resumes, or terminal out-of-band
    through a retry-exhaustion or reclaim). Apply callables return
    True when the job is settled, False when its verdict was voided by
    a lost lease (the re-run will produce another final)."""

    def __init__(self, queue: JobQueue) -> None:
        self.finalized: set = set()
        for row in queue.job_rows():
            if row["status"] in ("completed", "failed"):
                self.finalized.add(int(row["job_id"]))
        self.cursor = 1
        #: job_id -> list of (owner, apply_fn) awaiting their turn.
        self.buffer: Dict[int, List[Tuple[str, Callable[[], bool]]]] = {}
        self._advance()

    def _advance(self) -> None:
        while self.cursor in self.finalized:
            self.cursor += 1

    def mark_terminal(self, job_id: int) -> None:
        """A job went terminal outside the ordered path (immediate
        retry-exhaustion or reclaim) — unblock the cursor."""
        self.finalized.add(job_id)
        self._advance()
        self._drain()

    def submit(self, job_id: int, owner: str,
               apply_fn: Callable[[], bool]) -> None:
        self.buffer.setdefault(job_id, []).append((owner, apply_fn))
        self._drain()

    def _drain(self) -> None:
        while self.cursor in self.buffer:
            pending = self.buffer[self.cursor]
            _owner, apply_fn = pending.pop(0)
            if not pending:
                del self.buffer[self.cursor]
            if apply_fn():
                self.finalized.add(self.cursor)
                self._advance()
            else:
                break  # voided; the winning attempt's final is coming

    def force_owner(self, owner: str) -> None:
        """Apply a dead worker's buffered finals out of order (its pipe
        is drained, nothing more is coming; they must land before its
        leases are released or the release would void them)."""
        for job_id in sorted(self.buffer):
            pending = self.buffer.get(job_id, [])
            keep = []
            for entry_owner, apply_fn in pending:
                if entry_owner != owner or job_id in self.finalized:
                    keep.append((entry_owner, apply_fn))
                elif apply_fn():
                    self.finalized.add(job_id)
            if keep:
                self.buffer[job_id] = keep
            else:
                self.buffer.pop(job_id, None)
        self._advance()
        self._drain()

    def flush(self) -> None:
        """Apply everything left, in job-id order (stop/abort path —
        jobs in cursor gaps stay unresolved and resume re-runs them)."""
        for job_id in sorted(self.buffer):
            for _owner, apply_fn in self.buffer[job_id]:
                if job_id not in self.finalized and apply_fn():
                    self.finalized.add(job_id)
        self.buffer.clear()
        self._advance()


# ----------------------------------------------------------------------
# Coordinator side: the crawl storage broker
# ----------------------------------------------------------------------
class CrawlBroker:
    """The single writer of the crawl database.

    Reimplements the thread path's ``record_terminal_failure`` /
    ``discard_result`` / ``record_completion`` hooks against shipped
    envelopes instead of worker-local slot state."""

    def __init__(self, manager: Any, queue: JobQueue,
                 telemetry: Telemetry) -> None:
        self.manager = manager
        self.storage = manager.storage
        self.queue = queue
        self.tm = coalesce(telemetry)
        self.finalizer = _Finalizer(queue)
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.lease_lost = 0
        self.errors: List[str] = []

    # -- envelope data -------------------------------------------------
    def _import_envelope(self, message: Dict[str, Any]) -> List[int]:
        id_map: Dict[int, int] = {}
        imported: List[int] = []
        for visit in message.get("visits", []):
            new_id = self.storage.import_visit(
                visit["browser_id"], visit["site_url"],
                visit["run_label"], visit["tables"])
            id_map[visit["visit_id"]] = new_id
            imported.append(new_id)
        self.storage.import_content_rows(message.get("content", []))
        ledger = message.get("ledger", {})
        crash = [(row[0], id_map.get(row[1]), row[2], row[3])
                 for row in ledger.get("crash_history", [])]
        self.storage.import_ledger_rows("crash_history", crash)
        failed_rows = ledger.get("failed_visits", [])
        self.storage.import_ledger_rows("failed_visits", failed_rows)
        self.storage.import_ledger_rows(
            "quarantined_sites", ledger.get("quarantined_sites", []))
        for row in failed_rows:
            # Counters/journal were booked by the worker; the
            # coordinator only mirrors the failed-sites roster (used by
            # the bundle recorder's completeness check).
            with self.manager._failed_sites_lock:
                self.manager.failed_sites.append(row[1])
        return imported

    def _discard(self, message: Dict[str, Any],
                 imported: List[int]) -> None:
        """Void an envelope whose verdict lost the lease race."""
        url = message["site_url"]
        journal = self.tm.journal
        for visit_id in imported:
            journal.emit("visit_discarded", url=url, visit_id=visit_id)
            self.manager._count_discarded(
                self.storage.delete_visit(visit_id))
            self.tm.metrics.counter("visits_discarded").inc()
        if message.get("ledger", {}).get("failed_visits"):
            self.manager._retract_failed_rows(url)
        if message.get("quarantined") \
                and self.queue.job_status(message["job_id"]) \
                == "completed":
            self.manager._retract_stale_quarantine(url)

    def _lost(self, message: Dict[str, Any]) -> None:
        self.tm.journal.emit("lease_lost", job_id=message["job_id"],
                             url=message["site_url"])
        self.tm.metrics.counter("sched_leases_lost").inc()
        self.lease_lost += 1

    # -- resolutions ---------------------------------------------------
    def handle_resolution(self, message: Dict[str, Any]) -> None:
        kind = message["kind"]
        if kind == "retry":
            self._apply_retry(message)
        elif kind == "terminal":
            self.finalizer.submit(
                message["job_id"], message["owner"],
                lambda: self._apply_terminal(message))
        else:
            self.finalizer.submit(
                message["job_id"], message["owner"],
                lambda: self._apply_complete(message))

    def _apply_retry(self, message: Dict[str, Any]) -> None:
        # Crash residue of a to-be-retried attempt lands immediately
        # (its inline position is claim time, not completion time).
        imported = self._import_envelope(message)
        try:
            state = self.queue.fail(
                message["job_id"], message["owner"],
                error=message["error"], retry=True)
        except LeaseError:
            self._lost(message)
            self._discard(message, imported)
            return
        self.tm.journal.emit("lease_fail", job_id=message["job_id"],
                             url=message["site_url"], state=state,
                             error=message["error"])
        if state == "failed":
            self.tm.metrics.counter("sched_jobs_failed").inc()
            self.failed += 1
            self.errors.append(
                f"{message['site_url']}: {message['error']}")
            self._record_terminal(message)
            self.finalizer.mark_terminal(message["job_id"])
        else:
            self.tm.metrics.counter("sched_jobs_retried").inc()
            self.retried += 1

    def _record_terminal(self, message: Dict[str, Any]) -> None:
        """Mirror of ``record_terminal_failure``: ledger the loss
        unless the worker already did (failure_limit/quarantine)."""
        error = message["error"]
        if error in ("failure_limit", "quarantined") \
                or message.get("quarantined"):
            return
        self.manager._record_given_up(
            message.get("browser_id", 0), message["site_url"],
            message["attempts"], error)

    def _apply_terminal(self, message: Dict[str, Any]) -> bool:
        imported = self._import_envelope(message)
        try:
            state = self.queue.fail(
                message["job_id"], message["owner"],
                error=message["error"], retry=False)
        except LeaseError:
            self._lost(message)
            self._discard(message, imported)
            return False
        self.tm.journal.emit("lease_fail", job_id=message["job_id"],
                             url=message["site_url"], state=state,
                             error=message["error"])
        self.tm.metrics.counter("sched_jobs_failed").inc()
        self.failed += 1
        self.errors.append(f"{message['site_url']}: {message['error']}")
        self._record_terminal(message)
        return True

    def _apply_complete(self, message: Dict[str, Any]) -> bool:
        imported = self._import_envelope(message)
        try:
            self.queue.complete(message["job_id"], message["owner"])
        except LeaseError:
            self._lost(message)
            self._discard(message, imported)
            return False
        self.tm.journal.emit("lease_complete",
                             job_id=message["job_id"],
                             url=message["site_url"])
        self.tm.metrics.counter("sched_jobs_completed").inc()
        self.completed += 1
        if message.get("quarantined"):
            # A hung sibling attempt tripped the worker's breaker while
            # this visit was in flight; the queue just accepted the
            # completion, so the shipped quarantine row is stale.
            self.manager._retract_stale_quarantine(message["site_url"])
        return True

    # -- out-of-band terminals (reclaims / dead-owner releases) --------
    def finalize_reclaimed(self, job: Job) -> None:
        self.tm.journal.emit("lease_expired_terminal",
                             job_id=job.job_id, url=job.site_url)

        def apply() -> bool:
            self.tm.journal.emit("lease_fail", job_id=job.job_id,
                                 url=job.site_url, state="failed",
                                 error="lease_expired")
            self.tm.metrics.counter("sched_jobs_failed").inc()
            self.failed += 1
            self.errors.append(f"{job.site_url}: lease_expired")
            self.manager._record_given_up(0, job.site_url,
                                          job.attempts, "lease_expired")
            return True

        self.finalizer.submit(job.job_id, "", apply)


# ----------------------------------------------------------------------
# Coordinator side: shard-mode lifecycle tally
# ----------------------------------------------------------------------
class _NullFinalizer:
    """Shard mode has no coordinator-side apply order to enforce — the
    merge imposes ``(job_id, attempts)`` order afterwards — so the
    pool's finalizer hooks (force a dead worker's finals, flush at end,
    unblock on out-of-band terminals) have nothing to do."""

    def force_owner(self, owner: str) -> None:
        pass

    def mark_terminal(self, job_id: int) -> None:
        pass

    def flush(self) -> None:
        pass


class _ShardLifecycle:
    """Coordinator-side tally of worker-resolved verdicts (shard mode).

    In shard mode the workers own the queue resolution, the ledgering,
    the counters, and the journal events; the coordinator only counts
    lifecycle summaries for the final report. The exception is reclaim
    terminals (lease expiries settled by the supervisor): they have no
    live worker to own them, so the books are kept here — exactly as
    the broker's ``finalize_reclaimed`` keeps them."""

    def __init__(self, queue: JobQueue, telemetry: Telemetry) -> None:
        self.queue = queue
        self.tm = coalesce(telemetry)
        self.finalizer = _NullFinalizer()
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.lease_lost = 0
        self.errors: List[str] = []

    def handle_resolution(self, message: Dict[str, Any]) -> None:
        if not message.get("applied"):
            self.lease_lost += 1
            return
        if message["kind"] == "complete":
            self.completed += 1
        elif message.get("state") == "failed":
            self.failed += 1
            self.errors.append(
                f"{message['site_url']}: {message['error']}")
        else:
            self.retried += 1

    def finalize_reclaimed(self, job: Job) -> None:
        self.tm.journal.emit("lease_expired_terminal",
                             job_id=job.job_id, url=job.site_url)
        self.tm.journal.emit("lease_fail", job_id=job.job_id,
                             url=job.site_url, state="failed",
                             error="lease_expired")
        self.tm.metrics.counter("sched_jobs_failed").inc()
        self.failed += 1
        self.errors.append(f"{job.site_url}: lease_expired")


class ShardCrawlLifecycle(_ShardLifecycle):
    """Crawl-flavoured shard lifecycle: reclaim terminals additionally
    ledger the loss into the coordinator's own shard
    (``coordinator.sqlite``), so the merged database carries the same
    ``failed_visits`` row the broker's ``_record_given_up`` writes."""

    def __init__(self, manager: Any, queue: JobQueue,
                 telemetry: Telemetry, storage: Any,
                 recorder: Any) -> None:
        super().__init__(queue, telemetry)
        self.manager = manager
        self.storage = storage
        self.recorder = recorder

    def finalize_reclaimed(self, job: Job) -> None:
        super().finalize_reclaimed(job)
        # Mirror of ``TaskManager._record_given_up`` against the
        # coordinator shard. The queue already holds the failed verdict
        # when the pool hands the job over, so the shard_jobs row is
        # finalized applied immediately (no provisional window).
        lo = self.recorder.watermarks()
        self.storage.record_failed_visit(0, job.site_url, job.attempts,
                                         "lease_expired")
        self.tm.journal.emit("visit_given_up", url=job.site_url,
                             attempts=job.attempts,
                             reason="lease_expired")
        self.tm.metrics.counter("visits_given_up").inc()
        with self.manager._failed_sites_lock:
            self.manager.failed_sites.append(job.site_url)
        seq, _hi = self.recorder.record_provisional(
            job_id=job.job_id, attempts=job.attempts,
            owner="supervisor", site_url=job.site_url, browser_id=0,
            kind="terminal", error="lease_expired", quarantined=False,
            lo=lo)
        self.recorder.finalize(seq, True, "failed")


# ----------------------------------------------------------------------
# Coordinator side: supervision
# ----------------------------------------------------------------------
@dataclass
class ProcPoolReport:
    """Outcome of one process-pool run."""

    workers: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    reclaimed: int = 0
    lease_lost: int = 0
    worker_deaths: int = 0
    workers_spawned: int = 0
    workers_killed: int = 0
    workers_respawned: int = 0
    heartbeats_missed: int = 0
    pool_shrinks: int = 0
    interrupted: bool = False
    errors: List[str] = field(default_factory=list)


class _Slot:
    """One supervised worker slot (a lineage of process incarnations)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: Any = None
        self.conn: Any = None
        self.owner = ""
        self.generation = 0
        self.last_seen = 0.0
        self.clean_exit = False
        self.retired = False       # shrunk out of the pool
        self.finished = False      # drained/stopped cleanly
        self.deaths = 0
        self.next_respawn_at: Optional[float] = None
        self.prev_metrics: Optional[List[Dict[str, Any]]] = None

    @property
    def live(self) -> bool:
        return self.proc is not None

    @property
    def active(self) -> bool:
        """Still owed work: live, or waiting on a scheduled respawn."""
        return self.live or (not self.retired and not self.finished
                             and self.next_respawn_at is not None)


class ProcessPool:
    """Spawns, feeds, supervises, and reaps the worker processes.

    The supervision ladder, in order: a worker that misses its
    heartbeat deadline is SIGKILLed; any abnormal death drains the
    worker's pipe, force-applies its buffered finals, releases its
    leases back to the queue (terminal releases become ordered
    ledger entries), and schedules a respawn with exponential
    crash-loop backoff; a slot exceeding ``respawn_limit`` abnormal
    deaths is retired (pool shrink); when every slot is retired with
    work still outstanding the run aborts as interrupted (resumable).
    """

    def __init__(self, queue: JobQueue, broker: Any,
                 make_spec: Callable[[int, int, Dict[int, int]],
                                     WorkerSpec],
                 worker_procs: int, *,
                 telemetry: Optional[Telemetry] = None,
                 fault_plan: Optional[Any] = None,
                 heartbeat_deadline: float = DEFAULT_HEARTBEAT_DEADLINE,
                 respawn_limit: int = DEFAULT_RESPAWN_LIMIT,
                 respawn_backoff: float = 0.5,
                 reclaim_interval: float = 0.5) -> None:
        self.queue = queue
        self.broker = broker
        self.make_spec = make_spec
        self.worker_procs = worker_procs
        self.tm = coalesce(telemetry)
        self.fault_plan = fault_plan
        self.heartbeat_deadline = heartbeat_deadline
        self.respawn_limit = respawn_limit
        self.respawn_backoff = respawn_backoff
        self.reclaim_interval = reclaim_interval
        self.clock = queue.clock
        self.slots = [_Slot(i) for i in range(worker_procs)]
        #: rule index -> proc-level firings observed across all workers
        #: (pre-consumed into respawn specs).
        self.fault_spent: Dict[int, int] = {}
        self.report = ProcPoolReport(workers=worker_procs)
        self._ctx = get_context("spawn")
        self._stop_sent = False
        self._claim_budget: Optional[int] = None
        self._last_reclaim = 0.0
        self._pin_warned = False

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, slot: _Slot, respawn: bool = False) -> None:
        slot.generation += 1
        slot.owner = f"proc-{slot.index}-g{slot.generation}"
        spec = self.make_spec(slot.index, slot.generation,
                              dict(self.fault_spent))
        spec.claim_budget = self._claim_budget
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(target=_worker_entry,
                                 args=(spec, child_conn),
                                 name=slot.owner, daemon=True)
        proc.start()
        child_conn.close()
        slot.proc = proc
        slot.conn = parent_conn
        slot.last_seen = time.monotonic()
        slot.clean_exit = False
        slot.next_respawn_at = None
        slot.prev_metrics = None
        self.report.workers_spawned += 1
        self.tm.metrics.counter("proc_workers_spawned").inc()
        event = "proc_respawn" if respawn else "proc_spawn"
        self.tm.journal.emit(event, slot=slot.index, owner=slot.owner,
                             pid=proc.pid)
        if respawn:
            self.report.workers_respawned += 1
            self.tm.metrics.counter("proc_workers_respawned").inc()

    def _broadcast_stop(self) -> None:
        if self._stop_sent:
            return
        self._stop_sent = True
        for slot in self.slots:
            if slot.live:
                try:
                    slot.conn.send({"type": "stop"})
                except (OSError, ValueError, BrokenPipeError):
                    pass

    # -- message handling ----------------------------------------------
    def _merge_metrics(self, slot: _Slot,
                       snapshot: Optional[List[Dict[str, Any]]]) -> None:
        if not snapshot or not self.tm.enabled:
            return
        delta = diff_snapshots(slot.prev_metrics, snapshot)
        slot.prev_metrics = snapshot
        if delta:
            # restore() bypasses the journal's metric-delta hook — the
            # worker already journalled its own deltas in its epoch, so
            # the books sum once across epochs.
            self.tm.metrics.restore(delta)

    def _handle_message(self, slot: _Slot,
                        message: Dict[str, Any]) -> None:
        slot.last_seen = time.monotonic()
        kind = message.get("type")
        self._merge_metrics(slot, message.get("metrics"))
        if kind == "resolution":
            self.broker.handle_resolution(message)
        elif kind == "fault_fired":
            index = int(message["rule"])
            self.fault_spent[index] = self.fault_spent.get(index, 0) + 1
        elif kind == "pinned":
            self.tm.metrics.counter("proc_workers_pinned").inc()
            self.tm.journal.emit("proc_pin", slot=slot.index,
                                 owner=slot.owner,
                                 cpu=message.get("cpu"))
        elif kind == "pin_failed":
            self.tm.journal.emit("proc_pin_unsupported",
                                 slot=slot.index, owner=slot.owner,
                                 reason=message.get("reason"))
            if not self._pin_warned:
                self._pin_warned = True
                print("warning: --pin-cpus is unsupported here "
                      f"({message.get('reason')}); continuing unpinned",
                      file=sys.stderr)
        elif kind in ("drained", "stopped"):
            slot.clean_exit = True
        elif kind == "fatal":
            self.report.errors.append(
                f"worker {slot.owner}: {message.get('error')}")
        # "ready" / "heartbeat": the last_seen update above is the deal.

    def _drain_conn(self, slot: _Slot) -> bool:
        """Pump a slot's pipe; False when the pipe reached EOF."""
        while True:
            try:
                if not slot.conn.poll():
                    return True
                message = slot.conn.recv()
            except (EOFError, OSError):
                return False
            if isinstance(message, dict):
                self._handle_message(slot, message)

    # -- the ladder ------------------------------------------------------
    def _check_heartbeats(self) -> None:
        now = time.monotonic()
        for slot in self.slots:
            if not slot.live or slot.clean_exit:
                continue
            if now - slot.last_seen > self.heartbeat_deadline:
                self.report.heartbeats_missed += 1
                self.report.workers_killed += 1
                self.tm.metrics.counter("proc_heartbeats_missed").inc()
                self.tm.metrics.counter("proc_workers_killed").inc()
                self.tm.journal.emit("proc_heartbeat_miss",
                                     slot=slot.index, owner=slot.owner,
                                     silent_seconds=round(
                                         now - slot.last_seen, 3))
                self.tm.journal.emit("proc_kill", slot=slot.index,
                                     owner=slot.owner,
                                     pid=slot.proc.pid)
                try:
                    os.kill(slot.proc.pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    pass

    def _reap(self, slot: _Slot) -> None:
        """A worker process is gone: drain, settle, release, respawn."""
        self._drain_conn(slot)
        slot.proc.join(timeout=5.0)
        exitcode = slot.proc.exitcode
        try:
            slot.conn.close()
        except OSError:
            pass
        slot.proc = None
        slot.conn = None
        if slot.clean_exit:
            slot.finished = True
            return
        # Abnormal death. Its shipped-but-buffered finals must land
        # before the lease release would requeue (and later void) them.
        slot.deaths += 1
        self.report.worker_deaths += 1
        self.tm.metrics.counter("proc_worker_deaths").inc()
        self.tm.journal.emit("proc_death", slot=slot.index,
                             owner=slot.owner, exitcode=exitcode,
                             deaths=slot.deaths)
        self.broker.finalizer.force_owner(slot.owner)
        released = self.queue.release_owner(slot.owner)
        if released:
            self.report.reclaimed += released.total
            self.tm.metrics.counter("sched_lease_reclaims").inc(
                released.total)
            self.tm.journal.emit("lease_reclaim", owner=slot.owner,
                                 count=released.total)
            for job in released.failed_jobs:
                self.broker.finalize_reclaimed(job)
        if self._stop_sent:
            return
        if slot.deaths > self.respawn_limit:
            self._shrink(slot)
            return
        backoff = min(self.respawn_backoff * (2 ** (slot.deaths - 1)),
                      60.0)
        slot.next_respawn_at = time.monotonic() + backoff

    def _shrink(self, slot: _Slot) -> None:
        slot.retired = True
        slot.next_respawn_at = None
        self.report.pool_shrinks += 1
        self.tm.metrics.counter("proc_pool_shrinks").inc()
        self.tm.journal.emit("proc_shrink", slot=slot.index,
                             owner=slot.owner, deaths=slot.deaths)

    def _try_respawns(self) -> None:
        now = time.monotonic()
        for slot in self.slots:
            if slot.live or slot.retired or slot.finished \
                    or slot.next_respawn_at is None \
                    or now < slot.next_respawn_at:
                continue
            rule = None
            if self.fault_plan is not None:
                rule = self.fault_plan.check("proc.respawn",
                                             f"slot-{slot.index}")
            if rule is not None and rule.fault == "respawn_failure":
                # The respawn attempt itself failed: one more rung down
                # the crash-loop ladder.
                slot.deaths += 1
                self.tm.journal.emit("proc_respawn_failed",
                                     slot=slot.index, owner=slot.owner,
                                     deaths=slot.deaths)
                if slot.deaths > self.respawn_limit:
                    self._shrink(slot)
                else:
                    backoff = min(self.respawn_backoff
                                  * (2 ** (slot.deaths - 1)), 60.0)
                    slot.next_respawn_at = time.monotonic() + backoff
                continue
            self._spawn(slot, respawn=True)

    def _reclaim_expired(self) -> None:
        now = time.monotonic()
        if now - self._last_reclaim < self.reclaim_interval:
            return
        self._last_reclaim = now
        reclaimed = self.queue.reclaim_expired()
        if reclaimed:
            self.report.reclaimed += reclaimed.total
            self.tm.metrics.counter("sched_lease_reclaims").inc(
                reclaimed.total)
            self.tm.journal.emit("lease_reclaim", owner="supervisor",
                                 count=reclaimed.total)
            for job in reclaimed.failed_jobs:
                self.broker.finalize_reclaimed(job)

    def _publish_depth(self) -> None:
        for state, value in self.queue.counts().items():
            self.tm.metrics.gauge("sched_queue_depth",
                                  state=state).set(value)

    # -- main loop -----------------------------------------------------
    def run(self, stop_after_jobs: Optional[int] = None
            ) -> ProcPoolReport:
        if stop_after_jobs is not None:
            # Split the checkpoint budget across slots: workers ship
            # resolutions fire-and-forget, so the stop broadcast below
            # can lose the race on a fast queue — the worker-side claim
            # cap is what guarantees the crawl actually checkpoints.
            self._claim_budget = max(
                1, -(-stop_after_jobs // len(self.slots)))
        for slot in self.slots:
            self._spawn(slot)
        try:
            while True:
                conns = [slot.conn for slot in self.slots if slot.live]
                if conns:
                    for conn in _conn_wait(conns, timeout=0.05):
                        slot = next(s for s in self.slots
                                    if s.conn is conn)
                        if not self._drain_conn(slot):
                            # EOF: the process is gone (or going).
                            self._reap(slot)
                self._check_heartbeats()
                for slot in self.slots:
                    if slot.live and not slot.proc.is_alive():
                        self._reap(slot)
                self._try_respawns()
                self._reclaim_expired()
                if stop_after_jobs is not None and not self._stop_sent \
                        and self.broker.completed + self.broker.failed \
                        >= stop_after_jobs:
                    self._broadcast_stop()
                if not any(slot.live or slot.active
                           for slot in self.slots):
                    break
                if not conns:
                    # Nothing to wait on (all slots between death and
                    # respawn) — don't busy-spin the backoff away.
                    time.sleep(0.02)
        except KeyboardInterrupt:
            self.report.interrupted = True
            self._broadcast_stop()
            deadline = time.monotonic() + 5.0
            for slot in self.slots:
                if slot.live:
                    slot.proc.join(timeout=max(
                        0.1, deadline - time.monotonic()))
                    if slot.proc.is_alive():
                        slot.proc.terminate()
                        slot.proc.join(timeout=2.0)
                    self._reap(slot)
        # Apply whatever finals are still buffered, in job-id order;
        # unresolved jobs stay pending/leased and --resume re-runs them.
        self.broker.finalizer.flush()
        self._publish_depth()
        self.report.completed = self.broker.completed
        self.report.failed = self.broker.failed
        self.report.retried = self.broker.retried
        self.report.lease_lost = self.broker.lease_lost
        self.report.errors.extend(self.broker.errors)
        outstanding = self.queue.outstanding()
        if outstanding and not self.report.interrupted:
            # Every slot retired or stopped with work left: the crawl
            # aborts as interrupted rather than spinning forever —
            # --resume picks the remainder up.
            self.report.interrupted = True
            self.tm.journal.emit("proc_abort",
                                 outstanding=outstanding,
                                 shrinks=self.report.pool_shrinks)
        return self.report


# ----------------------------------------------------------------------
# Coordinator side: the scan broker
# ----------------------------------------------------------------------
class ScanBroker:
    """Single writer of the scan corpus, sidecar store, and dataset."""

    def __init__(self, queue: JobQueue, corpus: Any, store: Any,
                 dataset: Any, telemetry: Telemetry) -> None:
        self.queue = queue
        self.corpus = corpus
        self.store = store
        self.dataset = dataset
        self.tm = coalesce(telemetry)
        self.finalizer = _Finalizer(queue)
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.lease_lost = 0
        self.errors: List[str] = []

    def handle_resolution(self, message: Dict[str, Any]) -> None:
        if message["kind"] == "complete":
            self.finalizer.submit(
                message["job_id"], message["owner"],
                lambda: self._apply_complete(message))
        else:
            self._apply_retry(message)

    def _apply_retry(self, message: Dict[str, Any]) -> None:
        try:
            state = self.queue.fail(
                message["job_id"], message["owner"],
                error=message["error"], retry=True)
        except LeaseError:
            self._lost(message)
            return
        self.tm.journal.emit("lease_fail", job_id=message["job_id"],
                             url=message["site_url"], state=state,
                             error=message["error"])
        if state == "failed":
            self.tm.metrics.counter("sched_jobs_failed").inc()
            self.failed += 1
            self.errors.append(
                f"{message['site_url']}: {message['error']}")
            self.finalizer.mark_terminal(message["job_id"])
        else:
            self.tm.metrics.counter("sched_jobs_retried").inc()
            self.retried += 1

    def _lost(self, message: Dict[str, Any]) -> None:
        self.tm.journal.emit("lease_lost", job_id=message["job_id"],
                             url=message["site_url"])
        self.tm.metrics.counter("sched_leases_lost").inc()
        self.lease_lost += 1

    def _apply_complete(self, message: Dict[str, Any]) -> bool:
        from repro.core.scan.results_store import evidence_from_dict

        domain = message["site_url"]
        bodies = message["bodies"]
        evidences = [evidence_from_dict(item)
                     for item in message["evidences"]]
        batch = _scan_stage(
            self.corpus, self.store, domain, evidences,
            bodies.__getitem__,
            [tuple(row) for row in message.get("analysis", [])])
        try:
            self.queue.complete(message["job_id"], message["owner"])
        except LeaseError:
            self.corpus.drop_staged(batch.token)
            self._lost(message)
            return False
        self.corpus.promote(domain, batch.token)
        self.tm.journal.emit("lease_complete",
                             job_id=message["job_id"], url=domain)
        self.tm.metrics.counter("sched_jobs_completed").inc()
        self.completed += 1
        _scan_bookkeep(self.dataset, self.corpus, domain, evidences)
        return True

    def finalize_reclaimed(self, job: Job) -> None:
        self.tm.journal.emit("lease_expired_terminal",
                             job_id=job.job_id, url=job.site_url)

        def apply() -> bool:
            self.tm.journal.emit("lease_fail", job_id=job.job_id,
                                 url=job.site_url, state="failed",
                                 error="lease_expired")
            self.tm.metrics.counter("sched_jobs_failed").inc()
            self.failed += 1
            self.errors.append(f"{job.site_url}: lease_expired")
            return True

        self.finalizer.submit(job.job_id, "", apply)


def _scan_stage(corpus: Any, store: Any, domain: str,
                evidences: List[Any], get_body: Callable[[str], Any],
                analysis: List[Tuple]) -> Any:
    """Stage one completed site into corpus/store; returns the
    un-promoted batch.

    Runs the same batch machinery as the inline handler, in the same
    per-visit order, so occurrence rows and refcounts come out
    identical to a 1-worker run. Evidence is persisted *before* the
    caller touches the queue, so 'completed in queue' always implies
    'evidence on disk'.
    """
    batch = corpus.site_batch(domain)
    for evidence in evidences:
        for script_url, digest in evidence.scripts:
            body = get_body(digest)
            if body is None:
                raise RuntimeError(
                    f"scan spool for {domain!r} is missing script "
                    f"body {digest!r} ({script_url})")
            batch.add(script_url, body)
        batch.flush_visit()
    batch.commit()
    corpus.import_analysis_cache(analysis)
    store.save(domain, evidences)
    return batch


def _scan_bookkeep(dataset: Any, corpus: Any, domain: str,
                   evidences: List[Any]) -> None:
    """Dataset bookkeeping for one completed site (inline-identical)."""
    from repro.core.scan.classify import classify_site

    dataset.front_only[domain] = classify_site(
        domain, evidences[:1], corpus=corpus)
    dataset.combined[domain] = classify_site(
        domain, evidences, corpus=corpus)
    dataset.evidence[domain] = evidences
    dataset.subpage_visits += max(0, len(evidences) - 1)
    dataset.visited_sites += 1
    for evidence in evidences:
        for _, digest in evidence.scripts:
            dataset.unique_scripts.add(digest)


def fold_scan_spools(spool_paths: List[str], queue: Any, corpus: Any,
                     store: Any, dataset: Optional[Any],
                     telemetry: Optional[Telemetry] = None) -> int:
    """Fold worker scan spools into the canonical corpus/store.

    Applied completions from every spool are replayed in strict
    ``(job_id, attempts)`` order — the order the single-writer
    ``ScanBroker`` applies envelopes in — and each folded row is marked
    ``folded`` in its spool so resumed runs never double-count
    refcounts. With ``dataset=None`` only corpus/store are touched (the
    pre-restore recovery fold on ``--resume``; the restore pass rebuilds
    the dataset from the store right after). Returns the fold count.
    """
    from repro.core.scan.results_store import evidence_from_dict
    from repro.openwpm.storage_shard import read_scan_spool

    tm = coalesce(telemetry)
    entries = []
    readers = []
    for index, path in enumerate(spool_paths):
        rows, bodies = read_scan_spool(path, queue)
        readers.append(bodies)
        for row in rows:
            entries.append((int(row["job_id"]), int(row["attempts"]),
                            index, int(row["seq"]), row, bodies))
    entries.sort(key=lambda entry: entry[:4])
    folded = 0
    seen = set()
    try:
        for job_id, _attempts, _index, seq, row, bodies in entries:
            if job_id in seen:
                # A crash in the provisional window can leave duplicate
                # applied completes; the queue enforces one completion,
                # so the first row in fold order is the record.
                continue
            seen.add(job_id)
            if row.get("state") == "folded":
                continue
            payload = json.loads(row["payload"])
            domain = row["site_url"]
            evidences = [evidence_from_dict(item)
                         for item in payload["evidences"]]
            batch = _scan_stage(
                corpus, store, domain, evidences, bodies.get,
                [tuple(item) for item in payload.get("analysis", [])])
            corpus.promote(domain, batch.token)
            bodies.mark_folded(seq)
            if dataset is not None:
                _scan_bookkeep(dataset, corpus, domain, evidences)
            folded += 1
    finally:
        for reader in readers:
            reader.close()
    if folded:
        tm.journal.emit("scan_spool_fold", folded=folded,
                        spools=len(spool_paths))
        tm.metrics.counter("proc_shard_scans_folded").inc(folded)
    return folded


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _pin_for(slot: int, pin_cpus: bool) -> Optional[int]:
    if not pin_cpus:
        return None
    return slot % (os.cpu_count() or 1)


def run_process_crawl(manager: Any, urls: List[str], *,
                      queue_path: str, worker_procs: int,
                      web: str = "lab", site_count: int = 0,
                      world_seed: int = 7, resume: bool = False,
                      stop_after_jobs: Optional[int] = None,
                      max_attempts: int = 2,
                      lease_seconds: float = 300.0,
                      journal_dir: Optional[str] = None,
                      heartbeat_seconds: float = 1.0,
                      heartbeat_deadline: float =
                      DEFAULT_HEARTBEAT_DEADLINE,
                      respawn_limit: int = DEFAULT_RESPAWN_LIMIT,
                      respawn_backoff: float = 0.5,
                      shard_dbs: bool = False,
                      pin_cpus: bool = False) -> Any:
    """Drain *urls* through *worker_procs* supervised processes.

    The coordinator's *manager* owns the crawl database (its browsers
    never visit anything — slot 0's params are cloned into every
    worker, exactly the slot a 1-worker inline crawl would use).
    Returns the same :class:`~repro.sched.scheduler.CrawlReport` shape
    as ``TaskManager.crawl_scheduled``.

    ``shard_dbs=True`` swaps the broker for per-worker shard databases
    under ``<db>.shards/`` plus a deterministic end-of-crawl merge (see
    the module docstring); ``pin_cpus=True`` pins worker *slot* to CPU
    ``slot % cpu_count``.
    """
    from repro.sched.scheduler import CrawlReport, CrawlScheduler

    if queue_path == ":memory:":
        raise ValueError(
            "--worker-procs requires a file-backed queue "
            "(worker processes cannot share an in-memory queue)")
    shard_dir = coordinator_path = None
    if shard_dbs:
        from repro.openwpm.merge import has_data

        if manager.storage.database_path == ":memory:":
            raise ValueError(
                "--shard-dbs requires a file-backed crawl database "
                "(shards merge into it on disk)")
        shard_dir = manager.storage.database_path + ".shards"
        os.makedirs(shard_dir, exist_ok=True)
        existing = sorted(glob.glob(
            os.path.join(shard_dir, "*.sqlite*")))
        if not resume:
            for stale in existing:
                os.remove(stale)
        elif not existing and has_data(manager.storage):
            raise ValueError(
                "--shard-dbs cannot resume a crawl recorded in broker "
                "mode: the merge would wipe the canonical rows and "
                "refold only shard data; resume without --shard-dbs")
        coordinator_path = os.path.join(shard_dir, "coordinator.sqlite")
    mp = manager.manager_params
    scheduler = CrawlScheduler(
        queue_path, resume=resume, seed=mp.seed,
        max_attempts=max_attempts, lease_seconds=lease_seconds,
        telemetry=manager.telemetry, clock=WallClock())
    coord_storage = None
    try:
        scheduler.enqueue(urls)
        if shard_dbs:
            from repro.openwpm.storage import StorageController
            from repro.openwpm.storage_shard import ShardRecorder

            coord_storage = StorageController(coordinator_path,
                                              rollups=False)
            coord_recorder = ShardRecorder(coord_storage,
                                           source="coordinator")
            # A previous coordinator may have died inside the (tiny)
            # window between the ledger write and the finalize.
            coord_recorder.recover(scheduler.queue)
            broker: Any = ShardCrawlLifecycle(
                manager, scheduler.queue, manager.telemetry,
                coord_storage, coord_recorder)
        else:
            broker = CrawlBroker(manager, scheduler.queue,
                                 manager.telemetry)
        # Serialize the *user* plan, not the built one: the worker's
        # TaskManager re-appends the legacy crash_probability rule
        # itself, so serializing manager.fault_plan would double it.
        plan_dict = mp.fault_plan.to_dict() \
            if mp.fault_plan is not None else None
        worker_mp = replace(mp, fault_plan=None)
        browser_params = manager.browsers[0].params

        def make_spec(slot: int, generation: int,
                      fault_spent: Dict[int, int]) -> WorkerSpec:
            return WorkerSpec(
                kind="crawl", slot=slot,
                owner=f"proc-{slot}-g{generation}",
                queue_path=queue_path, seed=mp.seed,
                manager_params=worker_mp,
                browser_params=browser_params, web=web,
                site_count=site_count, world_seed=world_seed,
                fault_plan=plan_dict, fault_spent=fault_spent,
                max_attempts=max_attempts,
                lease_seconds=lease_seconds, journal_dir=journal_dir,
                heartbeat_seconds=heartbeat_seconds,
                shard_path=os.path.join(
                    shard_dir, f"shard-{slot:02d}.sqlite")
                if shard_dir is not None else None,
                pin_cpu=_pin_for(slot, pin_cpus))

        pool = ProcessPool(scheduler.queue, broker, make_spec,
                           worker_procs, telemetry=manager.telemetry,
                           fault_plan=manager.fault_plan,
                           heartbeat_deadline=heartbeat_deadline,
                           respawn_limit=respawn_limit,
                           respawn_backoff=respawn_backoff)
        pool_report = pool.run(stop_after_jobs=stop_after_jobs)
        if shard_dbs:
            coord_storage.close()
            coord_storage = None
            _merge_crawl_shards(manager, scheduler.queue, shard_dir,
                                coordinator_path)
        counts = scheduler.queue.counts()
        return CrawlReport(
            workers=worker_procs, enqueued_total=sum(counts.values()),
            enqueued_new=scheduler._enqueued_new,
            released_leases=scheduler._released,
            completed=pool_report.completed, failed=pool_report.failed,
            retried=pool_report.retried,
            reclaimed=pool_report.reclaimed,
            worker_deaths=pool_report.worker_deaths,
            lease_lost=pool_report.lease_lost,
            interrupted=pool_report.interrupted, counts=counts,
            errors=list(pool_report.errors))
    finally:
        if coord_storage is not None:
            coord_storage.close()
        scheduler.close()


def _merge_crawl_shards(manager: Any, queue: JobQueue, shard_dir: str,
                        coordinator_path: str) -> None:
    """End-of-crawl merge: fold every shard into the canonical DB."""
    from repro.openwpm.merge import merge_shards

    tm = coalesce(manager.telemetry)
    shard_paths = sorted(glob.glob(
        os.path.join(shard_dir, "shard-*.sqlite")))
    if os.path.exists(coordinator_path):
        shard_paths.append(coordinator_path)
    report = merge_shards(shard_paths, controller=manager.storage,
                          queue=queue)
    tm.metrics.counter("proc_shard_merges").inc()
    if report.attempts_applied:
        tm.metrics.counter("proc_shard_attempts_merged").inc(
            report.attempts_applied)
    if report.attempts_voided:
        tm.metrics.counter("proc_shard_attempts_voided").inc(
            report.attempts_voided)
    if report.visits_imported:
        tm.metrics.counter("proc_shard_visits_merged").inc(
            report.visits_imported)
    tm.journal.emit("shard_merge", shards=report.shards,
                    attempts_applied=report.attempts_applied,
                    attempts_voided=report.attempts_voided,
                    attempts_demoted=report.attempts_demoted,
                    attempts_unresolved=report.attempts_unresolved,
                    visits=report.visits_imported, wiped=report.wiped)
    # The merged ledger is the authoritative failed-sites roster (the
    # lifecycle tally cannot see which rows survived retraction).
    with manager.storage._lock:
        rows = manager.storage.connection.execute(
            "SELECT site_url FROM failed_visits ORDER BY id").fetchall()
    with manager._failed_sites_lock:
        manager.failed_sites[:] = [row[0] for row in rows]


def run_process_scan(pipeline: Any, scheduler: Any, corpus: Any,
                     store: Any, dataset: Any, *, queue_path: str,
                     worker_procs: int, world_seed: int = 7,
                     visit_subpages: bool = True,
                     fault_plan: Optional[Any] = None,
                     journal_dir: Optional[str] = None,
                     heartbeat_seconds: float = 1.0,
                     heartbeat_deadline: float =
                     DEFAULT_HEARTBEAT_DEADLINE,
                     respawn_limit: int = DEFAULT_RESPAWN_LIMIT,
                     respawn_backoff: float = 0.5,
                     shard_dbs: bool = False,
                     pin_cpus: bool = False,
                     resume: bool = False) -> Any:
    """Process-pool backend for :meth:`ScanPipeline.run`.

    The caller (the pipeline) owns corpus/store/dataset and the
    scheduler; this function owns the workers and the single-writer
    :class:`ScanBroker` that folds their envelopes back in — or, with
    ``shard_dbs=True``, per-worker spool databases under
    ``<queue>.shards/`` whose completions are folded in job-id order
    after the pool drains.
    """
    telemetry = pipeline.telemetry
    spool_dir = None
    if shard_dbs:
        spool_dir = queue_path + ".shards"
        os.makedirs(spool_dir, exist_ok=True)
        if not resume:
            for stale in sorted(glob.glob(
                    os.path.join(spool_dir, "*.sqlite*"))):
                os.remove(stale)
        broker: Any = _ShardLifecycle(scheduler.queue, telemetry)
    else:
        broker = ScanBroker(scheduler.queue, corpus, store, dataset,
                            telemetry)
    plan_dict = fault_plan.to_dict() if fault_plan is not None else None

    def make_spec(slot: int, generation: int,
                  fault_spent: Dict[int, int]) -> WorkerSpec:
        return WorkerSpec(
            kind="scan", slot=slot,
            owner=f"proc-{slot}-g{generation}",
            queue_path=queue_path, seed=pipeline.seed,
            web="tranco", site_count=pipeline.web.site_count,
            world_seed=world_seed, fault_plan=plan_dict,
            fault_spent=fault_spent, max_attempts=1,
            journal_dir=journal_dir,
            heartbeat_seconds=heartbeat_seconds,
            scan_client_id=pipeline.client_id,
            scan_dwell=pipeline.dwell,
            scan_max_subpages=pipeline.max_subpages,
            scan_visit_subpages=visit_subpages,
            shard_path=os.path.join(
                spool_dir, f"shard-{slot:02d}.sqlite")
            if spool_dir is not None else None,
            pin_cpu=_pin_for(slot, pin_cpus))

    pool = ProcessPool(scheduler.queue, broker, make_spec, worker_procs,
                       telemetry=telemetry, fault_plan=fault_plan,
                       heartbeat_deadline=heartbeat_deadline,
                       respawn_limit=respawn_limit,
                       respawn_backoff=respawn_backoff)
    report = pool.run()
    if shard_dbs:
        # Fold runs even after an interrupted pool: every queue-level
        # completion has its evidence in a spool (persist-before-
        # complete), and folding keeps the 'completed implies evidence
        # in the store' invariant that --resume checks.
        fold_scan_spools(
            sorted(glob.glob(os.path.join(spool_dir,
                                          "shard-*.sqlite"))),
            scheduler.queue, corpus, store, dataset, telemetry)
    return report



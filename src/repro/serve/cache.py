"""LRU/TTL response cache, invalidated by rollup generations.

The cache sits between the HTTP handlers and the aggregate builders.
Its correctness contract (pinned by Hypothesis property tests):

* **Generation safety** — an entry is only ever returned for the
  generation it was stored under. The caller passes the *current*
  rollup generation on every lookup; an entry keyed under an older
  generation is a miss (and is dropped), so a served answer can never
  be older than the aggregate state backing it.
* **Capacity** — at most ``capacity`` entries live at once; inserting
  into a full cache evicts the least-recently-used entry.
* **TTL monotonicity** — an entry expires ``ttl`` seconds after it was
  stored (by the injected clock, so tests drive expiry with the
  virtual clock); once expired it stays expired, clocks being monotone.

The TTL is a second line of defence, not the invalidation mechanism:
generation bumps already invalidate precisely. It bounds staleness of
anything that slips past generation keying (e.g. a payload that reads
raw tables, like the corpus ``stored`` block) without a write bump.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Tuple


class _MonotonicClock:
    """Default wall clock (`time.monotonic` behind the clock API)."""

    def now(self) -> float:
        return time.monotonic()


@dataclass
class CachedResponse:
    """One rendered response: body bytes plus transport metadata.

    ``generation`` is an int for a single-database server and a tuple
    (one component per shard) under fan-out — the cache only ever
    compares generations for equality, so both key identically.
    """

    body: bytes
    status: int = 200
    content_type: str = "application/json"
    generation: Any = 0
    stored_at: float = 0.0
    #: Entity tag for conditional requests; empty means "send none".
    #: Derived from ``generation`` by the server, never stored here by
    #: the cache itself (a cached body revalidated under a new lookup
    #: gets the tag re-stamped by the caller).
    etag: str = ""


class ResponseCache:
    """Thread-safe LRU with per-entry TTL and generation keying."""

    def __init__(self, capacity: int = 512, ttl: float = 30.0,
                 clock: Any = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ttl <= 0:
            raise ValueError("ttl must be > 0")
        self.capacity = capacity
        self.ttl = ttl
        self.clock = clock if clock is not None else _MonotonicClock()
        self._entries: "OrderedDict[str, CachedResponse]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, generation: Any
            ) -> Optional[CachedResponse]:
        """The entry for *key* iff stored under *generation* and young
        enough; stale entries (either way) are evicted on sight."""
        now = self.clock.now()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.generation != generation:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            if now - entry.stored_at >= self.ttl:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, generation: Any, body: bytes,
            status: int = 200,
            content_type: str = "application/json"
            ) -> CachedResponse:
        entry = CachedResponse(body=body, status=status,
                               content_type=content_type,
                               generation=generation,
                               stored_at=self.clock.now())
        with self._lock:
            if self.capacity == 0:
                return entry
            self._entries.pop(key, None)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def keys(self) -> Tuple[str, ...]:
        """Current keys, least-recently-used first (for tests)."""
        with self._lock:
            return tuple(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {"size": len(self._entries),
                    "capacity": self.capacity,
                    "ttl": self.ttl,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "expirations": self.expirations,
                    "invalidations": self.invalidations}

"""Servers of the synthetic web.

Four server families:

* :class:`SiteServer` — first-party pages: front page, subpages, widget
  iframes, own scripts (app/analytics/decoy), first-party bot-management
  scripts, CSP headers and report endpoint, own cookies.
* :class:`DetectorProviderServer` — third-party bot-detection scripts;
  its ``/report`` endpoint feeds a shared "bot intel" blackboard keyed
  by client IP (the server-side re-identification channel).
* :class:`TrackerServer` — ad/tracking networks: tag scripts, tracking
  pixels with uid cookies, ad iframes, extra ad scripts. *Cloaks*: once
  a client is known to be a bot (client-side flag or shared intel), it
  withholds tracking cookies and trims ad traffic — producing the
  WPM vs WPM_hide differences of Tables 8-10.
* :class:`CDNServer` / :class:`OpenWPMProviderServer` — benign library
  hosting and the Table 6 OpenWPM-residue probes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.net.http import HttpRequest, HttpResponse, SetCookie
from repro.net.network import ClientIdentity, Network, Server
from repro.net.page import (
    IFrameItem,
    LinkItem,
    PageSpec,
    ResourceItem,
    ScriptItem,
)
from repro.net.http import ResourceType
from repro.web import detector_scripts as corpus
from repro.web.sitegen import SiteConfig

#: Key under which detection providers share bot verdicts (models the
#: ad industry's data sharing; keyed by client IP).
BOT_INTEL = "bot-intel"
#: Published (batch-synced) view of the intel: client -> number of sync
#: cycles the client has been on the list. Trackers consume this view,
#: so re-identification takes effect only from the *next* crawl run —
#: the paper's r1 -> r3 amplification (Sec. 6.3).
BOT_INTEL_PUBLISHED = "bot-intel-published"


def flag_client(network: Network, client: ClientIdentity) -> None:
    network.state[BOT_INTEL][client.client_id] = True


def client_flagged(network: Network, client: ClientIdentity) -> bool:
    """Raw (unsynced) verdict — what the detection provider itself knows."""
    return bool(network.state[BOT_INTEL].get(client.client_id))


def published_age(network: Network, client: ClientIdentity) -> int:
    """How many sync cycles the client has been on the published list."""
    return int(network.state[BOT_INTEL_PUBLISHED].get(client.client_id, 0))


def sync_intel(network: Network) -> None:
    """Batch-publish the intel (run between crawl repetitions)."""
    published = network.state[BOT_INTEL_PUBLISHED]
    for client_id, flagged in network.state[BOT_INTEL].items():
        if flagged:
            published[client_id] = published.get(client_id, 0) + 1


def _query_params(request: HttpRequest) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for pair in request.url.query.split("&"):
        if "=" in pair:
            key, _, value = pair.partition("=")
            params[key] = value
    return params


# ---------------------------------------------------------------------------
# First-party site server
# ---------------------------------------------------------------------------

#: First-party vendors that respond to a confirmed bot with a CAPTCHA
#: interstitial on revisits (Sec. 4.3.2: "one should expect sites with
#: first-party detectors to ... serve CAPTCHAs").
HARD_BLOCKING_VENDORS = frozenset({"PerimeterX"})


class SiteServer(Server):
    """Serves one synthetic first-party site from its :class:`SiteConfig`."""

    def __init__(self, config: SiteConfig) -> None:
        self.config = config
        #: Clients the site's own bot management has flagged.
        self._site_flagged: Dict[str, bool] = {}
        #: Challenge interstitials served, per client (for auditing).
        self.challenges_served: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest, client: ClientIdentity,
               network: Network) -> HttpResponse:
        path = request.url.path
        if path == "/" or path == "/index.html":
            return self._front_page(client, network)
        if path.startswith("/p/"):
            return self._subpage(path, client, network)
        if path.startswith("/widget/"):
            return self._widget_page()
        if path == "/js/app.js":
            return self._script(self._app_source())
        if path == "/js/analytics.js":
            return self._script(corpus.FIRST_PARTY_ANALYTICS)
        if path == "/js/dom-probe.js" \
                and self.config.dom_probe_variant is not None:
            return self._script(corpus.dom_probe_script(
                self.config.dom_probe_variant))
        if path == "/js/ua-check.js":
            return self._script(corpus.DECOY_UA_SCRIPT)
        if path == self.config.first_party_path.split("?")[0] \
                and self.config.first_party_vendor:
            return self._script(corpus.first_party_detector(
                self.config.first_party_vendor))
        if path.startswith("/analytics/collect"):
            return self._analytics_beacon(client)
        if "/telemetry" in path:
            return self._vendor_telemetry(request, client, network)
        if path == "/csp-report":
            return HttpResponse(status=204, content_type="text/plain")
        if path.startswith("/challenge/"):
            if path.endswith(".js"):
                return self._script(
                    "(function () { /* solve the puzzle */ })();")
            return HttpResponse(content_type="image/png", body="PNG")
        if path == "/api/data":
            return HttpResponse(content_type="application/json",
                                body='{"items": [1, 2, 3]}')
        if path.startswith(("/img/", "/media/", "/fonts/", "/css/")):
            return self._static_asset(path)
        return HttpResponse.not_found()

    # ------------------------------------------------------------------
    def _csp_header(self) -> str:
        config = self.config
        if not (config.csp_blocking or config.csp_intrinsic_violation):
            return ""
        allowed: List[str] = ["'self'"]
        if not config.csp_blocking:
            allowed.append("'unsafe-inline'")
        hosts = set(config.third_party_detectors)
        hosts.update(config.trackers)
        hosts.update(config.openwpm_providers)
        hosts.add("jslib-cdn.example")
        if config.has_iterator:
            hosts.add("audience-graph.net")
        allowed.extend(sorted(hosts))
        return "script-src " + " ".join(allowed) + "; report-uri /csp-report"

    def _front_page(self, client: ClientIdentity,
                    network: Network) -> HttpResponse:
        config = self.config
        if config.first_party_vendor in HARD_BLOCKING_VENDORS \
                and self._site_flagged.get(client.client_id):
            return self._challenge_page(client)
        items: List = [
            ScriptItem(src="https://jslib-cdn.example/lib.js"),
            ResourceItem(url="/css/main.css",
                         resource_type=ResourceType.STYLESHEET),
            ResourceItem(url="https://fonts-cdn.example/sans.woff2",
                         resource_type=ResourceType.FONT),
            ScriptItem(src="/js/app.js"),
        ]
        if config.csp_intrinsic_violation:
            # A script host missing from the site's own allow list:
            # blocked on every client, producing the baseline csp_report
            # traffic WPM_hide still sees (Table 8).
            items.append(ScriptItem(src="https://rogue-cdn.example/x.js"))
        if config.first_party_vendor:
            items.append(ScriptItem(src=config.first_party_path))
        # Half the trackers load before the detectors: in the first run
        # they still see an unflagged client (the r1 -> r3 amplification).
        early = config.trackers[: len(config.trackers) // 2]
        late = config.trackers[len(config.trackers) // 2:]
        for tracker in early:
            items.append(ScriptItem(src=f"https://{tracker}/track.js"))
        if config.front_detector_form:
            for provider in config.third_party_detectors:
                items.append(ScriptItem(
                    src=f"https://{provider}/tag.js"
                        f"?form={config.front_detector_form}"))
        for provider in config.openwpm_providers:
            items.append(ScriptItem(src=f"https://{provider}/owpm.js"))
        if config.has_decoy:
            items.append(ScriptItem(src="/js/ua-check.js"))
        if config.has_iterator:
            items.append(ScriptItem(
                src="https://audience-graph.net/fp.js"))
        for tracker in late:
            items.append(ScriptItem(src=f"https://{tracker}/track.js"))
        items.append(ScriptItem(src="/js/analytics.js"))
        if config.dom_probe_variant is not None:
            items.append(ScriptItem(src="/js/dom-probe.js"))
        for index in range(config.n_images):
            items.append(ResourceItem(url=f"/img/{index}.png"))
        if config.has_media:
            items.append(ResourceItem(url="/media/clip.mp4",
                                      resource_type=ResourceType.MEDIA))
        if config.has_object:
            items.append(ResourceItem(url="/media/legacy.swf",
                                      resource_type=ResourceType.OBJECT))
        items.append(ResourceItem(url=f"/img/hero-set-{config.n_images}.png",
                                  resource_type=ResourceType.IMAGESET))
        for index in range(config.n_widget_iframes):
            items.append(IFrameItem(src=f"/widget/{index}.html"))
        if config.has_ad_iframe and config.trackers:
            items.append(IFrameItem(
                src=f"https://{config.trackers[0]}/adframe.html"))
        for index in range(1, config.subpage_count + 1):
            items.append(LinkItem(href=f"/p/{index}.html",
                                  text=f"section {index}"))
        # An off-site link that must NOT count as a subpage (eTLD+1 rule).
        items.append(LinkItem(href="https://jslib-cdn.example/docs",
                              text="docs"))

        page = PageSpec(url=f"https://www.{config.domain}/",
                        title=config.domain,
                        csp_header=self._csp_header(), items=items)
        return HttpResponse(
            page=page, body=page.to_html(),
            set_cookies=self._front_cookies(client))

    def _front_cookies(self, client: ClientIdentity) -> List[SetCookie]:
        token = hashlib.sha256(
            f"{self.config.domain}:{client.client_id}".encode()
        ).hexdigest()
        return [
            SetCookie("session_id", token[:16]),
            SetCookie("prefs", "layout=a", max_age=86400 * 30),
        ]

    def _subpage(self, path: str, client: ClientIdentity,
                 network: Network) -> HttpResponse:
        config = self.config
        items: List = [
            ScriptItem(src="/js/app.js"),
            ResourceItem(url="/img/sub-banner.png"),
            ResourceItem(url="/img/sub-photo.png"),
        ]
        page_index = path[len("/p/"):].split(".")[0]
        if config.sub_detector_form \
                and page_index == str(config.sub_detector_page):
            for provider in config.third_party_detectors:
                items.append(ScriptItem(
                    src=f"https://{provider}/tag.js"
                        f"?form={config.sub_detector_form}"))
        for tracker in config.trackers[:2]:
            items.append(ScriptItem(src=f"https://{tracker}/track.js"))
        items.append(LinkItem(href="/", text="home"))
        page = PageSpec(url=f"https://www.{config.domain}{path}",
                        title=f"{config.domain}{path}",
                        csp_header=self._csp_header(), items=items)
        return HttpResponse(page=page, body=page.to_html())

    def _challenge_page(self, client: ClientIdentity) -> HttpResponse:
        """A CAPTCHA interstitial: the whole site is withheld."""
        self.challenges_served[client.client_id] = \
            self.challenges_served.get(client.client_id, 0) + 1
        page = PageSpec(
            url=f"https://www.{self.config.domain}/",
            title="One more step...",
            items=[
                ScriptItem(src=self.config.first_party_path or
                           "/challenge/check.js"),
                ResourceItem(url="/challenge/puzzle.png"),
            ])
        return HttpResponse(page=page, body=page.to_html())

    def _widget_page(self) -> HttpResponse:
        page = PageSpec(url=f"https://www.{self.config.domain}/widget",
                        title="widget",
                        csp_header=self._csp_header(), items=[])
        return HttpResponse(page=page, body=page.to_html())

    # ------------------------------------------------------------------
    def _app_source(self) -> str:
        parts = ["""
(function () {
    fetch("/api/data").then(function (res) { return res.text(); });
    fetch("/api/data").then(function (res) { return res.text(); });
})();
"""]
        if self.config.has_websocket:
            parts.append(
                'new WebSocket("wss://www.' + self.config.domain
                + '/live");\n')
        return "\n".join(parts)

    def _script(self, source: str) -> HttpResponse:
        from repro.net.page import ScriptFile

        return HttpResponse(
            content_type="text/javascript", body=source,
            script=ScriptFile(url="", source=source))

    def _analytics_beacon(self, client: ClientIdentity) -> HttpResponse:
        if self._site_flagged.get(client.client_id):
            return HttpResponse(status=204, content_type="text/plain")
        uid = hashlib.sha256(
            f"{self.config.domain}:{client.client_id}:"
            f"{id(self)}".encode()).hexdigest()[:20]
        return HttpResponse(
            status=204, content_type="text/plain",
            set_cookies=[SetCookie("_fp_uid", uid, max_age=86400 * 180)])

    def _vendor_telemetry(self, request: HttpRequest,
                          client: ClientIdentity,
                          network: Network) -> HttpResponse:
        params = _query_params(request)
        if params.get("bot") == "1":
            self._site_flagged[client.client_id] = True
            flag_client(network, client)
        return HttpResponse(status=204, content_type="text/plain")

    def _static_asset(self, path: str) -> HttpResponse:
        if path.startswith("/media/"):
            return HttpResponse(content_type="video/mp4", body="MP4DATA")
        if path.startswith("/fonts/"):
            return HttpResponse(content_type="font/woff2", body="WOFF")
        if path.startswith("/css/"):
            return HttpResponse(content_type="text/css",
                                body="body { margin: 0; }")
        return HttpResponse(content_type="image/png", body="PNGDATA")


# ---------------------------------------------------------------------------
# Third-party detector provider
# ---------------------------------------------------------------------------

class DetectorProviderServer(Server):
    """Serves detector tags and collects verdicts for a provider domain."""

    def __init__(self, domain: str) -> None:
        self.domain = domain
        #: (client_id -> bot verdicts received)
        self.reports: Dict[str, List[bool]] = {}

    def handle(self, request: HttpRequest, client: ClientIdentity,
               network: Network) -> HttpResponse:
        from repro.net.page import ScriptFile

        path = request.url.path
        params = _query_params(request)
        if path == "/tag.js":
            form = params.get("form", "plain")
            source = corpus.selenium_detector(self.domain, form=form)
            return HttpResponse(content_type="text/javascript",
                                body=source,
                                script=ScriptFile(url="", source=source))
        if path == "/report":
            is_bot = params.get("bot") == "1"
            self.reports.setdefault(client.client_id, []).append(is_bot)
            if is_bot:
                flag_client(network, client)
            return HttpResponse(status=204, content_type="text/plain")
        if path == "/fp.js":
            source = corpus.iterator_fingerprinter(self.domain)
            return HttpResponse(content_type="text/javascript",
                                body=source,
                                script=ScriptFile(url="", source=source))
        if path.startswith("/fp"):
            return HttpResponse(status=204, content_type="text/plain")
        return HttpResponse.not_found()


class OpenWPMProviderServer(Server):
    """Serves the OpenWPM-residue probes of Table 6."""

    def __init__(self, domain: str, probes: tuple,
                 statically_visible: bool) -> None:
        self.domain = domain
        self.probes = probes
        self.statically_visible = statically_visible
        self.reports: Dict[str, List[bool]] = {}

    def handle(self, request: HttpRequest, client: ClientIdentity,
               network: Network) -> HttpResponse:
        from repro.net.page import ScriptFile

        path = request.url.path
        params = _query_params(request)
        if path == "/owpm.js":
            source = corpus.openwpm_detector(
                self.domain, self.probes,
                obfuscated=not self.statically_visible)
            return HttpResponse(content_type="text/javascript",
                                body=source,
                                script=ScriptFile(url="", source=source))
        if path == "/report":
            is_bot = params.get("owpm") == "1"
            self.reports.setdefault(client.client_id, []).append(is_bot)
            if is_bot:
                flag_client(network, client)
            return HttpResponse(status=204, content_type="text/plain")
        return HttpResponse.not_found()


# ---------------------------------------------------------------------------
# Trackers / advertisers (the cloaking party)
# ---------------------------------------------------------------------------

class TrackerServer(Server):
    """An ad/tracking network that treats known bots differently."""

    def __init__(self, domain: str, cloaks: bool = True,
                 bot_ad_fill: str = "full",
                 activation_delay: int = 1,
                 extra_uid_cookie: bool = False) -> None:
        self.domain = domain
        self.cloaks = cloaks
        self.bot_ad_fill = bot_ad_fill
        #: How many intel sync cycles before this network acts on a
        #: listed client (cautious networks wait for confirmation).
        self.activation_delay = activation_delay
        self.extra_uid_cookie = extra_uid_cookie

    def _is_bot(self, client: ClientIdentity, network: Network) -> bool:
        if not self.cloaks:
            return False
        if self.activation_delay == 0:
            # Networks that run their own detection (ad-verification
            # firms) act on the raw verdict within the same run.
            return client_flagged(network, client)
        return published_age(network, client) >= self.activation_delay

    def handle(self, request: HttpRequest, client: ClientIdentity,
               network: Network) -> HttpResponse:
        from repro.net.page import ScriptFile

        path = request.url.path
        params = _query_params(request)
        if path == "/track.js":
            source = corpus.tracker_script(self.domain, gated=self.cloaks)
            return HttpResponse(content_type="text/javascript",
                                body=source,
                                script=ScriptFile(url="", source=source))
        if path == "/pixel":
            uid = params.get("uid", "anon")
            name = "_trk_" + hashlib.sha256(
                self.domain.encode()).hexdigest()[:6]
            # Every client gets the operational cookies; only clients
            # believed human get the identifying uid cookie.
            cookies = [
                SetCookie("_sess_" + name[5:9], uid[:8]),
                SetCookie("_cfg_" + name[5:9], "v2-defaults",
                          max_age=86400 * 365),
                SetCookie("_consent_" + name[5:9], "granted-all",
                          max_age=86400 * 365),
            ]
            deny_uid = self.cloaks and (
                params.get("bot") == "1"
                or self._is_bot(client, network)
                or uid == "denied")
            if not deny_uid:
                cookies.append(SetCookie(name, uid, max_age=86400 * 365))
                if self.extra_uid_cookie:
                    cookies.append(SetCookie(
                        name.replace("_trk_", "_trkx_"), uid[::-1],
                        max_age=86400 * 365))
            return HttpResponse(content_type="image/gif", body="GIF",
                                set_cookies=cookies)
        if path == "/adframe.html":
            return self._ad_frame(client, network)
        if path == "/ad.js":
            source = self._ad_script(client, network)
            return HttpResponse(content_type="text/javascript",
                                body=source,
                                script=ScriptFile(url="", source=source))
        if path == "/fp.js":
            # Analytics networks also ship property-sweep
            # fingerprinters (the honey-property 'inconclusive' class).
            source = corpus.iterator_fingerprinter(self.domain)
            return HttpResponse(content_type="text/javascript",
                                body=source,
                                script=ScriptFile(url="", source=source))
        if path.startswith(("/creative", "/beacon", "/fp")):
            return HttpResponse(status=204, content_type="text/plain")
        return HttpResponse.not_found()

    def _ad_frame(self, client: ClientIdentity,
                  network: Network) -> HttpResponse:
        # The frame itself renders for everyone; known bots just get a
        # cheaper fill (one creative, inert auction script).
        items = [ScriptItem(src="/ad.js"),
                 ResourceItem(url="/creative/banner.png")]
        if not self._is_bot(client, network) or self.bot_ad_fill == "full":
            items.append(ResourceItem(url="/creative/alt.png"))
        page = PageSpec(url=f"https://{self.domain}/adframe.html",
                        title="ad", items=items)
        return HttpResponse(page=page, body=page.to_html())

    def _ad_script(self, client: ClientIdentity,
                   network: Network) -> str:
        full = """
(function () {
    var img = new Image();
    img.src = "https://%s/creative/impression.png";
    navigator.sendBeacon("https://%s/beacon/viewability");
    fetch("https://%s/beacon/bid").then(function (r) { return r.text(); });
})();
""" % (self.domain, self.domain, self.domain)
        if not self._is_bot(client, network):
            return full
        if self.bot_ad_fill == "full":
            return full
        if self.bot_ad_fill == "partial":
            # No impression pixel for bots; auction still runs.
            return """
(function () {
    navigator.sendBeacon("https://%s/beacon/viewability");
    fetch("https://%s/beacon/bid").then(function (r) { return r.text(); });
})();
""" % (self.domain, self.domain)
        return "(function () { /* no auction for bots */ })();"


# ---------------------------------------------------------------------------
# Benign CDN
# ---------------------------------------------------------------------------

class CDNServer(Server):
    """Serves the shared benign library and static assets."""

    def handle(self, request: HttpRequest, client: ClientIdentity,
               network: Network) -> HttpResponse:
        from repro.net.page import ScriptFile

        path = request.url.path
        if path.endswith(".js"):
            return HttpResponse(content_type="text/javascript",
                                body=corpus.BENIGN_LIBRARY,
                                script=ScriptFile(
                                    url="", source=corpus.BENIGN_LIBRARY))
        if path.endswith(".woff2"):
            return HttpResponse(content_type="font/woff2", body="WOFF")
        if path == "/docs":
            page = PageSpec(url=str(request.url), title="docs", items=[])
            return HttpResponse(page=page, body=page.to_html())
        return HttpResponse(content_type="text/plain", body="cdn")

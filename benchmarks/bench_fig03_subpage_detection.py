"""Fig. 3: detectors on front vs subpages, per rank bucket."""

from conftest import BENCH_SITES, report


def test_benchmark_fig3(benchmark, bench_world, bench_scan):
    bucket_size = max(BENCH_SITES // 8, 1)
    buckets = benchmark(bench_scan.fig3, bench_world.tranco, bucket_size)

    front_total = sum(b["front"] for b in buckets)
    combined_total = sum(b["combined"] for b in buckets)
    increase = (combined_total - front_total) / max(front_total, 1)

    lines = [f"(bucket size {bucket_size}; paper: subpage crawling lifts "
             "detection by >= 37% relative, 14% -> 19% of sites)", "",
             "| rank bucket | sites | front | front+sub |",
             "|---|---|---|---|"]
    for bucket in buckets:
        lines.append(f"| {bucket['bucket']} | {bucket['sites']} | "
                     f"{bucket['front']} | {bucket['combined']} |")
    lines.append("")
    lines.append(f"front total: {front_total} "
                 f"({front_total / BENCH_SITES:.1%}); "
                 f"front+sub total: {combined_total} "
                 f"({combined_total / BENCH_SITES:.1%}); "
                 f"relative increase: {increase:.1%}")
    report("fig03_subpage_detection",
           "Fig 3 - detectors on front vs subpages per rank bucket",
           lines)

    assert combined_total > front_total
    assert increase > 0.15  # paper: >= 37% for dynamic, ~34% combined
    # Rank gradient: the top bucket carries more detectors than the last.
    assert buckets[0]["combined"] >= buckets[-1]["combined"]

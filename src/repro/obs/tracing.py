"""Span-based tracing with context propagation.

A *trace* is one unit of top-level work (a site visit, a scan of one
domain, one paired-crawl repetition). A *span* is one timed stage inside
it (page load, JS execution, instrument callbacks, interaction, storage
writes). Spans nest: the tracer keeps a current-span stack, and every
span opened while another is active becomes its child, so a crawl
renders as a tree without any explicit context threading.

Identifiers are sequential (``trace-00000001``), not random — the same
crawl under the same seed produces byte-identical traces.

:class:`NullTracer` is the disabled-mode implementation: ``span()``
returns a shared no-op context manager, so instrumented code costs one
attribute lookup and one method call per stage when telemetry is off.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.clock import VirtualClock


@dataclass
class Span:
    """One timed, attributed stage of work."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start_time: float = 0.0
    end_time: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"

    @property
    def duration(self) -> float:
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_status(self, status: str) -> None:
        self.status = status

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class _ActiveSpan:
    """Context manager binding one span to the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.status = f"error:{exc_type.__name__}"
        self._tracer._end(self.span)
        return False


class Tracer:
    """Creates spans, tracks the active-span stack, keeps finished spans.

    Thread-safe: the active-span stack is *per thread* (worker threads
    each build their own span tree; one worker ending a span can never
    unwind another worker's in-flight spans), while id allocation and
    the finished-span list are shared under a lock. Single-threaded
    runs allocate ids in the exact same order as before, preserving the
    byte-identical-trace determinism guarantee.
    """

    enabled = True

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._local = threading.local()
        self._finished: List[Span] = []
        self._lock = threading.Lock()
        self._next_trace = 1
        self._next_span = 1
        #: Flight-recorder hooks: ``on_start(span)`` fires after a span
        #: opens, ``on_end(span)`` after it closes (orphans included).
        #: Set by ``Telemetry.attach_journal``; ``None`` costs one
        #: branch per span.
        self.on_start: Optional[Any] = None
        self.on_end: Optional[Any] = None

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's own active-span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a span as a child of the currently active span (if any).

        Use as a context manager::

            with tracer.span("visit", url=url) as visit:
                with tracer.span("page_load"):
                    ...
                visit.set_attribute("outcome", "completed")
        """
        stack = self._stack
        parent = stack[-1] if stack else None
        with self._lock:
            if parent is None:
                trace_id = f"trace-{self._next_trace:08d}"
                self._next_trace += 1
                parent_id = None
            else:
                trace_id = parent.trace_id
                parent_id = parent.span_id
            span_id = f"span-{self._next_span:08d}"
            self._next_span += 1
        span = Span(
            name=name, trace_id=trace_id, span_id=span_id,
            parent_id=parent_id, start_time=self.clock.now(),
            attributes=dict(attributes))
        stack.append(span)
        if self.on_start is not None:
            self.on_start(span)
        return _ActiveSpan(self, span)

    def _end(self, span: Span) -> None:
        span.end_time = self.clock.now()
        # Unwind to (and including) the span being ended; an exception
        # escaping a nested span must not leave orphans on the stack.
        # Only the opening thread's stack is touched.
        stack = self._stack
        done: List[Span] = []
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.end_time = span.end_time
            top.status = "error:orphaned"
            done.append(top)
        done.append(span)
        with self._lock:
            self._finished.extend(done)
        if self.on_end is not None:
            for finished in done:
                self.on_end(finished)

    # ------------------------------------------------------------------
    def current_span(self) -> Optional[Span]:
        stack = self._stack
        return stack[-1] if stack else None

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.finished_spans() if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.finished_spans()
                if s.parent_id == span.span_id]

    def clear(self) -> None:
        self._stack.clear()
        with self._lock:
            self._finished.clear()

    def snapshot(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.finished_spans()]


class _NullSpan:
    """Inert span: accepts the full Span surface, records nothing."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"
    duration = 0.0
    attributes: Dict[str, Any] = {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled-mode tracer: every call is a no-op on shared singletons."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def finished_spans(self) -> List[Span]:
        return []

    def spans_named(self, name: str) -> List[Span]:
        return []

    def children_of(self, span: Any) -> List[Span]:
        return []

    def clear(self) -> None:
        pass

    def snapshot(self) -> List[Dict[str, Any]]:
        return []

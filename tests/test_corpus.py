"""Unit tests for the content-addressed script corpus."""

import sqlite3

import pytest

from repro.core.scan.static_analysis import (
    PATTERN_SET_VERSION,
    scan_script,
)
from repro.corpus import (
    MissingScriptError,
    ScriptCorpus,
    corpus_path_for,
    script_hash,
)

DETECTOR = "if (navigator.webdriver) { report('bot'); }"
BENIGN = "console.log('hello world');"


class TestContentAddressing:
    def test_put_returns_sha256(self):
        corpus = ScriptCorpus()
        digest = corpus.put(DETECTOR)
        assert digest == script_hash(DETECTOR)
        assert len(digest) == 64

    def test_round_trip(self):
        corpus = ScriptCorpus()
        digest = corpus.put(DETECTOR)
        assert corpus.source(digest) == DETECTOR

    def test_identical_bodies_stored_once(self):
        corpus = ScriptCorpus()
        first = corpus.put(DETECTOR)
        second = corpus.put(DETECTOR)
        assert first == second
        assert corpus.stats()["stored_bodies"] == 1

    def test_missing_hash_raises(self):
        corpus = ScriptCorpus()
        with pytest.raises(MissingScriptError):
            corpus.source("0" * 64)

    def test_missing_hash_scan_raises_not_empty_classify(self):
        corpus = ScriptCorpus()
        with pytest.raises(MissingScriptError):
            corpus.scan("0" * 64)

    def test_unicode_body_survives_compression(self):
        corpus = ScriptCorpus()
        body = "var s = 'é中文'; // комментарий"
        assert corpus.source(corpus.put(body)) == body

    def test_corpus_path_for(self):
        assert corpus_path_for(":memory:") == ":memory:"
        assert corpus_path_for("/tmp/x.queue") == "/tmp/x.queue.corpus"


class TestMemoizedScan:
    def test_scan_agrees_with_direct(self):
        corpus = ScriptCorpus()
        digest = corpus.put(DETECTOR)
        for preprocess in (True, False):
            cached = corpus.scan(digest, "u.js", preprocess=preprocess)
            direct = scan_script(DETECTOR, "u.js", preprocess=preprocess)
            assert cached.matched == direct.matched
            assert cached.script_url == "u.js"

    def test_second_scan_is_cache_hit(self):
        corpus = ScriptCorpus()
        digest = corpus.put(DETECTOR)
        corpus.scan(digest)
        assert corpus.cache_misses == 1
        corpus.scan(digest)
        corpus.scan(digest)
        assert corpus.cache_hits == 2
        assert corpus.cache_misses == 1

    def test_preprocess_variants_cached_separately(self):
        corpus = ScriptCorpus()
        hexed = r'navigator["\x77\x65\x62\x64\x72\x69\x76\x65\x72"]'
        digest = corpus.put(hexed)
        assert corpus.scan(digest, preprocess=True).strict_match
        assert not corpus.scan(digest, preprocess=False).strict_match
        # and again, from cache
        assert corpus.scan(digest, preprocess=True).strict_match
        assert not corpus.scan(digest, preprocess=False).strict_match

    def test_sqlite_cache_survives_reopen(self, tmp_path):
        path = str(tmp_path / "c.corpus")
        corpus = ScriptCorpus(path)
        digest = corpus.put(DETECTOR)
        expected = corpus.scan(digest).matched
        corpus.close()
        reopened = ScriptCorpus(path)
        assert reopened.scan(digest).matched == expected
        assert reopened.cache_hits == 1 and reopened.cache_misses == 0
        reopened.close()

    def test_cache_keyed_by_pattern_version(self, tmp_path):
        path = str(tmp_path / "c.corpus")
        corpus = ScriptCorpus(path)
        digest = corpus.put(DETECTOR)
        corpus.scan(digest)
        # Poison the cache under a *different* pattern version; the
        # current version's entry must be untouched and a stale
        # version must never be served.
        with corpus._lock:
            corpus._conn.execute(
                "INSERT OR REPLACE INTO analysis_cache "
                "(hash, pattern_version, preprocess, matched_json) "
                "VALUES (?, 'stale-version', 1, 'bogus-pattern')",
                (digest,))
            corpus._conn.commit()
        corpus._memo.clear()
        assert corpus.scan(digest).matched \
            == scan_script(DETECTOR).matched
        assert PATTERN_SET_VERSION != "stale-version"
        corpus.close()

    def test_cache_disabled_still_correct(self):
        corpus = ScriptCorpus(cache_enabled=False)
        digest = corpus.put(DETECTOR)
        assert corpus.scan(digest).matched == scan_script(DETECTOR).matched
        assert corpus.stats()["cache_entries"] == 0
        assert corpus.cache_hits == 0 and corpus.cache_misses == 0

    def test_env_var_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_CACHE", "off")
        corpus = ScriptCorpus()
        assert not corpus.cache_enabled
        monkeypatch.setenv("REPRO_CORPUS_CACHE", "on")
        assert ScriptCorpus().cache_enabled


class TestBatchLifecycle:
    def test_staged_rows_not_live_until_promoted(self):
        corpus = ScriptCorpus()
        batch = corpus.site_batch("a.test")
        batch.add("https://a.test/x.js", DETECTOR)
        batch.flush_visit()
        batch.commit()
        assert corpus.stats()["occurrences"] == 0
        # body is resolvable immediately (completed => resolvable)
        assert corpus.source(script_hash(DETECTOR)) == DETECTOR
        corpus.promote("a.test", batch.token)
        stats = corpus.stats()
        assert stats["occurrences"] == 1
        assert stats["unique_scripts"] == 1

    def test_visit_index_tracks_visits(self):
        corpus = ScriptCorpus()
        batch = corpus.site_batch("a.test")
        batch.add("https://a.test/x.js", DETECTOR)
        batch.flush_visit()
        batch.add("https://a.test/x.js", DETECTOR)
        batch.flush_visit()
        batch.commit()
        corpus.promote("a.test", batch.token)
        rows = corpus.occurrence_rows()
        assert [r[1] for r in rows] == [0, 1]

    def test_refcounts_match_occurrences(self):
        corpus = ScriptCorpus()
        for site in ("a.test", "b.test", "c.test"):
            batch = corpus.site_batch(site)
            batch.add(f"https://{site}/x.js", DETECTOR)
            batch.add(f"https://{site}/y.js", BENIGN)
            batch.flush_visit()
            corpus.promote(site, batch.token)
        with corpus._lock:
            rows = corpus._conn.execute(
                "SELECT refcount FROM scripts ORDER BY hash").fetchall()
        assert sorted(r["refcount"] for r in rows) == [3, 3]
        assert corpus.stats()["dedup_ratio"] == 3.0

    def test_dropped_attempt_retracts_refcounts(self):
        corpus = ScriptCorpus()
        batch = corpus.site_batch("a.test")
        batch.add("https://a.test/x.js", DETECTOR)
        batch.flush_visit()
        corpus.drop_staged(batch.token)
        corpus.promote("a.test", batch.token)  # nothing staged: no-op
        stats = corpus.stats()
        assert stats["occurrences"] == 0
        assert stats["unique_scripts"] == 0
        assert corpus.vacuum() == 1  # orphaned body reclaimed

    def test_promote_replaces_previous_record(self):
        corpus = ScriptCorpus()
        first = corpus.site_batch("a.test")
        first.add("https://a.test/x.js", DETECTOR)
        first.flush_visit()
        corpus.promote("a.test", first.token)
        second = corpus.site_batch("a.test")
        second.add("https://a.test/y.js", BENIGN)
        second.flush_visit()
        corpus.promote("a.test", second.token)
        rows = corpus.occurrence_rows()
        assert len(rows) == 1 and rows[0][2] == "https://a.test/y.js"
        assert corpus.stats()["unique_scripts"] == 1

    def test_retract_site(self):
        corpus = ScriptCorpus()
        batch = corpus.site_batch("a.test")
        batch.add("https://a.test/x.js", DETECTOR)
        batch.flush_visit()
        corpus.promote("a.test", batch.token)
        corpus.retract_site("a.test")
        assert corpus.stats()["occurrences"] == 0
        assert corpus.stats()["unique_scripts"] == 0

    def test_recover_site_promotes_orphaned_stage(self):
        # Simulates a crash between queue completion and promotion.
        corpus = ScriptCorpus()
        batch = corpus.site_batch("a.test")
        batch.add("https://a.test/x.js", DETECTOR)
        batch.flush_visit()
        corpus.recover_site("a.test")
        stats = corpus.stats()
        assert stats["occurrences"] == 1
        assert stats["unique_scripts"] == 1

    def test_recover_site_drops_stale_stage_when_live(self):
        corpus = ScriptCorpus()
        winner = corpus.site_batch("a.test")
        winner.add("https://a.test/x.js", DETECTOR)
        winner.flush_visit()
        corpus.promote("a.test", winner.token)
        loser = corpus.site_batch("a.test")
        loser.add("https://a.test/x.js", DETECTOR)
        loser.flush_visit()
        corpus.recover_site("a.test")
        assert corpus.stats()["occurrences"] == 1
        with corpus._lock:
            staged = corpus._conn.execute(
                "SELECT COUNT(*) AS n FROM staged_occurrences"
            ).fetchone()["n"]
        assert staged == 0


class TestPersistence:
    def test_bodies_and_index_survive_reopen(self, tmp_path):
        path = str(tmp_path / "c.corpus")
        corpus = ScriptCorpus(path)
        batch = corpus.site_batch("a.test")
        digest = batch.add("https://a.test/x.js", DETECTOR)
        batch.flush_visit()
        corpus.promote("a.test", batch.token)
        corpus.close()
        reopened = ScriptCorpus(path)
        assert reopened.source(digest) == DETECTOR
        assert reopened.occurrence_rows() == [
            ("a.test", 0, "https://a.test/x.js", digest)]
        reopened.close()

    def test_clear_resets_everything(self, tmp_path):
        path = str(tmp_path / "c.corpus")
        corpus = ScriptCorpus(path)
        batch = corpus.site_batch("a.test")
        batch.add("https://a.test/x.js", DETECTOR)
        batch.flush_visit()
        corpus.promote("a.test", batch.token)
        corpus.scan(script_hash(DETECTOR))
        corpus.clear()
        stats = corpus.stats()
        assert stats["stored_bodies"] == 0
        assert stats["occurrences"] == 0
        assert stats["cache_entries"] == 0
        assert stats["cache_hits"] == 0
        corpus.close()

    def test_compression_actually_compresses(self):
        corpus = ScriptCorpus()
        # highly repetitive source, like real minified bundles
        body = "var a = 'webdriver';\n" * 200
        batch = corpus.site_batch("a.test")
        batch.add("https://a.test/big.js", body)
        batch.flush_visit()
        corpus.promote("a.test", batch.token)
        stats = corpus.stats()
        assert stats["corpus_bytes"] < stats["unique_raw_bytes"] / 5

    def test_stats_raw_bytes_counts_occurrences(self):
        corpus = ScriptCorpus()
        for site in ("a.test", "b.test"):
            batch = corpus.site_batch(site)
            batch.add(f"https://{site}/x.js", DETECTOR)
            batch.flush_visit()
            corpus.promote(site, batch.token)
        stats = corpus.stats()
        assert stats["raw_bytes"] == 2 * len(DETECTOR.encode())
        assert stats["unique_raw_bytes"] == len(DETECTOR.encode())


class TestFormatMeta:
    def test_format_marker_written(self, tmp_path):
        path = str(tmp_path / "c.corpus")
        ScriptCorpus(path).close()
        conn = sqlite3.connect(path)
        row = conn.execute(
            "SELECT value FROM corpus_meta WHERE key = 'format'"
        ).fetchone()
        conn.close()
        assert row is not None

"""JavaScript tokenizer."""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional

KEYWORDS = frozenset({
    "var", "let", "const", "function", "return", "if", "else", "while",
    "for", "do", "break", "continue", "new", "delete", "typeof",
    "instanceof", "in", "of", "try", "catch", "finally", "throw",
    "true", "false", "null", "undefined", "this",
    "switch", "case", "default", "void",
})

# Longest-first so e.g. '===' wins over '=='.
PUNCTUATORS = [
    "===", "!==", ">>>", "**=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "=>", "<<", ">>", "**",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "<", ">", "+", "-",
    "*", "/", "%", "!", "?", ":", "=", "&", "|", "^", "~",
]


class LexError(SyntaxError):
    """Raised on malformed input."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, col {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``newline_before`` supports the parser's pragmatic ASI rule; ``start``
    and ``end`` are source offsets used to recover function source text
    (which feeds ``Function.prototype.toString``).
    """

    kind: str  # 'number' | 'string' | 'ident' | 'keyword' | 'punct' | 'eof'
    value: str
    line: int
    column: int
    start: int
    end: int
    newline_before: bool = False
    number: Optional[float] = None

    def matches(self, kind: str, value: Optional[str] = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_PART = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f", "v": "\v",
    "0": "\0", "'": "'", '"': '"', "\\": "\\", "\n": "",
}


class Lexer:
    """Tokenizes JavaScript source into a list of :class:`Token`."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self._newline_pending = False
        #: Queue of synthesized tokens (template-literal desugaring).
        self._pending: List[Token] = []
        #: Brace depth of each template interpolation we are inside.
        self._template_stack: List[int] = []

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind == "eof":
                return tokens

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            char = self.source[self.pos]
            if char in " \t\r\f\v":
                self._advance()
            elif char == "\n":
                self._newline_pending = True
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    if self._peek() == "\n":
                        self._newline_pending = True
                    self._advance()
                else:
                    raise LexError("unterminated block comment",
                                   self.line, self.column)
            else:
                return

    def _make(self, kind: str, value: str, line: int, column: int,
              start: int, number: Optional[float] = None) -> Token:
        newline = self._newline_pending
        self._newline_pending = False
        return Token(kind=kind, value=value, line=line, column=column,
                     start=start, end=self.pos, newline_before=newline,
                     number=number)

    def _next_token(self) -> Token:
        if self._pending:
            return self._pending.pop(0)
        self._skip_whitespace_and_comments()
        line, column, start = self.line, self.column, self.pos
        if self.pos >= len(self.source):
            return self._make("eof", "", line, column, start)
        char = self._peek()

        if char in _IDENT_START:
            return self._lex_identifier(line, column, start)
        if char in _DIGITS or (char == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column, start)
        if char in "'\"":
            return self._lex_string(line, column, start)
        if char == "`":
            return self._lex_template(line, column, start)
        if self._template_stack and char == "}" \
                and self._template_stack[-1] == 0:
            # End of a `${...}` hole: resume template text mode.
            self._advance()
            return self._resume_template(line, column, start)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                if self._template_stack:
                    if punct == "{":
                        self._template_stack[-1] += 1
                    elif punct == "}":
                        self._template_stack[-1] -= 1
                return self._make("punct", punct, line, column, start)
        raise LexError(f"unexpected character {char!r}", line, column)

    def _lex_identifier(self, line: int, column: int, start: int) -> Token:
        while self._peek() in _IDENT_PART and self._peek() != "":
            self._advance()
        # Interning collapses the thousands of repeated identifier
        # lexemes across a corpus into shared singletons, so the scope
        # dict lookups in both execution backends hash pre-cached
        # pointers instead of fresh slices.
        text = sys.intern(self.source[start:self.pos])
        kind = "keyword" if text in KEYWORDS else "ident"
        return self._make(kind, text, line, column, start)

    def _lex_number(self, line: int, column: int, start: int) -> Token:
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() in _HEX_DIGITS and self._peek() != "":
                self._advance()
            text = self.source[start:self.pos]
            return self._make("number", text, line, column, start,
                              number=float(int(text, 16)))
        while self._peek() in _DIGITS and self._peek() != "":
            self._advance()
        if self._peek() == ".":
            self._advance()
            while self._peek() in _DIGITS and self._peek() != "":
                self._advance()
        if self._peek() in "eE":
            lookahead = 1
            if self._peek(1) in "+-":
                lookahead = 2
            if self._peek(lookahead) in _DIGITS:
                self._advance(lookahead)
                while self._peek() in _DIGITS and self._peek() != "":
                    self._advance()
        text = self.source[start:self.pos]
        return self._make("number", text, line, column, start,
                          number=float(text))

    def _lex_string(self, line: int, column: int, start: int) -> Token:
        quote = self._peek()
        self._advance()
        chars: List[str] = []
        while True:
            char = self._peek()
            if char == "":
                raise LexError("unterminated string", line, column)
            if char == "\n":
                raise LexError("newline in string literal", self.line,
                               self.column)
            if char == quote:
                self._advance()
                break
            if char == "\\":
                self._advance()
                chars.append(self._lex_escape(line, column))
                continue
            chars.append(char)
            self._advance()
        return self._make("string", "".join(chars), line, column, start)

    def _lex_escape(self, line: int, column: int) -> str:
        escape = self._peek()
        if escape == "x":
            self._advance()
            digits = self.source[self.pos:self.pos + 2]
            if len(digits) < 2 or any(d not in _HEX_DIGITS for d in digits):
                raise LexError("invalid \\x escape", self.line, self.column)
            self._advance(2)
            return chr(int(digits, 16))
        if escape == "u":
            self._advance()
            digits = self.source[self.pos:self.pos + 4]
            if len(digits) < 4 or any(d not in _HEX_DIGITS for d in digits):
                raise LexError("invalid \\u escape", self.line, self.column)
            self._advance(4)
            return chr(int(digits, 16))
        self._advance()
        return _ESCAPES.get(escape, escape)

    def _template_text(self, line: int, column: int) -> "tuple[str, bool]":
        """Consume template text until '`' (True) or '${' (False)."""
        chars: List[str] = []
        while True:
            char = self._peek()
            if char == "":
                raise LexError("unterminated template literal", line,
                               column)
            if char == "`":
                self._advance()
                return "".join(chars), True
            if char == "$" and self._peek(1) == "{":
                self._advance(2)
                return "".join(chars), False
            if char == "\\":
                self._advance()
                chars.append(self._lex_escape(line, column))
                continue
            chars.append(char)
            self._advance()

    def _lex_template(self, line: int, column: int, start: int) -> Token:
        """Template literals, desugared into string concatenation.

        ``\\`a${x}b\\``` becomes the token stream for ``("a" + (x) + "b")``
        so the parser and interpreter need no special handling; the
        string-forcing empty prefix preserves ToString semantics.
        """
        self._advance()  # opening backtick
        text, closed = self._template_text(line, column)
        if closed:
            return self._make("string", text, line, column, start)
        # `text${ ... — open the desugared concatenation.
        self._template_stack.append(0)
        open_paren = self._make("punct", "(", line, column, start)
        self._pending.extend([
            self._make("string", text, line, column, start),
            self._make("punct", "+", line, column, start),
            self._make("punct", "(", line, column, start),
        ])
        return open_paren

    def _resume_template(self, line: int, column: int,
                         start: int) -> Token:
        """After a '}' closing an interpolation hole."""
        text, closed = self._template_text(line, column)
        close_paren = self._make("punct", ")", line, column, start)
        self._pending.extend([
            self._make("punct", "+", line, column, start),
            self._make("string", text, line, column, start),
        ])
        if closed:
            self._template_stack.pop()
            self._pending.append(
                self._make("punct", ")", line, column, start))
        else:
            self._pending.extend([
                self._make("punct", "+", line, column, start),
                self._make("punct", "(", line, column, start),
            ])
        return close_paren

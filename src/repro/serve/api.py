"""The query layer: a threaded stdlib HTTP server over the rollups.

``repro serve <db> --port N`` exposes JSON endpoints:

=========================  ===========================================
``/healthz``               rollup state, schema version, generation
``/metrics``               server metrics, Prometheus text format
``/sites``                 every known site (sorted)
``/site?url=<site-url>``   one site's verdict card
``/aggregates/<name>``     totals · symbols · resources · cookies ·
                           crashes · drop_reasons
``/corpus/<hash>``         occurrence stats + archived-body metadata
                           for one script hash
=========================  ===========================================

Concurrency model: the crawl writer owns the database's single write
connection (WAL journal mode); the server opens *read-only* SQLite
connections (``mode=ro``), one per handler thread. Each request runs
inside one explicit read transaction, so the generation it reports and
the aggregates it serves come from a single WAL snapshot — readers
never block the writer, the writer never gives readers a torn view,
and nobody sees ``database is locked``.

Cacheable responses are fronted by the LRU/TTL cache keyed under the
snapshot's rollup generation (see :mod:`repro.serve.cache`); the
``X-Rollup-Generation`` header exposes which generation an answer came
from. ``/healthz`` and ``/metrics`` bypass the cache.

Conditional requests: every cacheable 200 carries an ``ETag`` derived
from the rollup generation, and a request whose ``If-None-Match``
matches the current generation's tag gets a body-less ``304 Not
Modified`` — correct because *every* mutation of served state bumps the
generation, so an unchanged generation means unchanged bytes.

Shard fan-out: constructing the server with a *list* of database paths
serves the merged view of all of them (:mod:`repro.serve.fanout`) — per
request, each shard contributes one read snapshot, the rollup
aggregates sum at query time, and the per-shard generations compose
into a vector generation for cache keys and ``ETag`` values.

``ResultServer.respond`` is transport-independent — tests and the
benchmark drive it directly; the HTTP layer only adds sockets.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, unquote, urlsplit

from repro.serve import rollups
from repro.serve.aggregates import (
    AGGREGATE_BUILDERS,
    encode_payload,
    healthz_payload,
    script_payload,
    site_payload,
    sites_payload,
)
from repro.serve.cache import CachedResponse, ResponseCache
from repro.serve.fanout import (
    FANOUT_BUILDERS,
    fanout_state,
    healthz_fanout,
    script_fanout,
    site_fanout,
    sites_fanout,
    vector_generation,
)


class ServeError(RuntimeError):
    """The server cannot run against this database."""


def etag_for(generation: Any) -> str:
    """The strong entity tag for a rollup generation.

    ``5`` → ``"g5"``; a fan-out vector ``(5, 2)`` → ``"g5-2"``. Any
    mutation of served state bumps some component, so equal tags imply
    byte-equal payloads.
    """
    if isinstance(generation, (tuple, list)):
        return '"g' + "-".join(str(int(g)) for g in generation) + '"'
    return f'"g{int(generation)}"'


def generation_header(generation: Any) -> str:
    """``X-Rollup-Generation`` header value (vectors comma-joined)."""
    if isinstance(generation, (tuple, list)):
        return ",".join(str(int(g)) for g in generation)
    return str(generation)


class ResultServer:
    """Serves one or more crawl databases' aggregates over HTTP.

    A single path serves that database directly; a list of paths
    serves the shard fan-out view (:mod:`repro.serve.fanout`) with
    vector generations for cache keys and ``ETag`` values.
    """

    def __init__(self, database_path: Union[str, Sequence[str]],
                 host: str = "127.0.0.1",
                 port: int = 0, cache_capacity: int = 512,
                 cache_ttl: float = 30.0, clock: Any = None,
                 ensure: bool = True) -> None:
        import os

        if isinstance(database_path, str):
            paths = [database_path]
        else:
            paths = [str(p) for p in database_path]
        if not paths:
            raise ServeError("at least one database path is required")
        for path in paths:
            if not os.path.isfile(path):
                raise ServeError(f"no crawl database at {path!r}")
        self.database_paths: List[str] = paths
        self.database_path = paths[0]
        self.fan_out = len(paths) > 1
        self.host = host
        self.port = port
        self.cache = ResponseCache(capacity=cache_capacity,
                                   ttl=cache_ttl, clock=clock)
        from repro.obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self._local = threading.local()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        if ensure:
            self.ensure_rollups()

    # -- rollup lifecycle ---------------------------------------------
    def ensure_rollups(self) -> str:
        """Backfill stale/absent rollups before serving from them.

        Needs a moment of write access; skipped automatically when the
        rollups are already fresh (the live-crawl maintenance path).
        Under fan-out every shard is backfilled; the returned state is
        ``fresh`` only when all of them are.
        """
        states = []
        for path in self.database_paths:
            connection = sqlite3.connect(path)
            try:
                state = rollups.rollups_state(connection)
                if state != "fresh":
                    rollups.build(connection)
                states.append(rollups.rollups_state(connection))
            finally:
                connection.close()
        for state in states:
            if state != "fresh":
                return state
        return "fresh"

    # -- per-thread read-only connections -----------------------------
    def _connections(self) -> List[sqlite3.Connection]:
        connections = getattr(self._local, "connections", None)
        if connections is None:
            connections = []
            for path in self.database_paths:
                connection = sqlite3.connect(
                    f"file:{path}?mode=ro", uri=True,
                    isolation_level=None)
                connection.execute("PRAGMA busy_timeout = 10000")
                connections.append(connection)
            self._local.connections = connections
        return connections

    def _connection(self) -> sqlite3.Connection:
        return self._connections()[0]

    # -- request core (transport-independent) -------------------------
    def respond(self, path: str, query: str = "",
                if_none_match: Optional[str] = None) -> CachedResponse:
        """Answer one GET; returns the response the transport sends."""
        if path == "/healthz":
            return self._uncached(path)
        if path == "/metrics":
            from repro.obs.export import metrics_to_prometheus

            self.metrics.counter("serve_requests_total",
                                 endpoint="metrics").inc()
            return CachedResponse(
                body=metrics_to_prometheus(
                    self.metrics.snapshot()).encode("utf-8"),
                content_type="text/plain; version=0.0.4")
        return self._cached(path, query, if_none_match)

    def _uncached(self, path: str) -> CachedResponse:
        self.metrics.counter("serve_requests_total",
                             endpoint="healthz").inc()
        connections = self._connections()
        for connection in connections:
            connection.execute("BEGIN")
        try:
            if self.fan_out:
                payload = healthz_fanout(connections,
                                         self.database_paths)
            else:
                payload = healthz_payload(connections[0],
                                          self.database_path)
        finally:
            for connection in connections:
                connection.execute("COMMIT")
        status = 200 if payload["rollups"] == "fresh" else 503
        return CachedResponse(body=encode_payload(payload),
                              status=status,
                              generation=payload["generation"])

    def _cached(self, path: str, query: str,
                if_none_match: Optional[str] = None) -> CachedResponse:
        key = f"{path}?{query}" if query else path
        connections = self._connections()
        # One explicit transaction per request (per shard): the
        # generation below and every row the builders read come from
        # the same WAL snapshot(s), so a concurrent writer can never
        # give us a torn answer (generation G with generation-G+1
        # aggregates).
        for connection in connections:
            connection.execute("BEGIN")
        try:
            if self.fan_out:
                generation: Any = vector_generation(connections)
                fresh = fanout_state(connections) == "fresh"
            else:
                generation = rollups.generation(connections[0])
                fresh = rollups.rollups_state(
                    connections[0]) == "fresh"
            etag = etag_for(generation)
            if (fresh and if_none_match is not None
                    and if_none_match.strip() == etag):
                # The client's tag matches the live generation, and
                # every mutation of served state bumps the generation:
                # whatever 200 produced that tag would re-encode to
                # the same bytes. Skip building (and the cache — a 304
                # carries no body worth storing).
                self.metrics.counter("serve_not_modified_total").inc()
                return CachedResponse(body=b"", status=304,
                                      generation=generation,
                                      etag=etag)
            entry = self.cache.get(key, generation)
            if entry is not None:
                self.metrics.counter("serve_cache_hits_total").inc()
                entry.etag = etag
                return entry
            self.metrics.counter("serve_cache_misses_total").inc()
            if self.fan_out:
                body, status, endpoint = self._build_fanout(
                    connections, path, query)
            else:
                body, status, endpoint = self._build(connections[0],
                                                     path, query)
        finally:
            for connection in connections:
                connection.execute("COMMIT")
        self.metrics.counter("serve_requests_total",
                             endpoint=endpoint).inc()
        if status != 200:
            return CachedResponse(body=body, status=status,
                                  generation=generation)
        entry = self.cache.put(key, generation, body)
        entry.etag = etag
        return entry

    def _build(self, connection: sqlite3.Connection, path: str,
               query: str) -> Tuple[bytes, int, str]:
        """Render one payload inside the caller's read transaction."""
        if rollups.rollups_state(connection) != "fresh":
            return (encode_payload(
                {"error": "rollups are "
                          + rollups.rollups_state(connection)
                          + "; run `repro serve build`"}), 503, "stale")
        if path == "/sites":
            return encode_payload(sites_payload(connection)), 200, \
                "sites"
        if path == "/site":
            params = parse_qs(query)
            urls = params.get("url", [])
            if len(urls) != 1:
                return encode_payload(
                    {"error": "expected exactly one url= parameter"}), \
                    400, "site"
            payload = site_payload(connection, urls[0])
            if payload is None:
                return encode_payload(
                    {"error": f"unknown site {urls[0]!r}"}), 404, "site"
            return encode_payload(payload), 200, "site"
        if path.startswith("/aggregates/"):
            name = path[len("/aggregates/"):]
            builder = AGGREGATE_BUILDERS.get(name)
            if builder is None:
                return encode_payload(
                    {"error": f"unknown aggregate {name!r}",
                     "known": sorted(AGGREGATE_BUILDERS)}), 404, \
                    "aggregates"
            return encode_payload(builder(connection)), 200, \
                "aggregates"
        if path.startswith("/corpus/"):
            digest = unquote(path[len("/corpus/"):])
            payload = script_payload(connection, digest)
            if payload is None:
                return encode_payload(
                    {"error": f"unknown script hash {digest!r}"}), \
                    404, "corpus"
            return encode_payload(payload), 200, "corpus"
        return encode_payload({"error": f"no route for {path!r}"}), \
            404, "unknown"

    def _build_fanout(self, connections: Sequence[sqlite3.Connection],
                      path: str, query: str) -> Tuple[bytes, int, str]:
        """Render one fan-out payload inside the caller's read
        transactions (same routes and shapes as :meth:`_build`)."""
        state = fanout_state(connections)
        if state != "fresh":
            return (encode_payload(
                {"error": "rollups are " + state
                          + "; run `repro serve build`"}), 503, "stale")
        if path == "/sites":
            return encode_payload(sites_fanout(connections)), 200, \
                "sites"
        if path == "/site":
            params = parse_qs(query)
            urls = params.get("url", [])
            if len(urls) != 1:
                return encode_payload(
                    {"error": "expected exactly one url= parameter"}), \
                    400, "site"
            payload = site_fanout(connections, urls[0])
            if payload is None:
                return encode_payload(
                    {"error": f"unknown site {urls[0]!r}"}), 404, "site"
            return encode_payload(payload), 200, "site"
        if path.startswith("/aggregates/"):
            name = path[len("/aggregates/"):]
            builder = FANOUT_BUILDERS.get(name)
            if builder is None:
                return encode_payload(
                    {"error": f"unknown aggregate {name!r}",
                     "known": sorted(FANOUT_BUILDERS)}), 404, \
                    "aggregates"
            return encode_payload(builder(connections)), 200, \
                "aggregates"
        if path.startswith("/corpus/"):
            digest = unquote(path[len("/corpus/"):])
            payload = script_fanout(connections, digest)
            if payload is None:
                return encode_payload(
                    {"error": f"unknown script hash {digest!r}"}), \
                    404, "corpus"
            return encode_payload(payload), 200, "corpus"
        return encode_payload({"error": f"no route for {path!r}"}), \
            404, "unknown"

    # -- HTTP plumbing ------------------------------------------------
    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port
        (meaningful with ``port=0`` ephemeral binds)."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib name)
                split = urlsplit(self.path)
                try:
                    response = server.respond(
                        split.path, split.query,
                        self.headers.get("If-None-Match"))
                except Exception as exc:  # pragma: no cover - guard
                    server.metrics.counter("serve_errors_total").inc()
                    response = CachedResponse(
                        body=encode_payload({"error": repr(exc)}),
                        status=500)
                self.send_response(response.status)
                self.send_header("Content-Type",
                                 response.content_type)
                self.send_header("Content-Length",
                                 str(len(response.body)))
                self.send_header("X-Rollup-Generation",
                                 generation_header(response.generation))
                if response.etag:
                    self.send_header("ETag", response.etag)
                self.end_headers()
                self.wfile.write(response.body)

            def log_message(self, *args: Any) -> None:
                pass  # journald duty belongs to the telemetry layer

        self._httpd = ThreadingHTTPServer((self.host, self.port),
                                          Handler)
        self._httpd.daemon_threads = True
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve", daemon=True)
        self._thread.start()
        return self.port

    def serve_forever(self) -> None:
        """Foreground serving for the CLI (Ctrl-C returns)."""
        if self._httpd is None:
            self.start()
        assert self._thread is not None
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        connections = getattr(self._local, "connections", None)
        if connections is not None:
            for connection in connections:
                connection.close()
            self._local.connections = None


def json_get(url: str, timeout: float = 10.0) -> Tuple[int, Any]:
    """Tiny stdlib GET helper for tests/CI: (status, decoded JSON)."""
    from urllib.error import HTTPError
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except HTTPError as error:
        body = error.read()
        try:
            return error.code, json.loads(body)
        except (ValueError, TypeError):
            return error.code, body.decode("utf-8", "replace")

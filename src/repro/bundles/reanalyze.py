"""Offline re-analysis: detector pipeline over an archived bundle.

Full replay (:class:`~repro.bundles.replay.ReplayNetwork`) re-executes
the browser over archived responses — maximum fidelity, but it pays
for JS instrumentation and page execution all over again. This module
is the fast tier the Web Execution Bundles model exists for: the
dynamic evidence (JS-call traces, honey hits, residue accesses) was
already captured at record time, so re-checking verdicts under a new
pattern set or changed classifier only needs the *analysis* half of
the pipeline. ``reanalyze_bundle`` rebuilds each site's
:class:`~repro.core.scan.classify.VisitEvidence` from the archive and
re-runs ``classify_site`` against the bundle's own content-addressed
store — no synthetic web, no servers, no network layer, no browser.

Classification is a pure function of (evidence, script sources,
pattern set); with an unchanged pattern set the result is
byte-identical to the recording crawl's dataset, and an *edited*
pattern set simply misses the archived analysis cache and re-scans
the stored sources — which is the whole point.
"""

from __future__ import annotations

from repro.bundles.bundle import Bundle, BundleError
from repro.obs.telemetry import coalesce


def reanalyze_bundle(bundle: Bundle, use_honey: bool = True,
                     preprocess_static: bool = True,
                     telemetry=None):
    """Re-run classification over every archived site.

    Returns a :class:`~repro.core.scan.pipeline.ScanDataset` whose
    tables are byte-identical to the recording scan's (unchanged
    patterns), backed by the bundle's store as its corpus. Raises
    :class:`BundleError` for bundles that carry no scan evidence
    (crawl-kind recordings archive exchanges and traces, but not the
    scan pipeline's per-visit evidence).
    """
    from repro.core.scan.classify import classify_site
    from repro.core.scan.pipeline import ScanDataset
    from repro.core.scan.results_store import evidence_from_dict

    tm = coalesce(telemetry)
    corpus = bundle.store
    dataset = ScanDataset(corpus=corpus)
    sites = bundle.recorded_sites()
    for site in sites:
        raw = bundle.evidence(site)
        if raw is None:
            raise BundleError(
                f"bundle {bundle.path!r} has no archived scan evidence "
                f"for {site!r} (kind {bundle.kind!r}); offline "
                "re-analysis needs a bundle recorded by `repro scan "
                "--record` — use full replay (`--replay` without "
                "--offline) to re-execute this one")
        evidences = [evidence_from_dict(item) for item in raw]
        front = classify_site(site, evidences[:1], use_honey=use_honey,
                              preprocess_static=preprocess_static,
                              corpus=corpus)
        combined = classify_site(site, evidences, use_honey=use_honey,
                                 preprocess_static=preprocess_static,
                                 corpus=corpus)
        dataset.front_only[site] = front
        dataset.combined[site] = combined
        dataset.evidence[site] = evidences
        dataset.visited_sites += 1
        dataset.subpage_visits += max(0, len(evidences) - 1)
        for visit in evidences:
            for _, digest in visit.scripts:
                dataset.unique_scripts.add(digest)
        tm.metrics.counter("bundle_sites_reanalyzed").inc()
    tm.journal.emit("bundle_reanalyzed", path=bundle.path,
                    sites=len(sites))
    return dataset


def reanalyze_path(path: str, use_honey: bool = True,
                   preprocess_static: bool = True, telemetry=None,
                   allow_incomplete: bool = False):
    """Convenience wrapper: open *path* and re-analyse it."""
    bundle = Bundle(path, allow_incomplete=allow_incomplete)
    return bundle, reanalyze_bundle(
        bundle, use_honey=use_honey,
        preprocess_static=preprocess_static, telemetry=telemetry)


__all__ = ["reanalyze_bundle", "reanalyze_path"]

"""Tests for the literature datasets (Tables 1, 14, 15)."""

from datetime import date

from repro.literature import (
    FIREFOX_RELEASES,
    OPENWPM_RELEASES,
    STUDIES,
    outdated_statistics,
    summarise_studies,
)
from repro.literature.firefox_releases import (
    newest_firefox_on,
    openwpm_firefox_on,
)


class TestTable1:
    """The aggregates the paper reports over 72 studies."""

    def test_study_count(self):
        assert len(STUDIES) == 72

    def test_measures_row(self):
        measures = summarise_studies()["measures"]
        assert measures == {"http": 56, "cookies": 35, "javascript": 22,
                            "other": 6}

    def test_interaction_row(self):
        interaction = summarise_studies()["interaction"]
        assert interaction == {"none": 55, "clicking": 11, "scrolling": 8,
                               "typing": 5}

    def test_subpages_row(self):
        assert summarise_studies()["subpages"] == {
            "visited": 19, "not_visited": 53}

    def test_bot_detection_row(self):
        bd = summarise_studies()["bot_detection"]
        assert bd["discussed"] == 17
        assert bd["ignored"] == 55

    def test_refs_unique(self):
        refs = [s.ref for s in STUDIES]
        assert len(set(refs)) == len(refs)

    def test_years_in_range(self):
        assert all(2014 <= s.year <= 2022 for s in STUDIES)

    def test_oob_measures_not_counted_as_instrument_use(self):
        kranch = next(s for s in STUDIES if s.first_author == "Kranch")
        assert kranch.http == "oob"
        # ... and does not contribute to the http tally (spot check via
        # recount excluding oob).
        http = sum(1 for s in STUDIES if s.http is True)
        assert http == 56


class TestTable14:
    def test_release_data_ordered(self):
        dates = [r.released for r in FIREFOX_RELEASES]
        assert dates == sorted(dates)
        dates = [r.released for r in OPENWPM_RELEASES]
        assert dates == sorted(dates)

    def test_outdated_fraction_is_69_percent(self):
        stats = outdated_statistics()
        assert stats["total_days"] == 780
        assert stats["outdated_days"] == 540
        assert abs(stats["outdated_fraction"] - 0.69) < 0.005

    def test_newest_firefox_lookup(self):
        assert newest_firefox_on(date(2020, 7, 15)) == "78.0.1"
        assert newest_firefox_on(date(2022, 7, 23)) == "104.0"
        assert newest_firefox_on(date(2019, 1, 1)) is None

    def test_openwpm_shipped_firefox_lookup(self):
        assert openwpm_firefox_on(date(2020, 6, 25)) == "77.0"
        assert openwpm_firefox_on(date(2021, 9, 1)) == "90.0"
        assert openwpm_firefox_on(date(2020, 6, 1)) is None

    def test_day_after_integration_is_current(self):
        # 0.11.0 shipped FF 78.0.1 on 2020-07-09; newest was 78.0.1.
        day = date(2020, 7, 10)
        assert newest_firefox_on(day) == openwpm_firefox_on(day)

    def test_day_after_new_firefox_is_outdated(self):
        # FF 79 released 2020-07-28; OpenWPM still shipped 78.0.1.
        day = date(2020, 7, 29)
        assert newest_firefox_on(day) != openwpm_firefox_on(day)

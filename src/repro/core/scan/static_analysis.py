"""Static analysis of collected scripts (paper Sec. 4.1, Appx. B).

Pipeline: deobfuscate (hex/unicode escapes to ASCII, strip comments),
then match the patterns of Table 13. The loose ``webdriver`` pattern is
known to produce false positives (UA-token blocklists etc.); the
context-aware patterns (``navigator.webdriver`` and the bracket form)
are the validated 'strict' set, as are the three OpenWPM-residue
property names.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Dict, List

_HEX_ESCAPE = re.compile(r"\\x([0-9a-fA-F]{2})")
_UNICODE_ESCAPE = re.compile(r"\\u([0-9a-fA-F]{4})")
_LINE_COMMENT = re.compile(r"//[^\n]*")
_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


def deobfuscate(source: str) -> str:
    """Undo straightforward obfuscation before pattern matching."""
    source = _HEX_ESCAPE.sub(lambda m: chr(int(m.group(1), 16)), source)
    source = _UNICODE_ESCAPE.sub(lambda m: chr(int(m.group(1), 16)), source)
    source = _BLOCK_COMMENT.sub(" ", source)
    source = _LINE_COMMENT.sub(" ", source)
    return source


@dataclass(frozen=True)
class Pattern:
    """One static pattern with its validation status (Table 13)."""

    name: str
    regex: str
    #: Loose patterns are known to produce false positives.
    strict: bool
    #: Targets OpenWPM specifically rather than Selenium generally.
    openwpm_specific: bool = False


PATTERNS: List[Pattern] = [
    Pattern("loose-webdriver", r"webdriver", strict=False),
    Pattern("word-webdriver", r"(?<![_\-\w])webdriver(?![_\-\w])",
            strict=False),
    Pattern("navigator-dot-webdriver", r"navigator\.webdriver",
            strict=True),
    Pattern("navigator-bracket-webdriver",
            r"navigator\[[\"']webdriver[\"']\]", strict=True),
    Pattern("owpm-instrumentFingerprintingApis",
            r"instrumentFingerprintingApis", strict=True,
            openwpm_specific=True),
    Pattern("owpm-getInstrumentJS", r"getInstrumentJS", strict=True,
            openwpm_specific=True),
    Pattern("owpm-jsInstruments", r"jsInstruments", strict=True,
            openwpm_specific=True),
]

_COMPILED = {pattern.name: re.compile(pattern.regex)
             for pattern in PATTERNS}

_BY_NAME = {pattern.name: pattern for pattern in PATTERNS}

#: Fingerprint of the pattern set (names, regexes, validation flags).
#: Memoized analysis verdicts are keyed by this, so editing a pattern
#: invalidates every cached verdict instead of silently serving stale
#: classifications.
PATTERN_SET_VERSION = hashlib.sha256("\n".join(
    f"{p.name}\t{p.regex}\t{int(p.strict)}\t{int(p.openwpm_specific)}"
    for p in PATTERNS).encode()).hexdigest()[:16]


@dataclass
class PatternHit:
    """Matches of one script against the pattern set."""

    script_url: str
    matched: List[str]

    @property
    def any_match(self) -> bool:
        return bool(self.matched)

    @property
    def strict_match(self) -> bool:
        return any(_BY_NAME[name].strict for name in self.matched)

    @property
    def openwpm_match(self) -> bool:
        return any(_BY_NAME[name].openwpm_specific
                   for name in self.matched)


def scan_script(source: str, script_url: str = "",
                preprocess: bool = True) -> PatternHit:
    """Pattern-match one script, by default after deobfuscation.

    ``preprocess=False`` skips the deobfuscation step — the ablation
    showing how many detectors simple hex encoding would hide.
    """
    text = deobfuscate(source) if preprocess else source
    matched = [pattern.name for pattern in PATTERNS
               if _COMPILED[pattern.name].search(text)]
    return PatternHit(script_url=script_url, matched=matched)


def evaluate_pattern_false_positives(
        scripts: List[tuple]) -> Dict[str, Dict[str, int]]:
    """Table 13: per-pattern hits vs ground-truth detector labels.

    *scripts* is a list of ``(source, is_detector)`` pairs. Returns per
    pattern: hits, true positives, false positives.
    """
    stats: Dict[str, Dict[str, int]] = {
        pattern.name: {"hits": 0, "true_positives": 0, "false_positives": 0}
        for pattern in PATTERNS}
    for source, is_detector in scripts:
        text = deobfuscate(source)
        for pattern in PATTERNS:
            if _COMPILED[pattern.name].search(text):
                stats[pattern.name]["hits"] += 1
                key = "true_positives" if is_detector \
                    else "false_positives"
                stats[pattern.name][key] += 1
    return stats

"""Fault injection, supervision, and the chaos-invariant harness.

Three layers of coverage:

* unit tests for :class:`repro.faults.FaultPlan` matching/determinism
  and the supervision primitives;
* targeted integration tests — one per fault kind — proving each
  injected failure is survived *and* accounted for (the failure shows
  up in the right counter, table, and ``repro stats`` check);
* the chaos harness: scheduled crawls under randomized seeded fault
  plans, asserting the accounting invariant that every enqueued site
  ends exactly once — as a completed visit, a ``failed_visits`` row, or
  a ``quarantined_sites`` row — with the stats report reconciling, even
  across a kill + ``--resume`` mid-chaos.

``REPRO_CHAOS_SEED`` adds an extra seed to the chaos matrix (the CI
chaos-smoke job sweeps it).
"""

import json
import os
import random
import sqlite3

import pytest

from repro.core.lab import make_lab_network
from repro.faults import (
    CircuitBreaker,
    CrashLoopDetector,
    FaultPlan,
    FaultRule,
    NetworkFault,
    VisitDeadlineExceeded,
    Watchdog,
)
from repro.net.http import HttpRequest
from repro.net.url import URL
from repro.obs.telemetry import Telemetry
from repro.openwpm import BrowserParams, ManagerParams, TaskManager

URLS = [f"https://lab.test/site-{i:05d}" for i in range(50)]


def lab_urls(count):
    return URLS[:count]


def make_manager(database_path=":memory:", browsers=1, seed=3,
                 crash_probability=0.0, telemetry=None, fault_plan=None,
                 stage_deadline=None, quarantine_after=None,
                 crash_loop_threshold=None, failure_limit=3):
    return TaskManager(
        ManagerParams(database_path=database_path, seed=seed,
                      num_browsers=browsers,
                      crash_probability=crash_probability,
                      failure_limit=failure_limit,
                      fault_plan=fault_plan,
                      stage_deadline_seconds=stage_deadline,
                      quarantine_after=quarantine_after,
                      crash_loop_threshold=crash_loop_threshold),
        [BrowserParams(browser_id=i, dwell_time=1.0, seed=seed + i)
         for i in range(browsers)],
        make_lab_network(), telemetry=telemetry)


def build_report(manager):
    from repro.obs.stats import build_crawl_report

    manager.storage.persist_telemetry(manager.telemetry.snapshot())
    return build_crawl_report(manager.storage)


# ----------------------------------------------------------------------
# FaultPlan unit tests
# ----------------------------------------------------------------------
class TestFaultRule:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultRule(fault="meteor_strike")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(fault="crash", probability=1.5)

    def test_nth_and_times_validated(self):
        with pytest.raises(ValueError):
            FaultRule(fault="crash", nth=0)
        with pytest.raises(ValueError):
            FaultRule(fault="crash", times=0)


class TestFaultPlanMatching:
    def test_point_glob_and_site_substring(self):
        plan = FaultPlan([FaultRule(fault="crash", point="visit.*",
                                    site="site-00003")])
        assert plan.check("visit.start", url=URLS[3]) is not None
        assert plan.check("visit.callbacks", url=URLS[3]) is not None
        assert plan.check("visit.start", url=URLS[4]) is None
        assert plan.check("network.fetch", url=URLS[3]) is None

    def test_site_glob(self):
        plan = FaultPlan([FaultRule(fault="crash",
                                    site="*site-0000?")])
        assert plan.check("visit.start", url=URLS[9]) is not None
        assert plan.check("visit.start", url=URLS[10]) is None

    def test_nth_fires_exactly_once(self):
        plan = FaultPlan([FaultRule(fault="crash", nth=2)])
        hits = [plan.check("visit.start", url=URLS[i]) is not None
                for i in range(5)]
        assert hits == [False, True, False, False, False]

    def test_times_caps_firings(self):
        plan = FaultPlan([FaultRule(fault="crash", times=2)])
        hits = [plan.check("visit.start") is not None for _ in range(5)]
        assert hits == [True, True, False, False, False]

    def test_first_matching_rule_wins(self):
        plan = FaultPlan([
            FaultRule(fault="hang", site="site-00001"),
            FaultRule(fault="crash"),
        ])
        assert plan.check("visit.start", url=URLS[1]).fault == "hang"
        assert plan.check("visit.start", url=URLS[2]).fault == "crash"

    def test_probabilistic_rules_deterministic_per_seed(self):
        def run(seed):
            plan = FaultPlan(
                [FaultRule(fault="crash", probability=0.3)], seed=seed)
            return [plan.check("visit.start", url=url) is not None
                    for url in URLS]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_draws_consumed_even_after_times_budget_spent(self):
        """RNG consumption is outcome-independent: a spent ``times``
        budget must not shift later rules' draw sequence."""
        base = FaultPlan([FaultRule(fault="crash", probability=0.5)],
                         seed=7)
        capped = FaultPlan(
            [FaultRule(fault="crash", probability=0.5, times=1)], seed=7)
        base_hits = [base.check("visit.start") is not None
                     for _ in range(20)]
        capped_hits = [capped.check("visit.start") is not None
                       for _ in range(20)]
        assert sum(capped_hits) == 1
        assert capped_hits.index(True) == base_hits.index(True)


class TestFaultPlanSerialisation:
    def test_json_round_trip(self):
        plan = FaultPlan([
            FaultRule(fault="hang", point="visit.page_load",
                      site="site-0001*", seconds=120.0),
            FaultRule(fault="connection_reset", point="network.fetch",
                      probability=0.1, times=3),
        ], seed=42)
        clone = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert clone.to_dict() == plan.to_dict()

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"seed": 9, "rules": [{"fault": "storage_busy",
                                   "point": "storage.begin_visit"}]}))
        plan = FaultPlan.from_json_file(str(path))
        assert plan.seed == 9
        assert plan.rules[0].fault == "storage_busy"

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-rule"):
            FaultPlan.from_dict(
                {"rules": [{"fault": "crash", "wday": "tuesday"}]})


class TestSupervisionPrimitives:
    def test_watchdog_checks_stage_deadlines(self):
        class Clock:
            value = 0.0

            def peek(self):
                return self.value

        clock = Clock()
        watch = Watchdog(clock, default_deadline=10.0,
                         stage_deadlines={"callbacks": 1.0})
        started = watch.start()
        clock.value = 5.0
        watch.check("page_load", started)  # within default
        with pytest.raises(VisitDeadlineExceeded):
            watch.check("callbacks", started)  # over the override

    def test_circuit_breaker_opens_once(self):
        breaker = CircuitBreaker(2)
        assert breaker.record_failure("https://x.test/") is False
        assert breaker.record_failure("https://x.test/") is True
        assert breaker.is_open("https://x.test/")
        # Already open: never "newly opened" again.
        assert breaker.record_failure("https://x.test/") is False
        assert breaker.open_sites() == ["https://x.test/"]

    def test_crash_loop_backoff_grows_then_caps(self):
        detector = CrashLoopDetector(2, window_seconds=100.0,
                                     cooldown_seconds=10.0,
                                     max_backoff_factor=4.0)
        assert detector.on_restart(0, 1.0) == 0.0
        assert detector.on_restart(0, 2.0) == 10.0  # first streak
        assert detector.on_restart(0, 3.0) == 0.0   # window cleared
        assert detector.on_restart(0, 4.0) == 20.0  # doubled
        detector.on_restart(0, 5.0)
        assert detector.on_restart(0, 6.0) == 40.0
        detector.on_restart(0, 7.0)
        assert detector.on_restart(0, 8.0) == 40.0  # capped at 4x


# ----------------------------------------------------------------------
# One integration test per fault kind
# ----------------------------------------------------------------------
class TestNetworkFaultInjection:
    def test_transient_reset_is_retried_and_counted(self):
        plan = FaultPlan([FaultRule(fault="connection_reset",
                                    point="network.fetch", times=1)])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry())
        results = manager.crawl(lab_urls(3))
        assert all(result is not None for result in results)
        metrics = manager.telemetry.metrics
        assert metrics.counter_value("visits_network_faults") == 1
        assert metrics.counter_value("visits_completed") == 3
        report = build_report(manager)
        assert report["reconciled"], report["reconciliation"]
        manager.close()

    def test_persistent_reset_exhausts_with_network_fault_reason(self):
        plan = FaultPlan([FaultRule(fault="connection_reset",
                                    point="network.fetch",
                                    site="site-00001")])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry())
        results = manager.crawl(lab_urls(3))
        assert results[1] is None
        rows = manager.storage.query("SELECT * FROM failed_visits")
        assert len(rows) == 1
        assert rows[0]["site_url"] == URLS[1]
        assert rows[0]["reason"] == "network_fault"
        assert manager.failed_sites == [URLS[1]]
        report = build_report(manager)
        assert report["reconciled"], report["reconciliation"]
        manager.close()

    def test_truncated_body_corrupts_silently(self):
        """The paper's nightmare fault: nothing errors, the data is
        just wrong. The halved body is visible at the network layer and
        the crawl completes as if healthy."""
        from repro.net.network import ClientIdentity

        clean = make_lab_network()
        response, _ = clean.fetch(
            HttpRequest(url=URL.parse(URLS[1])), ClientIdentity("probe"))
        full_body = response.body

        network = make_lab_network()
        network.fault_plan = FaultPlan(
            [FaultRule(fault="truncated_body", point="network.fetch")])
        truncated, _ = network.fetch(
            HttpRequest(url=URL.parse(URLS[1])), ClientIdentity("probe"))
        assert len(truncated.body) == len(full_body) // 2

        plan = FaultPlan([FaultRule(fault="truncated_body",
                                    point="network.fetch")])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry())
        results = manager.crawl(lab_urls(2))
        assert all(result is not None for result in results)
        assert plan.fire_count("truncated_body") > 0
        assert manager.telemetry.metrics.counter_value(
            "visits_completed") == 2
        manager.close()

    def test_slow_response_burns_virtual_time(self):
        plan = FaultPlan([FaultRule(fault="slow_response",
                                    point="network.fetch", times=1,
                                    seconds=25.0)])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry(),
                               stage_deadline=50.0)
        results = manager.crawl(lab_urls(2))
        assert all(result is not None for result in results)
        assert plan.burned_seconds == 25.0
        manager.close()


class TestStorageFaultInjection:
    def test_transient_busy_is_retried_before_any_side_effect(self):
        plan = FaultPlan([FaultRule(fault="storage_busy",
                                    point="storage.begin_visit",
                                    times=1)])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry())
        results = manager.crawl(lab_urls(2))
        assert all(result is not None for result in results)
        metrics = manager.telemetry.metrics
        assert metrics.counter_value("visits_storage_faults") == 1
        # The faulted attempt wrote nothing: rows == successful attempts.
        rows = manager.storage.query(
            "SELECT COUNT(*) AS n FROM site_visits")[0]["n"]
        assert rows == 2
        report = build_report(manager)
        assert report["reconciled"], report["reconciliation"]
        manager.close()

    def test_persistent_busy_gives_up_with_storage_fault_reason(self):
        plan = FaultPlan([FaultRule(fault="storage_busy",
                                    point="storage.begin_visit",
                                    site="site-00000")])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry())
        results = manager.crawl(lab_urls(2))
        assert results[0] is None and results[1] is not None
        rows = manager.storage.query("SELECT * FROM failed_visits")
        assert [row["reason"] for row in rows] == ["storage_fault"]
        report = build_report(manager)
        assert report["reconciled"], report["reconciliation"]
        manager.close()


class TestWatchdogDefense:
    def test_hung_visit_aborted_and_exhausted_with_deadline_reason(self):
        plan = FaultPlan([FaultRule(fault="hang",
                                    point="visit.page_load",
                                    site="site-00001", seconds=200.0)])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry(),
                               stage_deadline=50.0)
        results = manager.crawl(lab_urls(3))
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        metrics = manager.telemetry.metrics
        assert metrics.counter_value("visits_hung") == 3  # failure_limit
        assert metrics.counter_value("visits_aborted") == 3
        rows = manager.storage.query("SELECT * FROM failed_visits")
        assert [row["reason"] for row in rows] == ["deadline"]
        # Aborted attempts left no site_visits rows behind.
        hung_rows = manager.storage.query(
            "SELECT COUNT(*) AS n FROM site_visits WHERE site_url = ?",
            (URLS[1],))[0]["n"]
        assert hung_rows == 0
        aborts = manager.storage.query(
            "SELECT COUNT(*) AS n FROM crash_history "
            "WHERE action = 'watchdog_abort'")[0]["n"]
        assert aborts == 3
        report = build_report(manager)
        assert report["reconciled"], report["reconciliation"]
        manager.close()

    def test_without_watchdog_the_hang_burns_through(self):
        """The undefended baseline the watchdog exists for: the hang
        consumes virtual hours and the visit still 'succeeds'."""
        plan = FaultPlan([FaultRule(fault="hang",
                                    point="visit.page_load", times=1,
                                    seconds=3600.0)])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry())
        results = manager.crawl(lab_urls(1))
        assert results[0] is not None  # nothing noticed the hang
        assert plan.burned_seconds == 3600.0
        manager.close()


class TestQuarantine:
    def test_crashing_site_is_quarantined_and_recorded(self):
        plan = FaultPlan([FaultRule(fault="crash", point="visit.start",
                                    site="site-00001")])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry(),
                               quarantine_after=2)
        results = manager.crawl(lab_urls(3))
        assert results[1] is None
        rows = manager.storage.quarantined_rows()
        assert len(rows) == 1
        assert rows[0]["site_url"] == URLS[1]
        assert rows[0]["failures"] == 2
        assert rows[0]["reason"] == "crash"
        assert manager.is_quarantined(URLS[1])
        # Breaker tripped on failure 2 of 3 allowed attempts: the site
        # ends as quarantined, not exhausted — no failed_visits row.
        assert manager.storage.query(
            "SELECT COUNT(*) AS n FROM failed_visits")[0]["n"] == 0
        metrics = manager.telemetry.metrics
        assert metrics.counter_value("sites_quarantined") == 1
        report = build_report(manager)
        assert report["reconciled"], report["reconciliation"]
        manager.close()

    def test_quarantine_skips_further_visits(self):
        plan = FaultPlan([FaultRule(fault="crash", point="visit.start",
                                    site="site-00001")])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry(),
                               quarantine_after=1)
        manager.crawl([URLS[1]])
        attempts_before = manager.telemetry.metrics.counter_value(
            "visit_attempts_total")
        assert manager.crawl([URLS[1]]) == [None]
        # The second crawl never reached the visit machinery.
        assert manager.telemetry.metrics.counter_value(
            "visit_attempts_total") == attempts_before
        assert manager.telemetry.metrics.counter_value(
            "visits_quarantined") == 2
        report = build_report(manager)
        assert report["reconciled"], report["reconciliation"]
        manager.close()

    def test_quarantine_survives_reopening_the_database(self, tmp_path):
        db_path = str(tmp_path / "crawl.sqlite")
        plan = FaultPlan([FaultRule(fault="crash", point="visit.start",
                                    site="site-00001")])
        first = make_manager(db_path, fault_plan=plan,
                             telemetry=Telemetry(), quarantine_after=2)
        first.crawl([URLS[1]])
        assert first.is_quarantined(URLS[1])
        first.close()

        second = make_manager(db_path, telemetry=Telemetry(),
                              quarantine_after=2)
        # What the runner's resume path does: carry the previous run's
        # persisted counters forward so the books stay cumulative.
        second.telemetry.metrics.restore(
            second.storage.telemetry_metrics())
        assert second.is_quarantined(URLS[1])
        assert second.crawl([URLS[1]]) == [None]
        report = build_report(second)
        assert report["reconciled"], report["reconciliation"]
        second.close()


class TestCrashLoopDetection:
    def test_cooldown_applied_and_crash_count_gauge_exposed(self):
        plan = FaultPlan([FaultRule(fault="crash", point="visit.start",
                                    site="site-0000")])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry(),
                               crash_loop_threshold=2)
        before = manager.telemetry.clock.peek()
        manager.crawl(lab_urls(2))
        metrics = manager.telemetry.metrics
        assert metrics.counter_value("browser_cooldowns") >= 1
        # Cooldowns burn real virtual time (default 30s each).
        assert manager.telemetry.clock.peek() - before >= 30.0
        # Satellite: ManagedBrowser.crash_count surfaces as a gauge.
        slot = manager.browsers[0]
        assert slot.crash_count == 6  # 2 sites x failure_limit
        assert metrics.gauge_value("browser_crash_count",
                                   browser="0") == slot.crash_count
        from repro.obs.stats import render_crawl_report

        report = build_report(manager)
        assert report["reconciled"], report["reconciliation"]
        assert "Browser crash counts" in render_crawl_report(report)
        manager.close()


class TestWorkerDeath:
    def test_abandoned_lease_is_reclaimed_and_job_completes(self):
        plan = FaultPlan([FaultRule(fault="worker_death",
                                    point="pool.lease", times=1)])
        manager = make_manager(fault_plan=plan, telemetry=Telemetry())
        report = manager.crawl_scheduled(lab_urls(5), workers=1,
                                         max_attempts=3,
                                         lease_seconds=100.0)
        assert report.worker_deaths == 1
        assert report.reclaimed >= 1
        assert report.completed == 5
        assert report.drained
        metrics = manager.telemetry.metrics
        assert metrics.counter_value("sched_worker_deaths") == 1
        stats = build_report(manager)
        assert stats["reconciled"], stats["reconciliation"]
        manager.close()


class TestHungWorkerLeaseExpiry:
    def test_lease_expires_and_another_worker_finishes_the_site(self):
        """Satellite: a genuinely hung worker (hang burns past the
        lease) loses the site to a healthy worker. The hung attempt's
        partial rows are aborted, the lease-expiry fail is voided, and
        exactly one completed site_visits row exists at the end."""
        plan = FaultPlan([FaultRule(fault="hang",
                                    point="visit.page_load", nth=1,
                                    seconds=600.0)])
        manager = make_manager(browsers=2, fault_plan=plan,
                               telemetry=Telemetry(),
                               stage_deadline=50.0)
        report = manager.crawl_scheduled([URLS[0]], workers=2,
                                         max_attempts=3,
                                         lease_seconds=300.0)
        assert report.completed == 1
        assert report.drained
        assert report.lease_lost == 1  # the hung worker's void fail
        assert report.reclaimed == 1
        rows = manager.storage.query(
            "SELECT COUNT(*) AS n FROM site_visits WHERE site_url = ?",
            (URLS[0],))[0]["n"]
        assert rows == 1
        metrics = manager.telemetry.metrics
        assert metrics.counter_value("visits_hung") == 1
        assert metrics.counter_value("visits_abandoned") == 1
        assert metrics.counter_value("sched_leases_lost") == 1
        stats = build_report(manager)
        assert stats["reconciled"], stats["reconciliation"]
        manager.close()


class TestLateCompletion:
    """Lease-race semantics around ``JobQueue.complete``.

    On the shared virtual clock another worker's hang can burn a
    healthy worker's lease away mid-visit. The worker calling
    ``complete`` is alive and its data is committed, so the completion
    must win unless someone else already re-leased the job — and in
    that losing case the committed copy must be discarded.
    """

    def test_complete_wins_while_still_leased_despite_expiry(self):
        from repro.sched import JobQueue

        queue = JobQueue(lease_seconds=10.0)
        queue.enqueue(URLS[:1])
        job = queue.claim("w0")
        queue.clock.advance(60.0)  # collateral burn
        queue.complete(job.job_id, "w0")  # must not raise
        assert queue.counts()["completed"] == 1

    def test_complete_wins_after_reclaim_requeued_unclaimed(self):
        from repro.sched import JobQueue

        queue = JobQueue(lease_seconds=10.0, max_attempts=3)
        queue.enqueue(URLS[:1])
        job = queue.claim("w0")
        queue.clock.advance(60.0)
        assert queue.reclaim_expired().requeued == 1
        queue.complete(job.job_id, "w0")  # pending + unclaimed: ours
        assert queue.counts()["completed"] == 1
        assert queue.counts()["pending"] == 0

    def test_complete_loses_to_a_worker_that_released_the_job(self):
        from repro.sched import JobQueue, LeaseError

        queue = JobQueue(lease_seconds=10.0, max_attempts=3,
                         backoff_base=0.0)
        queue.enqueue(URLS[:1])
        job = queue.claim("w0")
        queue.clock.advance(60.0)
        assert queue.reclaim_expired().requeued == 1
        queue.clock.advance(60.0)  # past the requeue backoff
        stolen = queue.claim("w1")
        assert stolen is not None and stolen.job_id == job.job_id
        with pytest.raises(LeaseError):
            queue.complete(job.job_id, "w0")
        queue.complete(stolen.job_id, "w1")
        assert queue.counts()["completed"] == 1

    def test_fail_still_strict_on_expired_lease(self):
        from repro.sched import JobQueue, LeaseError

        queue = JobQueue(lease_seconds=10.0)
        queue.enqueue(URLS[:1])
        job = queue.claim("w0")
        queue.clock.advance(60.0)
        with pytest.raises(LeaseError):
            queue.fail(job.job_id, "w0", "boom")

    def test_delete_visit_removes_committed_rows(self):
        manager = make_manager(telemetry=Telemetry())
        manager.crawl(URLS[:1])
        visit = manager.storage.query("SELECT * FROM site_visits")[0]
        discarded = manager.storage.delete_visit(visit["visit_id"])
        assert set(discarded) == {"http_requests", "http_responses",
                                  "javascript", "javascript_cookies"}
        assert manager.storage.query("SELECT * FROM site_visits") == []
        manager.close()

    def test_lost_race_discards_the_committed_copy(self, tmp_path):
        """End-to-end discard path: a saboteur re-leases the job while
        the visit is mid-flight, so the worker's ``complete`` loses,
        the committed visit row is deleted, and the site is re-run —
        leaving exactly one copy and balanced books."""
        queue_path = str(tmp_path / "race.queue")
        sabotaged = []

        def steal_lease(browser, result):
            if sabotaged:
                return
            sabotaged.append(result.requested_url)
            conn = sqlite3.connect(queue_path)
            # Already-expired so the poll loop reclaims it right away
            # instead of waiting out the intruder's lease.
            conn.execute("UPDATE jobs SET lease_owner = 'intruder', "
                         "lease_expires_at = 0")
            conn.commit()
            conn.close()

        manager = make_manager(telemetry=Telemetry())
        report = manager.crawl_scheduled(
            URLS[:1], workers=1, queue_path=queue_path,
            callbacks=[steal_lease], max_attempts=2,
            lease_seconds=50.0)
        assert sabotaged == URLS[:1]
        assert report.drained
        assert report.completed == 1
        assert report.lease_lost == 1
        metrics = manager.telemetry.metrics
        assert metrics.counter_value("visits_discarded") == 1
        assert metrics.counter_value("visits_completed") == 2
        rows = manager.storage.query(
            "SELECT COUNT(*) AS n FROM site_visits WHERE site_url = ?",
            (URLS[0],))[0]["n"]
        assert rows == 1
        assert_chaos_invariant(manager, queue_path, URLS[:1])
        manager.close()


class TestSequentialCrawlResilience:
    def test_callback_explosion_no_longer_aborts_the_crawl(self):
        """Satellite regression: one broken callback used to kill the
        whole sequential crawl; now the loss is recorded and the crawl
        moves on."""
        bombs = {URLS[1]}

        def exploding(browser, result):
            if result.requested_url in bombs:
                raise RuntimeError("instrument exploded")

        manager = make_manager(telemetry=Telemetry())
        results = manager.crawl(lab_urls(4), callbacks=[exploding])
        assert len(results) == 4
        assert results[1] is None
        assert [r is not None for r in results] == [
            True, False, True, True]
        rows = manager.storage.query("SELECT * FROM failed_visits")
        assert len(rows) == 1
        assert rows[0]["site_url"] == URLS[1]
        assert "RuntimeError" in rows[0]["reason"]
        assert manager.failed_sites == [URLS[1]]
        report = build_report(manager)
        assert report["reconciled"], report["reconciliation"]
        manager.close()


class TestEmptyPlanIsFree:
    def test_supervised_crawl_byte_identical_to_unsupervised(self,
                                                             tmp_path):
        """Acceptance pin: an empty fault plan plus an armed watchdog,
        circuit breaker, and crash-loop detector must not perturb the
        crawl database by a single byte — supervision observes, it
        never steers a healthy crawl."""
        import hashlib

        urls = lab_urls(30)

        def digest(path, **kwargs):
            manager = make_manager(path, crash_probability=0.1,
                                   **kwargs)
            manager.crawl(urls)
            manager.close()
            with open(path, "rb") as handle:
                return hashlib.sha256(handle.read()).hexdigest()

        plain = digest(str(tmp_path / "plain.sqlite"))
        supervised = digest(
            str(tmp_path / "supervised.sqlite"),
            fault_plan=FaultPlan(seed=3),
            stage_deadline=100.0, quarantine_after=10,
            crash_loop_threshold=50)
        assert plain == supervised


# ----------------------------------------------------------------------
# The chaos harness
# ----------------------------------------------------------------------
CHAOS_SEEDS = [7, 23]
if os.environ.get("REPRO_CHAOS_SEED"):
    CHAOS_SEEDS = sorted(
        set(CHAOS_SEEDS) | {int(os.environ["REPRO_CHAOS_SEED"])})


def random_fault_plan(seed, include_worker_death=False):
    """A randomized-but-seeded plan mixing every fault kind.

    Probabilities are kept moderate so most sites complete and the
    interesting paths (retry, abort, quarantine, terminal failure) all
    run in one 40-site crawl.
    """
    rng = random.Random(seed)
    rules = [
        FaultRule(fault="crash", point="visit.start",
                  probability=rng.uniform(0.05, 0.15)),
        FaultRule(fault="crash", point="visit.callbacks",
                  site=f"site-000{rng.randrange(10)}*",
                  probability=rng.uniform(0.3, 0.9)),
        FaultRule(fault="hang", point="visit.page_load",
                  probability=rng.uniform(0.02, 0.08),
                  seconds=rng.uniform(100.0, 400.0)),
        FaultRule(fault="connection_reset", point="network.fetch",
                  probability=rng.uniform(0.02, 0.08)),
        FaultRule(fault="slow_response", point="network.fetch",
                  probability=rng.uniform(0.02, 0.06),
                  seconds=rng.uniform(5.0, 20.0)),
        FaultRule(fault="truncated_body", point="network.fetch",
                  probability=rng.uniform(0.02, 0.10)),
        FaultRule(fault="storage_busy", point="storage.begin_visit",
                  probability=rng.uniform(0.02, 0.08)),
    ]
    if include_worker_death:
        rules.append(FaultRule(fault="worker_death", point="pool.lease",
                               probability=0.05))
    return FaultPlan(rules, seed=seed)


def assert_chaos_invariant(manager, queue_path, urls):
    """Every enqueued site ends exactly once, and the books balance."""
    from repro.obs.stats import build_crawl_report
    from repro.sched import JobQueue

    queue = JobQueue(queue_path)
    try:
        counts = queue.counts()
        assert counts["pending"] == 0 and counts["leased"] == 0
        completed = set(queue.sites(status="completed"))
        failed = set(queue.sites(status="failed"))
        # Exactly once: completed and failed partition the site list.
        assert completed | failed == set(urls)
        assert not completed & failed
        assert counts["completed"] + counts["failed"] == len(urls)

        visited = {row["site_url"] for row in manager.storage.query(
            "SELECT DISTINCT site_url FROM site_visits")}
        assert completed <= visited
        ledger = {row["site_url"] for row in manager.storage.query(
            "SELECT site_url FROM failed_visits")}
        ledger |= {row["site_url"] for row in manager.storage.query(
            "SELECT site_url FROM quarantined_sites")}
        assert failed <= ledger, sorted(failed - ledger)

        manager.storage.persist_telemetry(manager.telemetry.snapshot())
        report = build_crawl_report(manager.storage, queue=queue)
        assert report["reconciled"], [
            c for c in report["reconciliation"] if not c["ok"]]
        return report
    finally:
        queue.close()


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestChaosHarness:
    def test_invariant_holds_under_randomized_faults(self, seed,
                                                     tmp_path):
        urls = lab_urls(40)
        queue_path = str(tmp_path / "chaos.queue")
        plan = random_fault_plan(seed)
        manager = make_manager(browsers=2, seed=seed, fault_plan=plan,
                               telemetry=Telemetry(),
                               stage_deadline=50.0, quarantine_after=2,
                               crash_loop_threshold=5)
        # A huge lease keeps virtual-time burns from expiring healthy
        # workers' leases mid-visit (worker_death has its own test and
        # the single-worker chaos variant below).
        report = manager.crawl_scheduled(urls, workers=2,
                                         queue_path=queue_path,
                                         max_attempts=3,
                                         lease_seconds=1e9)
        assert report.drained
        assert plan.fire_count() > 0  # chaos actually happened
        assert_chaos_invariant(manager, queue_path, urls)
        manager.close()

    def test_invariant_holds_with_realistic_leases(self, seed,
                                                   tmp_path):
        """Multi-worker chaos under a production-sized lease: hangs
        burn the shared clock, so healthy workers' leases expire
        collaterally mid-visit. Late completions must win (or be
        discarded on a lost race) without duplicating any site."""
        urls = lab_urls(40)
        queue_path = str(tmp_path / "chaos-lease.queue")
        plan = random_fault_plan(seed)
        manager = make_manager(browsers=2, seed=seed, fault_plan=plan,
                               telemetry=Telemetry(),
                               stage_deadline=50.0, quarantine_after=2,
                               crash_loop_threshold=5)
        report = manager.crawl_scheduled(urls, workers=2,
                                         queue_path=queue_path,
                                         max_attempts=4,
                                         lease_seconds=300.0)
        assert report.drained
        assert plan.fire_count() > 0
        assert_chaos_invariant(manager, queue_path, urls)
        manager.close()

    def test_invariant_holds_with_worker_deaths(self, seed, tmp_path):
        urls = lab_urls(30)
        queue_path = str(tmp_path / "chaos-wd.queue")
        plan = random_fault_plan(seed, include_worker_death=True)
        manager = make_manager(browsers=1, seed=seed, fault_plan=plan,
                               telemetry=Telemetry(),
                               stage_deadline=50.0, quarantine_after=2)
        report = manager.crawl_scheduled(urls, workers=1,
                                         max_attempts=4,
                                         queue_path=queue_path,
                                         lease_seconds=500.0)
        assert report.drained
        assert_chaos_invariant(manager, queue_path, urls)
        manager.close()

    def test_invariant_holds_across_kill_and_resume(self, seed,
                                                    tmp_path):
        """The headline acceptance test: a chaos crawl killed mid-run
        and resumed over the same database + queue still accounts for
        every site exactly once."""
        from repro.obs.runner import run_telemetry_crawl

        urls = lab_urls(40)
        db_path = str(tmp_path / "chaos.sqlite")
        queue_path = str(tmp_path / "chaos.queue")

        def run(resume, stop_after=None):
            return run_telemetry_crawl(
                site_count=len(urls), seed=seed, urls=urls,
                database_path=db_path, crash_probability=0.0,
                browsers=2, workers=2, queue_path=queue_path,
                resume=resume, stop_after_jobs=stop_after,
                fault_plan=random_fault_plan(seed),
                stage_deadline=50.0, quarantine_after=2,
                max_attempts=3, lease_seconds=1e9)

        first = run(resume=False, stop_after=15)
        first.close()
        assert first.report.interrupted

        second = run(resume=True)
        assert second.report.drained
        assert_chaos_invariant(second.manager, queue_path, urls)
        second.close()

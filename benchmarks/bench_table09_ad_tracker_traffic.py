"""Table 9: HTTP requests to ad/tracker resources (EasyList/EasyPrivacy)."""

from conftest import report

PAPER = {1: (1.64, -1.64), 2: (5.64, 5.37), 3: (5.81, 7.85)}


def test_benchmark_table9(benchmark, bench_paired):
    rows = benchmark(bench_paired.table9)
    significance = bench_paired.tracker_significance(2)

    lines = [f"(paper: ad/tracker traffic difference significant with "
             "p < 0.0001, growing from r1 to r3)", "",
             "| run | WPM EL | hide EL | EL diff | paper EL | "
             "WPM EP | hide EP | EP diff | paper EP |",
             "|---|---|---|---|---|---|---|---|---|"]
    for row in rows:
        paper_el, paper_ep = PAPER[row["run"]]
        lines.append(
            f"| r{row['run']} | {row['wpm_easylist']} | "
            f"{row['hide_easylist']} | "
            f"{row['easylist_diff_pct']:+.1f}% | {paper_el:+.2f}% | "
            f"{row['wpm_easyprivacy']} | {row['hide_easyprivacy']} | "
            f"{row['easyprivacy_diff_pct']:+.1f}% | {paper_ep:+.2f}% |")
    lines.append("")
    lines.append(f"Wilcoxon (per-site tracker requests, r3): "
                 f"p = {significance.p_value:.2e}")
    report("table09_ad_tracker_traffic",
           "Table 9 - ad/tracker HTTP traffic", lines)

    # Shape: by r2/r3 the hardened client sees clearly more ad traffic.
    assert rows[-1]["easylist_diff_pct"] > 0
    assert rows[-1]["easylist_diff_pct"] >= rows[0]["easylist_diff_pct"]
    assert significance.significant

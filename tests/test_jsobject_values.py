"""Unit tests for JS primitive values and conversions."""

import math

import pytest

from repro.jsobject import (
    NULL,
    UNDEFINED,
    JSArray,
    JSObject,
    js_equals,
    js_strict_equals,
    js_truthy,
    js_typeof,
    to_js_string,
    to_number,
)
from repro.jsobject.values import format_number


class TestSingletons:
    def test_undefined_is_singleton(self):
        from repro.jsobject.values import JSUndefined

        assert JSUndefined() is UNDEFINED

    def test_null_is_singleton(self):
        from repro.jsobject.values import JSNull

        assert JSNull() is NULL

    def test_undefined_and_null_are_distinct(self):
        assert UNDEFINED is not NULL

    def test_both_are_falsy_in_python(self):
        assert not UNDEFINED
        assert not NULL


class TestTypeof:
    @pytest.mark.parametrize("value,expected", [
        (UNDEFINED, "undefined"),
        (NULL, "object"),
        (True, "boolean"),
        (False, "boolean"),
        (1.0, "number"),
        (0.0, "number"),
        ("", "string"),
        ("x", "string"),
    ])
    def test_primitives(self, value, expected):
        assert js_typeof(value) == expected

    def test_object(self):
        assert js_typeof(JSObject()) == "object"

    def test_array_is_object(self):
        assert js_typeof(JSArray([1.0])) == "object"

    def test_function(self):
        from repro.jsobject import NativeFunction

        fn = NativeFunction(lambda i, t, a: UNDEFINED, name="f")
        assert js_typeof(fn) == "function"

    def test_non_js_value_raises(self):
        with pytest.raises(TypeError):
            js_typeof(object())


class TestTruthiness:
    @pytest.mark.parametrize("value", [
        UNDEFINED, NULL, False, 0.0, -0.0, "", math.nan])
    def test_falsy(self, value):
        assert js_truthy(value) is False

    @pytest.mark.parametrize("value", [
        True, 1.0, -1.0, "0", "false", JSObject(), JSArray([])])
    def test_truthy(self, value):
        assert js_truthy(value) is True


class TestToString:
    def test_undefined(self):
        assert to_js_string(UNDEFINED) == "undefined"

    def test_null(self):
        assert to_js_string(NULL) == "null"

    def test_booleans(self):
        assert to_js_string(True) == "true"
        assert to_js_string(False) == "false"

    def test_integral_number_has_no_decimal_point(self):
        assert to_js_string(42.0) == "42"

    def test_fractional_number(self):
        assert to_js_string(1.5) == "1.5"

    def test_nan_and_infinity(self):
        assert to_js_string(math.nan) == "NaN"
        assert to_js_string(math.inf) == "Infinity"
        assert to_js_string(-math.inf) == "-Infinity"

    def test_array_joins_elements(self):
        assert to_js_string(JSArray([1.0, 2.0, 3.0])) == "1,2,3"

    def test_array_renders_holes_as_empty(self):
        assert to_js_string(JSArray([UNDEFINED, NULL, 1.0])) == ",,1"

    def test_plain_object(self):
        assert to_js_string(JSObject()) == "[object Object]"

    def test_format_number_large_integer(self):
        assert format_number(1e20) == "100000000000000000000"


class TestToNumber:
    def test_undefined_is_nan(self):
        assert math.isnan(to_number(UNDEFINED))

    def test_null_is_zero(self):
        assert to_number(NULL) == 0.0

    def test_booleans(self):
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0

    def test_numeric_strings(self):
        assert to_number("42") == 42.0
        assert to_number("  3.5  ") == 3.5

    def test_empty_string_is_zero(self):
        assert to_number("") == 0.0

    def test_hex_string(self):
        assert to_number("0xff") == 255.0

    def test_garbage_string_is_nan(self):
        assert math.isnan(to_number("12abc"))

    def test_plain_object_is_nan(self):
        assert math.isnan(to_number(JSObject()))


class TestEquality:
    def test_strict_same_number(self):
        assert js_strict_equals(1.0, 1.0)

    def test_strict_nan_never_equal(self):
        assert not js_strict_equals(math.nan, math.nan)

    def test_strict_bool_vs_number(self):
        assert not js_strict_equals(True, 1.0)

    def test_strict_object_identity(self):
        obj = JSObject()
        assert js_strict_equals(obj, obj)
        assert not js_strict_equals(obj, JSObject())

    def test_loose_null_undefined(self):
        assert js_equals(NULL, UNDEFINED)
        assert js_equals(UNDEFINED, NULL)

    def test_loose_null_vs_zero(self):
        assert not js_equals(NULL, 0.0)

    def test_loose_number_string_coercion(self):
        assert js_equals(1.0, "1")
        assert js_equals("2.5", 2.5)

    def test_loose_bool_coercion(self):
        assert js_equals(True, "1")
        assert js_equals(False, "0")

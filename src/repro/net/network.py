"""The network fabric connecting browser clients to simulated servers."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.plan import DEFAULT_SLOW_SECONDS, NetworkFault
from repro.net.http import HttpRequest, HttpResponse
from repro.net.url import URL


@dataclass
class ClientIdentity:
    """The network-visible identity of a crawling machine.

    ``client_id`` models the source IP address: detection providers key
    their server-side re-identification state on it (the effect the paper
    controls for by using two separate residential IPs, Sec. 6.3).
    """

    client_id: str
    user_agent: str = ""


class Server:
    """Base class for simulated origin servers."""

    def handle(self, request: HttpRequest, client: ClientIdentity,
               network: "Network") -> HttpResponse:
        raise NotImplementedError


class FunctionServer(Server):
    """Adapts a plain callable into a :class:`Server`."""

    def __init__(self, fn: Callable[[HttpRequest, ClientIdentity, "Network"],
                                    HttpResponse]) -> None:
        self._fn = fn

    def handle(self, request: HttpRequest, client: ClientIdentity,
               network: "Network") -> HttpResponse:
        return self._fn(request, client, network)


@dataclass
class ExchangeRecord:
    """One request/response hop, as archived by the network."""

    request: HttpRequest
    response: HttpResponse


class Network:
    """Routes requests to servers registered by host or registrable domain.

    Also provides ``state``: a per-provider blackboard that lets detection
    services remember clients across sites and runs (cross-site
    re-identification, paper Sec. 4.1.3 and 6.3).
    """

    MAX_REDIRECTS = 10

    def __init__(self) -> None:
        self._hosts: Dict[str, Server] = {}
        self._domains: Dict[str, Server] = {}
        self.state: Dict[str, dict] = defaultdict(dict)
        self.log: List[ExchangeRecord] = []
        self.record_exchanges = False
        #: Optional :class:`repro.faults.FaultPlan` consulted per fetch
        #: (choke point ``network.fetch``): connection resets, slow
        #: responses, truncated bodies.
        self.fault_plan: Optional[Any] = None
        #: Optional :class:`repro.bundles.BundleRecorder`. When set,
        #: every completed fetch's hop chain is archived; when unset
        #: the recording cost is this one attribute check.
        self.recorder: Optional[Any] = None

    # ------------------------------------------------------------------
    def register_host(self, host: str, server: Server) -> None:
        self._hosts[host.lower()] = server

    def register_domain(self, domain: str, server: Server) -> None:
        """Register a server for an eTLD+1 and all its subdomains."""
        self._domains[domain.lower()] = server

    def resolve(self, host: str) -> Optional[Server]:
        host = host.lower()
        server = self._hosts.get(host)
        if server is not None:
            return server
        # Most-specific registered domain wins: a registration for
        # cdn.example.com shadows one for example.com on cdn traffic.
        labels = host.split(".")
        for index in range(len(labels)):
            candidate = ".".join(labels[index:])
            if candidate in self._domains:
                return self._domains[candidate]
        return None

    # ------------------------------------------------------------------
    def fetch(self, request: HttpRequest, client: ClientIdentity
              ) -> Tuple[HttpResponse, List[ExchangeRecord]]:
        """Dispatch *request*, following redirects.

        Returns the final response and the full hop chain (the browser's
        HTTP instrument records every hop).
        """
        truncate = False
        if self.fault_plan is not None:
            rule = self.fault_plan.check("network.fetch",
                                         url=str(request.url))
            if rule is not None:
                if rule.fault == "connection_reset":
                    raise NetworkFault(
                        f"connection reset by peer: {request.url}")
                if rule.fault == "slow_response":
                    self.fault_plan.burn(
                        rule.seconds or DEFAULT_SLOW_SECONDS)
                elif rule.fault == "truncated_body":
                    truncate = True
        hops: List[ExchangeRecord] = []
        current = request
        for _ in range(self.MAX_REDIRECTS):
            server = self.resolve(current.url.host)
            if server is None:
                response = HttpResponse.not_found()
            else:
                response = server.handle(current, client, self)
            if truncate and not response.is_redirect and response.body:
                # The corruption the paper warns about: half the body
                # arrives, nothing errors, and the archived content is
                # silently wrong.
                response = replace(
                    response, body=response.body[:len(response.body) // 2])
            record = ExchangeRecord(current, response)
            hops.append(record)
            if self.record_exchanges:
                self.log.append(record)
            if not response.is_redirect:
                if self.recorder is not None:
                    self.recorder.on_fetch(request, hops)
                return response, hops
            target = URL.parse(response.location, base=current.url)
            current = HttpRequest(
                url=target,
                resource_type=current.resource_type,
                method="GET",
                top_frame_url=current.top_frame_url,
                frame_url=current.frame_url,
                initiator_script=current.initiator_script,
            )
        response = HttpResponse(status=508, content_type="text/plain",
                                body="redirect loop")
        if self.recorder is not None:
            self.recorder.on_fetch(request, hops)
        return response, hops

"""Tests for the Sec. 5 attacks against vanilla and hardened clients."""

import pytest

from repro.core.attacks import (
    run_block_recording_attack,
    run_csp_blocking_attack,
    run_fake_injection_attack,
    run_iframe_bypass_attack,
    run_silent_delivery_attack,
    run_sql_injection_probe,
)


class TestBlockRecording:
    """Listing 2, steps I+II (RQ5)."""

    def test_succeeds_against_vanilla(self):
        outcome = run_block_recording_attack(stealth=False)
        assert outcome.succeeded

    def test_page_keeps_working_while_blocked(self):
        outcome = run_block_recording_attack(stealth=False)
        # Records from before the block (the ID-grab access) may exist;
        # the probe activity afterwards is gone.
        assert "navigator.platform" not in outcome.recorded_symbols

    def test_fails_against_hardened(self):
        outcome = run_block_recording_attack(stealth=True)
        assert not outcome.succeeded


class TestFakeInjection:
    """Listing 2, step III (RQ6)."""

    def test_succeeds_against_vanilla(self):
        outcome = run_fake_injection_attack(stealth=False)
        assert outcome.succeeded
        assert outcome.forged_records

    def test_attacker_controls_symbol_and_script_url(self):
        outcome = run_fake_injection_attack(
            stealth=False, fake_symbol="window.TotallyReal",
            fake_script_url="https://innocent.example/clean.js")
        record = outcome.forged_records[0]
        assert record["symbol"] == "window.TotallyReal"
        assert record["script_url"] == "https://innocent.example/clean.js"

    def test_backend_pins_visited_site(self):
        """RQ6 limit: forging is confined to the current visit."""
        from repro.openwpm.storage import StorageController
        from repro.core.attacks.dispatcher import (
            FAKE_INJECTION_ATTACK,
            _make_extension,
        )
        from repro.core.lab import visit_with_scripts
        from repro.browser.profiles import openwpm_profile

        storage = StorageController()
        extension = _make_extension(stealth=False, storage=storage)
        storage.begin_visit(0, "https://lab.test/")
        source = (FAKE_INJECTION_ATTACK
                  .replace("__FAKE_SYMBOL__", "forged.symbol")
                  .replace("__FAKE_VALUE__", "v")
                  .replace("__FAKE_ARGS__", "a")
                  .replace("__FAKE_SCRIPT_URL__", "https://x.test/s.js"))
        visit_with_scripts(openwpm_profile("ubuntu", "regular"), [source],
                           extension=extension)
        rows = [r for r in storage.javascript_records()
                if r["symbol"] == "forged.symbol"]
        assert rows and rows[0]["top_level_url"] == "https://lab.test/"

    def test_fails_against_hardened(self):
        outcome = run_fake_injection_attack(stealth=True)
        assert not outcome.succeeded


class TestCSPBlocking:
    """Sec. 5.1.2 (RQ5)."""

    def test_csp_disables_vanilla_instrumentation(self):
        outcome = run_csp_blocking_attack(stealth=False)
        assert outcome.succeeded
        assert outcome.csp_reports >= 1
        assert outcome.inline_scripts_blocked

    def test_hardened_unaffected_no_reports(self):
        outcome = run_csp_blocking_attack(stealth=True)
        assert not outcome.succeeded
        assert outcome.csp_reports == 0

    def test_permissive_csp_does_not_block(self):
        from repro.core.attacks.csp_attack import PERMISSIVE_CSP

        outcome = run_csp_blocking_attack(stealth=False,
                                          csp_header=PERMISSIVE_CSP)
        assert not outcome.succeeded


class TestIframeBypass:
    """Listing 3 (RQ8)."""

    def test_immediate_access_unrecorded_by_vanilla(self):
        outcome = run_iframe_bypass_attack(stealth=False)
        assert outcome.succeeded
        assert not outcome.immediate_recorded

    def test_delayed_access_is_recorded_by_vanilla(self):
        """Only same-tick execution exploits the bug (Sec. 5.4.1)."""
        outcome = run_iframe_bypass_attack(stealth=False)
        assert outcome.delayed_recorded

    def test_hardened_frame_protection_closes_gap(self):
        outcome = run_iframe_bypass_attack(stealth=True)
        assert not outcome.succeeded
        assert outcome.immediate_recorded
        assert outcome.delayed_recorded


class TestSilentDelivery:
    """Listing 4 / Appx. D (RQ8)."""

    def test_bypasses_javascript_only_archiving(self):
        outcome = run_silent_delivery_attack(save_content="script")
        assert outcome.succeeded
        assert outcome.payload_executed
        assert not outcome.payload_archived

    def test_save_all_defeats_it(self):
        """Sec. 6.2.3: do not filter under active adversaries."""
        outcome = run_silent_delivery_attack(save_content="all")
        assert not outcome.succeeded
        assert outcome.payload_archived

    def test_payload_execution_is_still_js_recorded(self):
        outcome = run_silent_delivery_attack(save_content="script")
        # The eval'd code's API calls do appear in the JS record: the
        # bypass concerns the HTTP archive, not call recording.
        assert any("useragent" in s.lower()
                   for s in outcome.recorded_symbols)


class TestSQLInjection:
    """RQ7: the storage backend sanitises its inputs."""

    def test_database_survives_injection_attempts(self):
        outcome = run_sql_injection_probe()
        assert not outcome.succeeded
        assert outcome.tables_intact
        assert outcome.rows_after >= outcome.rows_before

    def test_payloads_stored_as_inert_text(self):
        outcome = run_sql_injection_probe()
        assert outcome.payloads_stored_verbatim >= 1

"""Tests for the engine-level (debugger-API-style) instrument."""

import pytest

from repro.browser.profiles import openwpm_profile, stock_firefox_profile
from repro.core.fingerprint import capture_template, diff_templates, \
    run_probes
from repro.core.hardening import DebuggerJSInstrument
from repro.core.lab import make_window, visit_with_scripts
from repro.openwpm import BrowserParams, OpenWPMExtension


def debugger_extension(storage=None):
    return OpenWPMExtension(BrowserParams(stealth=True), storage=storage,
                            js_instrument=DebuggerJSInstrument(
                                storage=storage))


class TestRecording:
    def test_property_gets_recorded(self):
        extension = debugger_extension()
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["navigator.userAgent; screen.width;"], extension=extension)
        symbols = set(extension.js_instrument.symbols_accessed())
        assert "Navigator.userAgent" in symbols
        assert "Screen.width" in symbols

    def test_method_calls_recorded_with_args(self):
        extension = debugger_extension()
        visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["navigator.sendBeacon('https://lab.test/b');"],
            extension=extension)
        calls = [r for r in extension.js_instrument.records
                 if r.operation == "call"
                 and r.symbol == "Navigator.sendBeacon"]
        assert calls and "lab.test" in calls[0].arguments

    def test_set_attempts_recorded(self):
        extension = debugger_extension()
        visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["navigator.customFlag = 1;"], extension=extension)
        assert any(r.operation == "set"
                   and r.symbol == "Navigator.customFlag"
                   for r in extension.js_instrument.records)

    def test_unmonitored_interfaces_ignored(self):
        extension = debugger_extension()
        visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["document.createElement('div');"], extension=extension)
        assert not any("Document" in r.symbol
                       for r in extension.js_instrument.records)

    def test_iframe_accesses_covered_same_tick(self):
        """No Listing 3 gap: engine hooks exist from frame creation."""
        extension = debugger_extension()
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"), ["""
                var ifr = document.createElement('iframe');
                document.body.appendChild(ifr);
                ifr.contentWindow.navigator.userAgent;
            """], extension=extension)
        assert result.script_errors == []
        count = sum(1 for r in extension.js_instrument.records
                    if r.symbol == "Navigator.userAgent")
        assert count >= 1


class TestZeroFootprint:
    def test_fingerprint_surface_identical_to_uninstrumented(self):
        _, stock = make_window(stock_firefox_profile("ubuntu"))
        extension = debugger_extension()
        _, window = make_window(openwpm_profile("ubuntu", "regular"),
                                extension=extension)
        _, plain = make_window(openwpm_profile("ubuntu", "regular"))
        surface = diff_templates(capture_template(plain),
                                 capture_template(window))
        # The instrumented window is byte-identical to an
        # uninstrumented one of the same profile.
        assert len(surface) == 0

    def test_probe_script_sees_nothing(self):
        extension = debugger_extension()
        _, window = make_window(openwpm_profile("ubuntu", "regular"),
                                extension=extension)
        probes = run_probes(window)
        assert probes["userAgentGetterNative"] is True
        assert probes["fillRectNative"] is True
        assert probes["screenProtoPolluted"] is False
        assert probes["instrumentInStack"] is False
        assert probes["hasGetInstrumentJS"] is False

    def test_install_count_is_zero(self):
        extension = debugger_extension()
        _, window = make_window(openwpm_profile("ubuntu", "regular"),
                                extension=extension)
        assert extension.js_instrument.install_counts[id(window)] == 0

    def test_dispatcher_attack_has_no_surface(self):
        """Listing 2 finds no event channel to steal."""
        from repro.core.attacks.dispatcher import (
            BLOCK_RECORDING_ATTACK,
            PROBE_ACTIVITY,
        )

        extension = debugger_extension()
        visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            [BLOCK_RECORDING_ATTACK, PROBE_ACTIVITY],
            extension=extension)
        symbols = set(extension.js_instrument.symbols_accessed())
        # Recording keeps working right through the attack.
        assert "Navigator.platform" in symbols
        assert "Screen.width" in symbols

    def test_csp_cannot_block(self):
        extension = debugger_extension()
        visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            [],
            extension=extension,
            csp_header="script-src 'self'; report-uri /csp")
        assert extension.js_instrument.failed_windows == []

    def test_records_flow_to_storage(self):
        from repro.openwpm.storage import StorageController

        storage = StorageController()
        storage.begin_visit(0, "https://lab.test/")
        extension = debugger_extension(storage=storage)
        visit_with_scripts(openwpm_profile("ubuntu", "regular"),
                           ["screen.availTop;"], extension=extension)
        assert any(r["symbol"] == "Screen.availTop"
                   for r in storage.javascript_records())

"""Unit tests for the JS parser."""

import pytest

from repro.jsengine import ast_nodes as ast
from repro.jsengine.parser import ParseError, parse


def first(source):
    return parse(source).body[0]


class TestStatements:
    def test_variable_declaration_kinds(self):
        for kind in ("var", "let", "const"):
            node = first(f"{kind} x = 1;")
            assert isinstance(node, ast.VariableDeclaration)
            assert node.kind == kind

    def test_multiple_declarators(self):
        node = first("var a = 1, b, c = 3;")
        assert [name for name, _ in node.declarations] == ["a", "b", "c"]
        assert node.declarations[1][1] is None

    def test_function_declaration(self):
        node = first("function add(a, b) { return a + b; }")
        assert isinstance(node, ast.FunctionDeclaration)
        assert node.function.params == ["a", "b"]

    def test_function_declaration_requires_name(self):
        with pytest.raises(ParseError):
            parse("function (a) { return a; }")

    def test_if_else(self):
        node = first("if (a) b; else c;")
        assert isinstance(node, ast.IfStatement)
        assert node.alternate is not None

    def test_while(self):
        assert isinstance(first("while (x) { x--; }"), ast.WhileStatement)

    def test_do_while(self):
        assert isinstance(first("do { x(); } while (y);"),
                          ast.DoWhileStatement)

    def test_classic_for(self):
        node = first("for (var i = 0; i < 3; i++) { }")
        assert isinstance(node, ast.ForStatement)
        assert node.init is not None and node.test is not None

    def test_for_with_empty_clauses(self):
        node = first("for (;;) { break; }")
        assert node.init is None and node.test is None and node.update is None

    def test_for_in_with_declaration(self):
        node = first("for (var k in obj) { }")
        assert isinstance(node, ast.ForInStatement)
        assert node.name == "k" and node.of is False

    def test_for_of(self):
        node = first("for (let v of arr) { }")
        assert node.of is True

    def test_for_in_predeclared(self):
        node = first("for (k in obj) { }")
        assert node.kind == ""

    def test_try_catch_finally(self):
        node = first("try { a(); } catch (e) { b(); } finally { c(); }")
        assert node.catch_param == "e"
        assert node.finally_block is not None

    def test_catch_without_binding(self):
        assert first("try { a(); } catch { b(); }").catch_param is None

    def test_try_requires_handler(self):
        with pytest.raises(ParseError):
            parse("try { a(); }")

    def test_throw(self):
        assert isinstance(first("throw new Error('x');"),
                          ast.ThrowStatement)

    def test_empty_statement(self):
        assert isinstance(first(";"), ast.EmptyStatement)


class TestASI:
    def test_semicolons_optional_at_newline(self):
        program = parse("var a = 1\nvar b = 2")
        assert len(program.body) == 2

    def test_semicolon_optional_before_brace(self):
        parse("function f() { return 1 }")

    def test_missing_semicolon_same_line_rejected(self):
        with pytest.raises(ParseError):
            parse("var a = 1 var b = 2")

    def test_return_value_must_be_on_same_line(self):
        node = parse("function f() { return\n1; }").body[0]
        assert node.function.body[0].argument is None


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        node = first("x = 1 + 2 * 3;").expression
        assert node.value.op == "+"
        assert node.value.right.op == "*"

    def test_exponent_right_associative(self):
        node = first("x = 2 ** 3 ** 2;").expression
        assert node.value.right.op == "**"

    def test_logical_short_circuit_structure(self):
        node = first("x = a && b || c;").expression
        assert node.value.op == "||"

    def test_conditional(self):
        node = first("x = a ? b : c;").expression
        assert isinstance(node.value, ast.ConditionalExpression)

    def test_assignment_targets(self):
        with pytest.raises(ParseError):
            parse("1 = 2;")

    def test_compound_assignment(self):
        node = first("x += 2;").expression
        assert node.op == "+="

    def test_member_chain(self):
        node = first("a.b.c;").expression
        assert node.property == "c"
        assert node.object.property == "b"

    def test_computed_member(self):
        node = first("a['key'];").expression
        assert node.computed is True

    def test_keyword_as_property_name(self):
        node = first("a.typeof;").expression
        assert node.property == "typeof"

    def test_call_with_arguments(self):
        node = first("f(1, 'two');").expression
        assert len(node.arguments) == 2

    def test_new_with_member_callee(self):
        node = first("new a.B(1);").expression
        assert isinstance(node, ast.NewExpression)
        assert node.callee.property == "B"

    def test_new_then_member_access(self):
        node = first("new Thing().prop;").expression
        assert isinstance(node, ast.MemberExpression)
        assert isinstance(node.object, ast.NewExpression)

    def test_sequence_expression(self):
        node = first("a, b, c;").expression
        assert isinstance(node, ast.SequenceExpression)
        assert len(node.expressions) == 3

    def test_unary_operators(self):
        for op in ("!", "-", "typeof", "delete", "~"):
            node = first(f"{op} x;").expression
            assert node.op == op

    def test_update_prefix_and_postfix(self):
        assert first("++x;").expression.prefix is True
        assert first("x++;").expression.prefix is False


class TestFunctionsAndLiterals:
    def test_function_expression_source_slice(self):
        node = first("var f = function named(a) { return a; };")
        fn = node.declarations[0][1]
        assert fn.source == "function named(a) { return a; }"

    def test_arrow_single_param(self):
        fn = first("var f = x => x * 2;").declarations[0][1]
        assert fn.is_arrow and fn.params == ["x"]

    def test_arrow_parenthesised_params(self):
        fn = first("var f = (a, b) => { return a + b; };").declarations[0][1]
        assert fn.params == ["a", "b"]

    def test_arrow_zero_params(self):
        fn = first("var f = () => 1;").declarations[0][1]
        assert fn.params == []

    def test_parenthesised_expression_is_not_arrow(self):
        node = first("var y = (a + b);").declarations[0][1]
        assert isinstance(node, ast.BinaryExpression)

    def test_object_literal_key_styles(self):
        node = first("var o = {a: 1, 'b': 2, 3: 4};").declarations[0][1]
        assert [key for key, _ in node.entries] == ["a", "b", "3"]

    def test_object_shorthand_property(self):
        node = first("var o = {a};").declarations[0][1]
        key, value = node.entries[0]
        assert key == "a" and isinstance(value, ast.Identifier)

    def test_object_method_shorthand(self):
        node = first("var o = {go() { return 1; }};").declarations[0][1]
        _, value = node.entries[0]
        assert isinstance(value, ast.FunctionExpression)

    def test_array_literal(self):
        node = first("var a = [1, 2, 3];").declarations[0][1]
        assert len(node.elements) == 3

    def test_nested_structures(self):
        parse("var config = {items: [{id: 1}, {id: 2}], "
              "get: function (i) { return this.items[i]; }};")

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse("function f() { return 1;")

"""Unit tests for function objects and JS errors."""

import pytest

from repro.jsobject import (
    UNDEFINED,
    JSError,
    JSObject,
    NativeFunction,
    StackFrame,
    make_error_object,
)
from repro.jsobject.errors import format_stack
from repro.jsobject.functions import native_function, native_source


class TestNativeFunctions:
    def test_tostring_is_native_code(self):
        fn = NativeFunction(lambda i, t, a: UNDEFINED, name="getContext")
        assert fn.to_source_string() \
            == "function getContext() {\n    [native code]\n}"

    def test_masquerade_name_controls_tostring(self):
        fn = NativeFunction(lambda i, t, a: UNDEFINED, name="get webdriver",
                            masquerade_name="webdriver")
        assert "webdriver()" in fn.to_source_string()
        assert "get webdriver" not in fn.to_source_string()

    def test_call_dispatches(self):
        fn = NativeFunction(lambda i, t, a: a[0] * 2, name="double")
        assert fn.call(None, UNDEFINED, [21.0]) == 42.0

    def test_not_a_constructor_by_default(self):
        fn = NativeFunction(lambda i, t, a: UNDEFINED, name="f")
        with pytest.raises(NotImplementedError):
            fn.construct(None, [])

    def test_constructor_hook(self):
        fn = NativeFunction(lambda i, t, a: UNDEFINED, name="F",
                            constructor=lambda i, a: JSObject())
        assert isinstance(fn.construct(None, []), JSObject)

    def test_decorator(self):
        @native_function("helper")
        def helper(interp, this, args):
            return "ok"

        assert isinstance(helper, NativeFunction)
        assert helper.call(None, None, []) == "ok"

    def test_native_source_helper(self):
        assert native_source("x") == "function x() {\n    [native code]\n}"


class TestStackFrames:
    def test_frame_format(self):
        frame = StackFrame("fn", "https://a.test/x.js", 3, 7)
        assert frame.format() == "fn@https://a.test/x.js:3:7"

    def test_anonymous_frame(self):
        frame = StackFrame("", "x.js", 1, 1)
        assert frame.format().startswith("<anonymous>@")

    def test_format_stack_joins_lines(self):
        frames = [StackFrame("a", "u", 1, 1), StackFrame("b", "u", 2, 2)]
        assert format_stack(frames).count("\n") == 1


class TestErrorObjects:
    def test_error_object_fields(self):
        error = make_error_object("TypeError", "bad", [
            StackFrame("f", "app.js", 5, 2)], "app.js", 5, 2)
        assert error.get("name") == "TypeError"
        assert error.get("message") == "bad"
        assert error.get("stack") == "f@app.js:5:2"
        assert error.get("fileName") == "app.js"
        assert error.get("lineNumber") == 5.0

    def test_jserror_describes_error_objects(self):
        error = JSError(make_error_object("RangeError", "too big"))
        assert "RangeError: too big" in str(error)

    def test_jserror_describes_primitive_throws(self):
        assert "just text" in str(JSError("just text"))

    def test_factory_methods(self):
        assert JSError.type_error("x").value.get("name") == "TypeError"
        assert JSError.range_error("x").value.get("name") == "RangeError"
        assert JSError.reference_error("x").value.get("name") \
            == "ReferenceError"
        assert JSError.syntax_error("x").value.get("name") == "SyntaxError"

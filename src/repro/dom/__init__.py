"""DOM substrate: documents, elements, events, iframes, and CSP.

Host-side classes double as JS-visible objects (they subclass
:class:`repro.jsobject.JSObject`), so page scripts and extension code
observe exactly the same DOM — the precondition for the injection
attacks the paper studies (Sec. 5).
"""

from repro.dom.events import DOMEvent
from repro.dom.csp import ContentSecurityPolicy
from repro.dom.node import (
    CanvasElement,
    Element,
    IFrameElement,
    ScriptElement,
)
from repro.dom.document import Document
from repro.dom.html import ParsedTag, parse_html_fragment

__all__ = [
    "DOMEvent",
    "ContentSecurityPolicy",
    "Element",
    "ScriptElement",
    "IFrameElement",
    "CanvasElement",
    "Document",
    "ParsedTag",
    "parse_html_fragment",
]

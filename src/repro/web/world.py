"""World assembly: Tranco list + configs + servers + ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.network import Network
from repro.web.providers import (
    OPENWPM_DETECTOR_PROVIDERS,
    THIRD_PARTY_DETECTORS,
    TRACKER_PROVIDERS,
    long_tail_detector_domains,
)
from repro.web.servers import (
    CDNServer,
    DetectorProviderServer,
    OpenWPMProviderServer,
    SiteServer,
    TrackerServer,
)
from repro.web.sitegen import SiteConfig, SiteConfigGenerator
from repro.web.tranco import TrancoList, generate_tranco


@dataclass
class GroundTruth:
    """What was actually planted — the scan pipeline's answer key."""

    configs: List[SiteConfig] = field(default_factory=list)

    def _domains(self, predicate) -> Set[str]:
        return {c.domain for c in self.configs if predicate(c)}

    # -- detectors ------------------------------------------------------
    @staticmethod
    def _static_openwpm_providers() -> Set[str]:
        return {p.domain for p in OPENWPM_DETECTOR_PROVIDERS
                if p.statically_visible}

    def detector_sites(self, where: str = "any") -> Set[str]:
        if where == "front":
            return self._domains(lambda c: c.detector_on_front
                                 or c.first_party_vendor is not None
                                 or c.openwpm_providers)
        return self._domains(lambda c: c.has_detector
                             or c.openwpm_providers)

    def static_detectable(self, where: str = "any") -> Set[str]:
        """Sites a static-pattern scan should flag (strict patterns).

        OpenWPM-residue probes from statically-visible providers (CHEQ)
        ship plain source on the front page and count too.
        """
        visible = self._static_openwpm_providers()
        return self._domains(
            lambda c: c.detector_channels(where)[0]
            or (where != "sub" and bool(set(c.openwpm_providers)
                                        & visible)))

    def dynamic_detectable(self, where: str = "any") -> Set[str]:
        """Sites whose detector code executes during a crawl.

        Every OpenWPM-residue probe runs on the front page and touches
        ``navigator.webdriver``, so those sites count regardless of the
        provider's static visibility.
        """
        return self._domains(
            lambda c: c.detector_channels(where)[1]
            or (where != "sub" and bool(c.openwpm_providers)))

    def decoy_sites(self) -> Set[str]:
        return self._domains(lambda c: c.has_decoy)

    def iterator_sites(self) -> Set[str]:
        return self._domains(lambda c: c.has_iterator)

    def openwpm_probe_sites(self) -> Set[str]:
        return self._domains(lambda c: bool(c.openwpm_providers))

    def first_party_sites(self) -> Set[str]:
        return self._domains(lambda c: c.first_party_vendor is not None)

    def first_party_by_vendor(self) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for config in self.configs:
            if config.first_party_vendor:
                out.setdefault(config.first_party_vendor,
                               set()).add(config.domain)
        return out

    def third_party_inclusions(self) -> Dict[str, int]:
        """provider domain -> number of including sites (1/site)."""
        out: Dict[str, int] = {}
        for config in self.configs:
            for provider in set(config.third_party_detectors):
                out[provider] = out.get(provider, 0) + 1
        return out

    def csp_blocking_sites(self) -> Set[str]:
        return self._domains(lambda c: c.csp_blocking)


@dataclass
class SyntheticWeb:
    """The assembled world."""

    network: Network
    tranco: TrancoList
    configs: List[SiteConfig]
    ground_truth: GroundTruth
    site_servers: Dict[str, SiteServer] = field(default_factory=dict)
    detector_servers: Dict[str, DetectorProviderServer] = field(
        default_factory=dict)
    tracker_servers: Dict[str, TrackerServer] = field(default_factory=dict)

    @property
    def site_count(self) -> int:
        return len(self.configs)

    def front_urls(self, n: Optional[int] = None) -> List[str]:
        configs = self.configs if n is None else self.configs[:n]
        return [f"https://www.{c.domain}/" for c in configs]

    def config_for(self, domain: str) -> Optional[SiteConfig]:
        for config in self.configs:
            if config.domain == domain:
                return config
        return None

    def reset_intel(self) -> None:
        """Wipe all server-side re-identification state (fresh IP)."""
        self.network.state.clear()

    def sync_intel(self) -> None:
        """Batch-publish bot intel to the tracking ecosystem.

        Run between crawl repetitions: networks act on a client only
        from the repetition after it was first reported.
        """
        from repro.web.servers import sync_intel

        sync_intel(self.network)


def build_world(site_count: int = 1000, seed: int = 7) -> SyntheticWeb:
    """Build the synthetic web with *site_count* ranked sites.

    Deterministic in (site_count, seed): the same world is rebuilt
    identically, which the paired measurement experiment relies on.
    """
    tranco = generate_tranco(site_count, seed=seed)
    generator = SiteConfigGenerator(seed=seed)
    configs = generator.generate(tranco.sites)

    network = Network()
    web = SyntheticWeb(network=network, tranco=tranco, configs=configs,
                       ground_truth=GroundTruth(configs=configs))

    for config in configs:
        server = SiteServer(config)
        web.site_servers[config.domain] = server
        network.register_domain(config.domain, server)

    for provider in THIRD_PARTY_DETECTORS:
        server = DetectorProviderServer(provider.domain)
        web.detector_servers[provider.domain] = server
        network.register_domain(provider.domain, server)
    for domain in long_tail_detector_domains():
        server = DetectorProviderServer(domain)
        web.detector_servers[domain] = server
        network.register_domain(domain, server)

    for provider in OPENWPM_DETECTOR_PROVIDERS:
        network.register_domain(provider.domain, OpenWPMProviderServer(
            provider.domain, provider.probes, provider.statically_visible))

    for tracker in TRACKER_PROVIDERS:
        server = TrackerServer(tracker.domain, cloaks=tracker.cloaks,
                               bot_ad_fill=tracker.bot_ad_fill,
                               activation_delay=tracker.activation_delay,
                               extra_uid_cookie=tracker.extra_uid_cookie)
        web.tracker_servers[tracker.domain] = server
        network.register_domain(tracker.domain, server)

    cdn = CDNServer()
    for domain in ("static-cdn.example", "fonts-cdn.example",
                   "jslib-cdn.example", "media-cdn.example"):
        network.register_domain(domain, cdn)

    return web

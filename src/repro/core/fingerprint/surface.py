"""Fingerprint surface: diffing templates and summarising deviations.

Reproduces the analysis behind Tables 2-4: each OpenWPM (OS, mode)
setup is compared against a stock Firefox of the same version, and the
deltas are bucketed into the paper's categories (webdriver, screen
geometry, WebGL, fonts, timezone, languages pollution, instrumentation
tampering / additions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.fingerprint.template import Template


@dataclass(frozen=True)
class SurfaceDelta:
    """One deviating property path."""

    path: str
    kind: str  # 'added' | 'missing' | 'changed'
    baseline: Optional[str]
    observed: Optional[str]


@dataclass
class FingerprintSurface:
    """All deviations of one client vs its browser-family baseline."""

    client_name: str
    baseline_name: str
    deltas: List[SurfaceDelta] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.deltas)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[SurfaceDelta]:
        return [d for d in self.deltas if d.kind == kind]

    def under(self, fragment: str) -> List[SurfaceDelta]:
        return [d for d in self.deltas if fragment in d.path]

    # -- Table 2 row helpers -------------------------------------------
    def webdriver_deviates(self) -> bool:
        return any(d.path.endswith("navigator.webdriver")
                   and "boolean:true" in (d.observed or "")
                   for d in self.deltas)

    def screen_dimension_deviations(self) -> List[SurfaceDelta]:
        names = ("screen.width", "screen.height", "screen.availWidth",
                 "screen.availHeight", "innerWidth", "innerHeight",
                 "outerWidth", "outerHeight")
        return [d for d in self.deltas
                if any(d.path.endswith(n) for n in names)]

    def screen_position_deviations(self) -> List[SurfaceDelta]:
        names = ("screenX", "screenY", "mozInnerScreenX", "mozInnerScreenY",
                 "availTop", "availLeft")
        return [d for d in self.deltas
                if any(d.path.endswith(n) for n in names)]

    def font_deviation(self) -> bool:
        return any("fonts" in d.path.lower() for d in self.deltas)

    def timezone_deviation(self) -> bool:
        return any("timezone" in d.path.lower() for d in self.deltas)

    def language_additions(self) -> List[SurfaceDelta]:
        return [d for d in self.deltas
                if ".languages." in d.path and d.kind == "added"]

    def webgl_deviations(self) -> List[SurfaceDelta]:
        """WebGL *parameter* deviations (the Table 2/4 counting unit).

        Function properties (interface methods) are excluded: the counts
        the paper reports concern the parameter/constant surface.
        """
        out = []
        for d in self.deltas:
            if "WebGLRenderingContext" not in d.path:
                continue
            reference = d.baseline if d.baseline is not None else d.observed
            if reference is None:
                continue
            if reference.startswith(("number:", "string:")):
                out.append(d)
        return out

    def tampered_functions(self) -> List[SurfaceDelta]:
        """Native APIs replaced by script-level wrappers (Listing 1)."""
        return [d for d in self.deltas
                if d.kind == "changed"
                and "function:script" in (d.observed or "")
                and "function:script" not in (d.baseline or "")]

    def added_custom_functions(self) -> List[SurfaceDelta]:
        """Non-spec functions added to window (getInstrumentJS & co)."""
        return [d for d in self.deltas
                if d.kind == "added"
                and d.path.count(".") == 1
                and d.path.startswith("window.")
                and (d.observed or "").startswith("function:")]


def diff_templates(baseline: Template, observed: Template
                   ) -> FingerprintSurface:
    """Diff two templates into a fingerprint surface."""
    surface = FingerprintSurface(client_name=observed.client_name,
                                 baseline_name=baseline.client_name)
    baseline_paths = baseline.properties
    observed_paths = observed.properties
    for path, value in observed_paths.items():
        if path not in baseline_paths:
            surface.deltas.append(SurfaceDelta(path, "added", None, value))
        elif baseline_paths[path] != value:
            surface.deltas.append(SurfaceDelta(
                path, "changed", baseline_paths[path], value))
    for path, value in baseline_paths.items():
        if path not in observed_paths:
            surface.deltas.append(SurfaceDelta(path, "missing", value, None))
    return surface


@dataclass
class SetupSummary:
    """One column of Table 2."""

    setup: str
    webdriver: bool
    screen_dimensions: int
    screen_position: int
    font_enumeration: bool
    timezone_zero: bool
    language_additions: int
    webgl_deviations: int
    tampering: int = 0
    custom_functions: int = 0


def measure_surface(baseline_window, observed_window) -> FingerprintSurface:
    """Capture templates of both windows and diff them."""
    from repro.core.fingerprint.template import capture_template

    baseline = capture_template(baseline_window)
    observed = capture_template(observed_window)
    return diff_templates(baseline, observed)


def summarise_setup(setup: str, surface: FingerprintSurface,
                    probe_values: Dict = None) -> SetupSummary:
    """Fold a surface into one Table 2 column."""
    probe_values = probe_values or {}
    return SetupSummary(
        setup=setup,
        webdriver=surface.webdriver_deviates(),
        screen_dimensions=len(surface.screen_dimension_deviations()),
        screen_position=len(surface.screen_position_deviations()),
        font_enumeration=probe_values.get("fontCount", -1) in (0, 1),
        timezone_zero=probe_values.get("timezoneOffset", -1) == 0,
        language_additions=len(surface.language_additions()),
        webgl_deviations=len(surface.webgl_deviations()),
        tampering=len(surface.tampered_functions()),
        custom_functions=len(surface.added_custom_functions()),
    )

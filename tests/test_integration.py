"""Cross-module integration tests: full-stack scenarios."""

import pytest

from repro.browser import Browser, openwpm_profile
from repro.core.scan import ScanPipeline
from repro.openwpm import (
    BrowserParams,
    ManagerParams,
    OpenWPMExtension,
    TaskManager,
)
from repro.web import build_world


class TestCrawlTheSyntheticWeb:
    def test_openwpm_gets_flagged_while_crawling(self, small_world):
        """A vanilla OpenWPM crawl of detector sites ends up on the
        shared bot-intel list; the web reacted to the measurement."""
        small_world.network.state["bot-intel"].pop("integration-wpm", None)
        extension = OpenWPMExtension(BrowserParams())
        browser = Browser(openwpm_profile("ubuntu", "regular"),
                          small_world.network,
                          client_id="integration-wpm",
                          extension=extension)
        detector_site = sorted(
            small_world.ground_truth.detector_sites("front"))[0]
        browser.visit(f"https://www.{detector_site}/", wait=60)
        assert small_world.network.state["bot-intel"].get(
            "integration-wpm") is True

    def test_hardened_crawl_not_flagged(self, small_world):
        from repro.core.hardening import StealthJSInstrument, \
            StealthSettings

        small_world.network.state["bot-intel"].pop("integration-hide",
                                                   None)
        settings = StealthSettings.plausible()
        extension = OpenWPMExtension(
            BrowserParams(stealth=True),
            js_instrument=StealthJSInstrument())
        browser = Browser(
            openwpm_profile("ubuntu", "regular",
                            window_size=settings.window_size,
                            window_position=settings.window_position),
            small_world.network, client_id="integration-hide",
            extension=extension)
        for domain in sorted(
                small_world.ground_truth.detector_sites("front"))[:3]:
            browser.visit(f"https://www.{domain}/", wait=60)
        assert not small_world.network.state["bot-intel"].get(
            "integration-hide")

    def test_task_manager_crawls_synthetic_web(self):
        world = build_world(site_count=6, seed=21)
        manager = TaskManager(
            ManagerParams(), [BrowserParams(dwell_time=5.0)],
            world.network)
        manager.crawl(world.front_urls())
        visits = manager.storage.query("SELECT COUNT(*) AS n "
                                       "FROM site_visits")
        assert visits[0]["n"] == 6
        requests = manager.storage.http_request_rows()
        assert len(requests) > 6 * 5
        manager.close()

    def test_scan_front_only_vs_subpages(self):
        world = build_world(site_count=60, seed=33)
        front_only = ScanPipeline(world, client_id="fo").run(
            visit_subpages=False)
        with_subs = ScanPipeline(world, client_id="ws").run(
            visit_subpages=True)
        front_found = front_only.table11()["combined"]
        combined_found = sum(
            c.clean_union for c in with_subs.combined.values())
        assert combined_found >= front_found


class TestScanResume:
    """Regression: a resumed scan used to silently drop every site the
    earlier runs completed — the dataset was rebuilt in memory while
    only the queue remembered the work."""

    def test_resumed_dataset_covers_previously_completed_sites(
            self, tmp_path):
        world = build_world(site_count=12, seed=33)
        queue_path = str(tmp_path / "scan.queue")

        baseline = ScanPipeline(world, client_id="rs-base").run(
            site_limit=8)

        # "Interrupted" first run: only part of the corpus enqueued.
        ScanPipeline(world, client_id="rs-split").run(
            site_limit=4, queue_path=queue_path)
        resumed = ScanPipeline(world, client_id="rs-split").run(
            site_limit=8, queue_path=queue_path, resume=True)

        assert resumed.visited_sites == 8
        assert set(resumed.combined) == set(baseline.combined)
        assert set(resumed.front_only) == set(baseline.front_only)
        for domain, expected in baseline.combined.items():
            got = resumed.combined[domain]
            assert got.clean_union == expected.clean_union
            assert got.identified_union == expected.identified_union
            assert got.third_party_hosts == expected.third_party_hosts
        assert resumed.table5() == baseline.table5()
        assert resumed.fig4() == baseline.fig4()
        assert resumed.subpage_visits == baseline.subpage_visits
        assert resumed.unique_scripts == baseline.unique_scripts

    def test_resume_without_sidecar_refuses(self, tmp_path):
        import os

        world = build_world(site_count=6, seed=33)
        queue_path = str(tmp_path / "scan.queue")
        ScanPipeline(world, client_id="rs2").run(
            site_limit=3, queue_path=queue_path)
        os.remove(queue_path + ".scan")
        with pytest.raises(RuntimeError, match="no persisted evidence"):
            ScanPipeline(world, client_id="rs2").run(
                site_limit=3, queue_path=queue_path, resume=True)


class TestTable6EndToEnd:
    def test_openwpm_probes_observed_and_attributed(self):
        """Sites probing instrument residue are caught dynamically even
        when the probe itself is obfuscated (Table 6)."""
        world = build_world(site_count=800, seed=51)
        probe_sites = sorted(world.ground_truth.openwpm_probe_sites())
        if not probe_sites:
            pytest.skip("seed planted no OpenWPM probes at this scale")
        pipeline = ScanPipeline(world, client_id="t6")
        dataset = pipeline.run(visit_subpages=False)
        found = {d for d, c in dataset.combined.items()
                 if c.probes_openwpm}
        assert set(probe_sites) <= found
        table6 = dataset.table6()
        assert any("cheqzone.com" in provider or "google" in provider
                   or "adzouk" in provider for provider in table6)


class TestScanToComparisonChain:
    """The paper's methodology end-to-end: the paired crawl runs on the
    sites *the scan found* (Sec. 6.3: 'all sites with bot detectors as
    found by the analysis in Sec. 4')."""

    def test_scan_results_drive_paired_crawl(self):
        from repro.core.comparison import PairedCrawl

        world = build_world(site_count=120, seed=77)
        dataset = ScanPipeline(world, client_id="chain-scan").run(
            visit_subpages=True)
        detector_sites = sorted(
            domain for domain, c in dataset.combined.items()
            if c.clean_union)
        assert detector_sites
        # Fresh network identities for the measurement phase.
        result = PairedCrawl(world, sites=detector_sites,
                             repetitions=2).run()
        rows = result.table10()
        assert rows[-1]["tracking_diff_pct"] > 0
        assert result.csp_report_reduction(0) <= 0

"""Deterministic fault injection and crawl supervision.

Offense: :class:`FaultPlan` — seeded, composable rules injecting
crashes, hangs, network faults, storage errors, and worker deaths at
named choke points across the crawl stack (see :mod:`repro.faults.plan`
for the choke-point table).

Defense: :class:`Watchdog` visit deadlines, the per-site
:class:`CircuitBreaker` quarantine, and :class:`CrashLoopDetector`
browser-slot cooldowns (:mod:`repro.faults.supervision`).

The chaos harness (``tests/test_faults.py``) runs scheduled crawls
under randomized seeded plans and asserts the accounting invariant:
every enqueued site ends exactly once as a completed visit, a
``failed_visits`` row, or a ``quarantined_sites`` row — even across a
kill + ``--resume``.
"""

from repro.faults.plan import (
    DEFAULT_HANG_SECONDS,
    DEFAULT_SLOW_SECONDS,
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    NetworkFault,
)
from repro.faults.supervision import (
    CircuitBreaker,
    CrashLoopDetector,
    VisitDeadlineExceeded,
    Watchdog,
)

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_SLOW_SECONDS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "NetworkFault",
    "CircuitBreaker",
    "CrashLoopDetector",
    "VisitDeadlineExceeded",
    "Watchdog",
]

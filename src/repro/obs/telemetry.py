"""The :class:`Telemetry` facade: one handle threaded through the stack.

Every integration point (task manager, extension, instruments, scan
pipeline, paired crawl) takes an optional ``telemetry`` argument and
defaults to the shared :data:`NULL_TELEMETRY`, whose tracer and metrics
are no-ops — existing callers and benchmarks run unchanged and pay only
an attribute lookup per hook.

``stage(...)`` is the combined primitive most call sites want: it opens
a child span *and* feeds the stage's duration into the
``stage_seconds`` histogram, labelled by stage name.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.clock import VirtualClock
from repro.obs.journal import NULL_JOURNAL
from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.tracing import NullTracer, Tracer, _NULL_SPAN


class _Stage:
    """Context manager timing one stage into span + histogram."""

    __slots__ = ("_telemetry", "_histogram", "_active", "_start")

    def __init__(self, telemetry: "Telemetry", histogram: Any,
                 name: str, attributes: Dict[str, Any]) -> None:
        self._telemetry = telemetry
        self._histogram = histogram
        self._active = telemetry.tracer.span(name, **attributes)
        self._start = telemetry.clock.peek()

    def __enter__(self):
        return self._active.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        suppress = self._active.__exit__(exc_type, exc, tb)
        elapsed = self._telemetry.clock.peek() - self._start
        self._histogram.observe(elapsed)
        return suppress


class _NullStage:
    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_STAGE = _NullStage()


class Telemetry:
    """Bundles a tracer, a metrics registry, and the clock behind them."""

    def __init__(self, enabled: bool = True,
                 clock: Optional[VirtualClock] = None) -> None:
        self.enabled = enabled
        self.clock = clock if clock is not None else VirtualClock()
        if enabled:
            self.tracer: Any = Tracer(self.clock)
            self.metrics: Any = MetricsRegistry()
        else:
            self.tracer = NullTracer()
            self.metrics = NullMetricsRegistry()
        # stage() is the hottest call site — cache the per-stage
        # histogram handle so repeated stages skip the registry lookup.
        self._stage_histograms: Dict[str, Any] = {}
        #: Flight recorder (:class:`repro.obs.journal.Journal`);
        #: defaults to the shared no-op so every ``journal.emit`` call
        #: site is safe without a check.
        self.journal: Any = NULL_JOURNAL

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    def attach_journal(self, journal: Any) -> None:
        """Wire the flight recorder into the tracer and metrics.

        Every span open/close and metric mutation from now on is also
        journalled (span/metric events are buffered writes; lifecycle
        events emitted by integration layers flush them). No-op when
        telemetry is disabled or the journal is the null instance.
        """
        self.journal = journal
        if not self.enabled or not journal.enabled:
            return

        # Span events carry no explicit start/end fields: both equal
        # the event's own virtual-clock ``t`` (the hooks fire at span
        # boundaries), and the journal's hot path is byte volume.
        # attrs/labels are passed by reference, not copied: the journal
        # serialises every event synchronously inside emit(), so later
        # mutation of the live dict cannot leak into the record.
        def span_open(span: Any) -> None:
            journal.emit("span_open", name=span.name,
                         span_id=span.span_id, trace_id=span.trace_id,
                         parent_id=span.parent_id,
                         attrs=span.attributes)

        def span_close(span: Any) -> None:
            journal.emit("span_close", name=span.name,
                         span_id=span.span_id, trace_id=span.trace_id,
                         duration=span.duration, status=span.status,
                         attrs=span.attributes)

        def metric_delta(instrument: Any, value: float) -> None:
            # Histogram observations are not journalled: the durations
            # they record already ride in the matching span_close
            # events, and reconciliation sums counter deltas only —
            # journalling each observation would double-record the
            # highest-volume metric for no extra information. Counter
            # and gauge mutations are coalesced per (name, labels) in
            # the writer and journalled as aggregates at each flush
            # window (see JournalWriter.add_metric).
            kind = instrument.kind
            if kind == "histogram":
                return
            journal.add_metric(instrument.name, kind,
                               instrument.labels, value)

        self.tracer.on_start = span_open
        self.tracer.on_end = span_close
        self.metrics.set_on_delta(metric_delta)

    def stage(self, name: str, **attributes: Any):
        """Time one stage: a span plus a ``stage_seconds`` observation."""
        if not self.enabled:
            return _NULL_STAGE
        histogram = self._stage_histograms.get(name)
        if histogram is None:
            histogram = self.metrics.histogram("stage_seconds",
                                               stage=name)
            self._stage_histograms[name] = histogram
        return _Stage(self, histogram, name, attributes)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Everything collected so far, as plain dicts."""
        return {"spans": self.tracer.snapshot(),
                "metrics": self.metrics.snapshot()}

    def clear(self) -> None:
        self.tracer.clear()
        self.metrics.clear()
        self._stage_histograms.clear()


#: Shared no-op instance used as the default everywhere.
NULL_TELEMETRY = Telemetry.disabled()


def coalesce(telemetry: Optional[Telemetry]) -> Telemetry:
    """The given telemetry, or the shared null instance."""
    return telemetry if telemetry is not None else NULL_TELEMETRY

"""WebExtension model: contexts, isolation, and privileged capabilities.

OpenWPM's instruments live in a browser extension. Extensions see the
same DOM as the page but run in an isolated *content context* with two
privileged capabilities the paper's hardening relies on:

* ``inject_page_script`` — the vanilla route: add a ``<script>`` element
  to the page (subject to the page's CSP, Sec. 5.1.2) whose code runs
  in the *page* context;
* ``export_function`` — the hardened route (Firefox's ``exportFunction``):
  install a privileged function directly into the page world without
  touching the DOM; its ``toString`` shows ``[native code]`` and it can
  capture a private channel to the background context (Sec. 6.2.1).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.dom.node import ScriptElement
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.functions import NativeFunction
from repro.jsobject.objects import JSObject


class ExtensionHost:
    """Interface the browser calls into; instruments subclass this.

    ``frame_policy`` decides when newly created frames/popups get
    instrumented: ``"deferred"`` (vanilla — a task on the event loop,
    leaving the same-tick window of Listing 3 open) or ``"immediate"``
    (hardened frame protection, Sec. 6.2.2).
    """

    name = "extension"
    frame_policy = "deferred"

    def on_visit_start(self, browser: Any, url: Any) -> None:
        """A new top-level visit is beginning."""

    def on_window_created(self, window: Any) -> None:
        """The top-level window exists; scripts have not yet run."""

    def on_frame_created(self, window: Any, parent: Any) -> None:
        """A subframe or popup window was created."""

    def on_request(self, request: Any, response: Any) -> None:
        """One HTTP exchange completed."""

    def on_cookie_change(self, cookie: Any, change: str) -> None:
        """The cookie jar changed."""

    def on_visit_end(self, browser: Any) -> None:
        """The visit is over; flush instrument state."""


class ExtensionContext:
    """Per-window content-script capabilities handed to instruments."""

    def __init__(self, window: Any,
                 background: Optional[Callable[[str, Any], None]] = None
                 ) -> None:
        self.window = window
        #: background message sink: fn(channel, payload)
        self._background = background or (lambda channel, payload: None)
        #: Exchanges that failed CSP, for auditing.
        self.blocked_injections: List[str] = []

    # ------------------------------------------------------------------
    # Vanilla route: DOM script injection (CSP applies)
    # ------------------------------------------------------------------
    def inject_page_script(self, source: str, script_url: str,
                           remove_after: bool = True) -> bool:
        """Inject *source* into the page via a ``<script>`` element.

        Returns False (and triggers a CSP violation report) when the
        page's ``script-src`` directive forbids inline scripts — exactly
        the failure mode the paper demonstrates against vanilla OpenWPM.
        """
        document = self.window.document
        if not document.csp.allows_inline_script():
            self.window.report_csp_violation("script-src",
                                             "extension-inline")
            self.blocked_injections.append(script_url)
            return False
        element: ScriptElement = document.create_element("script")
        element.text_content = source
        element.executed = True  # the extension runs it itself, below
        document.head.append_child(element)
        self.window.run_script(source, script_url=script_url,
                               raise_errors=False)
        if remove_after:
            element.remove()
        return True

    def run_page_script_with_scope(self, source: str, script_url: str):
        """Run injected code and keep its top scope (for wrapper closures).

        Still CSP-gated like :meth:`inject_page_script` since the code
        enters the page world through a DOM script element.
        """
        document = self.window.document
        if not document.csp.allows_inline_script():
            self.window.report_csp_violation("script-src",
                                             "extension-inline")
            self.blocked_injections.append(script_url)
            return None
        element: ScriptElement = document.create_element("script")
        element.text_content = source
        element.executed = True
        document.head.append_child(element)
        scope = self.window.run_script_with_scope(source, script_url)
        element.remove()
        return scope

    # ------------------------------------------------------------------
    # Hardened route: exportFunction (no DOM, no CSP interaction)
    # ------------------------------------------------------------------
    def export_function(self, fn: Callable[[Any, Any, List[Any]], Any],
                        name: str,
                        masquerade_name: Optional[str] = None
                        ) -> NativeFunction:
        """Export a privileged function into the page world.

        The resulting function is indistinguishable from a native
        builtin: its ``toString`` yields ``function <name>() { [native
        code] }`` and no interpreter stack frame is recorded for it.
        """
        return NativeFunction(
            fn, name=name,
            proto=self.window.realm.function_prototype,
            masquerade_name=masquerade_name
            if masquerade_name is not None else name)

    def define_exported_accessor(self, target: JSObject, name: str,
                                 getter: Callable, setter: Optional[Callable]
                                 = None, enumerable: bool = True) -> None:
        """Replace a property with exported (native-looking) accessors."""
        get_fn = self.export_function(getter, name, masquerade_name=name)
        set_fn = self.export_function(setter, name, masquerade_name=name) \
            if setter is not None else None
        target.properties[name] = PropertyDescriptor.accessor(
            get=get_fn, set=set_fn, enumerable=enumerable)

    # ------------------------------------------------------------------
    # Background messaging (browser.runtime.sendMessage equivalent)
    # ------------------------------------------------------------------
    def send_to_background(self, channel: str, payload: Any) -> None:
        """Deliver a message on the extension's private channel.

        Page scripts cannot reach this function unless the instrument
        leaks it — the hardened instrument captures it in the closure of
        exported wrappers only.
        """
        self._background(channel, payload)

"""Fig. 4: front-page detectors — static vs dynamic overlap."""

from conftest import BENCH_SITES, report


def test_benchmark_fig4(benchmark, bench_scan):
    fig4 = benchmark(bench_scan.fig4)
    n = bench_scan.visited_sites

    lines = [f"(front pages of {n} sites; paper: static 11,897 / dynamic "
             "12,208 per 100K, overlapping but not identical)", "",
             "| segment | sites | rate |", "|---|---|---|"]
    for key in ("static_only", "dynamic_only", "both", "static_total",
                "dynamic_total", "union"):
        lines.append(f"| {key} | {fig4[key]} | {fig4[key] / n:.3f} |")
    report("fig04_frontpage_detectors",
           "Fig 4 - front-page detectors by method", lines)

    # Both methods find detectors the other misses (the paper's point).
    assert fig4["static_only"] > 0
    assert fig4["dynamic_only"] > 0
    assert fig4["both"] > fig4["static_only"]
    assert fig4["both"] > fig4["dynamic_only"]
    # Union gains ~1-2 percentage points over either method alone.
    assert fig4["union"] > max(fig4["static_total"],
                               fig4["dynamic_total"])

"""Function objects.

Two concrete function kinds share the :class:`JSFunction` interface:

* :class:`NativeFunction` — implemented in Python (host/browser builtins).
  Its ``toString`` yields the canonical ``[native code]`` string, which is
  exactly what fingerprinting scripts check (paper, Listing 1).
* ``ScriptFunction`` (defined by the interpreter in
  :mod:`repro.jsengine.interpreter`) — defined by page JavaScript; its
  ``toString`` yields the original source text.

OpenWPM's vanilla instrumentation replaces native functions with *script*
wrappers, so their ``toString`` betrays the instrumentation. The hardened
variant installs native-looking exported functions instead
(:mod:`repro.core.hardening.export_function`).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.jsobject.objects import JSObject


class JSFunction(JSObject):
    """Base class for callable JS objects."""

    def __init__(self, name: str = "", proto: Optional[JSObject] = None) -> None:
        super().__init__(proto=proto, class_name="Function")
        self.function_name = name

    def call(self, interp: Any, this: Any, args: List[Any]) -> Any:
        """Invoke the function. ``interp`` may be None for host calls."""
        raise NotImplementedError

    def construct(self, interp: Any, args: List[Any]) -> Any:
        """Invoke as a constructor (``new F(...)``)."""
        raise NotImplementedError(
            f"{self.function_name or 'anonymous'} is not a constructor")

    def to_source_string(self) -> str:
        """The value returned by ``Function.prototype.toString``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.function_name or '(anonymous)'}>"


def native_source(name: str) -> str:
    """The exact ``toString`` output of an uninstrumented browser builtin."""
    return "function %s() {\n    [native code]\n}" % name


class NativeFunction(JSFunction):
    """A function implemented by the host (browser builtins, DOM APIs).

    ``fn`` receives ``(interp, this, args)`` and returns a JS value. The
    ``masquerade_name`` controls the name embedded in the native-code
    ``toString`` output; exported stealth wrappers reuse the original
    builtin's name so ``toString`` is indistinguishable from the original.
    """

    def __init__(self, fn: Callable[[Any, Any, List[Any]], Any],
                 name: str = "", proto: Optional[JSObject] = None,
                 masquerade_name: Optional[str] = None,
                 constructor: Optional[Callable[[Any, List[Any]], Any]] = None,
                 ) -> None:
        super().__init__(name=name, proto=proto)
        self._fn = fn
        self._constructor = constructor
        self.masquerade_name = masquerade_name if masquerade_name is not None else name

    def call(self, interp: Any, this: Any, args: List[Any]) -> Any:
        return self._fn(interp, this, args)

    def construct(self, interp: Any, args: List[Any]) -> Any:
        if self._constructor is None:
            return super().construct(interp, args)
        return self._constructor(interp, args)

    def to_source_string(self) -> str:
        return native_source(self.masquerade_name)


def native_function(name: str = "") -> Callable:
    """Decorator turning ``fn(interp, this, args)`` into a NativeFunction."""

    def wrap(fn: Callable[[Any, Any, List[Any]], Any]) -> NativeFunction:
        return NativeFunction(fn, name=name or fn.__name__)

    return wrap

"""Integration tests: telemetry across a crawl, the integrity gauge,
and the ``repro stats`` surface.

The headline property (ISSUE acceptance): after a 1 000-site crawl with
fault injection, the loss-accounting books balance exactly —
``visits_attempted == visits_completed + visits_failed_exhausted`` and
every counter reconciles against the SQLite tables — and the Sec. 5
dispatcher hijack flips ``recording_integrity`` to red.
"""

from __future__ import annotations

import json

import pytest

from repro.browser.profiles import openwpm_profile
from repro.core.attacks.dispatcher import (
    BLOCK_RECORDING_ATTACK,
    PROBE_ACTIVITY,
)
from repro.core.lab import visit_with_scripts
from repro.obs.runner import run_telemetry_crawl
from repro.obs.stats import build_crawl_report, render_crawl_report
from repro.obs.telemetry import Telemetry
from repro.openwpm.config import BrowserParams
from repro.openwpm.extension import OpenWPMExtension


@pytest.fixture(scope="module")
def big_crawl():
    """1 000 lab sites, two browsers, 5% fault injection."""
    result = run_telemetry_crawl(site_count=1000, seed=7,
                                 crash_probability=0.05, browsers=2)
    yield result
    result.close()


class TestThousandSiteCrawl:
    def test_loss_accounting_invariant(self, big_crawl):
        metrics = big_crawl.telemetry.metrics
        attempted = metrics.counter_value("visits_attempted")
        completed = metrics.counter_value("visits_completed")
        exhausted = metrics.counter_value("visits_failed_exhausted")
        assert attempted == 1000
        assert attempted == completed + exhausted

    def test_attempts_match_site_visit_rows(self, big_crawl):
        total = big_crawl.telemetry.metrics.counter_value(
            "visit_attempts_total")
        rows = big_crawl.storage.query(
            "SELECT COUNT(*) AS n FROM site_visits")[0]["n"]
        assert total == rows > 1000  # fault injection forced retries

    def test_crashes_match_crash_history(self, big_crawl):
        crashed = big_crawl.telemetry.metrics.counter_value(
            "visits_crashed")
        rows = big_crawl.storage.query(
            "SELECT COUNT(*) AS n FROM crash_history "
            "WHERE action = 'crash'")[0]["n"]
        assert crashed == rows > 0

    def test_crash_rows_name_the_site(self, big_crawl):
        rows = big_crawl.storage.query(
            "SELECT site_url FROM crash_history LIMIT 5")
        assert all(row["site_url"].startswith("https://lab.test/")
                   for row in rows)

    def test_failed_sites_persisted(self, big_crawl):
        exhausted = big_crawl.telemetry.metrics.counter_value(
            "visits_failed_exhausted")
        rows = big_crawl.storage.failed_visit_rows()
        assert len(rows) == exhausted == len(
            big_crawl.manager.failed_sites)
        for row in rows:
            assert row["reason"] == "failure_limit"
            assert row["attempts"] == 3
            assert row["site_url"] in big_crawl.manager.failed_sites

    def test_http_records_match_table(self, big_crawl):
        written = big_crawl.telemetry.metrics.counter_value(
            "records_written", instrument="http")
        rows = big_crawl.storage.query(
            "SELECT COUNT(*) AS n FROM http_requests")[0]["n"]
        assert written == rows > 0

    def test_telemetry_round_trips_through_sqlite(self, big_crawl):
        storage = big_crawl.storage
        live = {(m["name"], tuple(sorted((m.get("labels") or {}).items()))):
                m.get("value")
                for m in big_crawl.telemetry.metrics.snapshot()
                if m["kind"] != "histogram"}
        stored = {(m["name"],
                   tuple(sorted((m.get("labels") or {}).items()))):
                  m.get("value")
                  for m in storage.telemetry_metrics()
                  if m["kind"] != "histogram"}
        assert live == stored
        assert storage.telemetry_metric_value(
            "visits_attempted") == 1000

    def test_spans_persisted_with_hierarchy(self, big_crawl):
        spans = big_crawl.storage.telemetry_spans()
        visits = [s for s in spans if s["name"] == "visit"]
        assert len(visits) == 1000
        roots = {s["span_id"] for s in visits}
        page_loads = [s for s in spans if s["name"] == "page_load"]
        assert page_loads and all(
            s["parent_id"] in roots for s in page_loads)

    def test_report_reconciles(self, big_crawl):
        report = build_crawl_report(big_crawl.storage,
                                    telemetry=big_crawl.telemetry)
        assert report["reconciliation"]
        assert report["reconciled"], report["reconciliation"]
        text = render_crawl_report(report)
        assert "BOOKS BALANCE" in text
        assert "enqueued ............... 1000" in text

    def test_report_from_stored_snapshot_alone(self, big_crawl):
        # A later `repro stats --db crawl.sqlite` run sees no live
        # Telemetry — the persisted snapshot must carry the books.
        report = build_crawl_report(big_crawl.storage)
        assert report["has_telemetry"]
        assert report["reconciled"], report["reconciliation"]


class TestRecordingIntegrityGauge:
    def _visit(self, scripts, stealth=False):
        telemetry = Telemetry()
        if stealth:
            from repro.core.hardening.stealth import StealthJSInstrument

            extension = OpenWPMExtension(BrowserParams(stealth=True),
                                         js_instrument=StealthJSInstrument(),
                                         telemetry=telemetry)
        else:
            extension = OpenWPMExtension(BrowserParams(),
                                         telemetry=telemetry)
        visit_with_scripts(openwpm_profile("ubuntu", "regular"), scripts,
                           extension=extension)
        return telemetry, extension

    def test_benign_visit_green(self):
        telemetry, _ = self._visit([PROBE_ACTIVITY])
        assert telemetry.metrics.gauge_value("recording_integrity") == 1.0
        assert telemetry.metrics.counter_value(
            "integrity_probe_failures") == 0

    def test_dispatcher_hijack_flips_gauge_red(self):
        telemetry, extension = self._visit(
            [BLOCK_RECORDING_ATTACK, PROBE_ACTIVITY])
        assert telemetry.metrics.gauge_value("recording_integrity") == 0.0
        assert telemetry.metrics.counter_value(
            "integrity_probe_failures") == 1
        # The attack also silenced the probe activity itself — exactly
        # the silent loss the gauge is there to surface.
        symbols = {r.symbol for r in extension.js_instrument.records}
        assert "navigator.platform" not in symbols

    def test_hardened_instrument_stays_green_under_attack(self):
        telemetry, _ = self._visit(
            [BLOCK_RECORDING_ATTACK, PROBE_ACTIVITY], stealth=True)
        assert telemetry.metrics.gauge_value("recording_integrity") == 1.0

    def test_probe_leaves_no_trace_in_records(self):
        telemetry, extension = self._visit([PROBE_ACTIVITY])
        # The probe's own navigator.userAgent read is discarded; only
        # the page's genuine accesses remain.
        records = extension.js_instrument.records
        js_written = telemetry.metrics.counter_value(
            "records_written", instrument="js")
        assert js_written == len(records)


class TestStatsCli:
    def test_text_report_exit_zero(self, capsys):
        from repro.cli import main

        code = main(["stats", "--sites", "30",
                     "--crash-probability", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "BOOKS BALANCE" in out
        assert "enqueued ............... 30" in out

    def test_json_output(self, capsys):
        from repro.cli import main

        code = main(["stats", "--sites", "10", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["reconciled"] is True
        assert report["telemetry"]["visits_attempted"] == 10

    def test_prometheus_output(self, capsys):
        from repro.cli import main

        code = main(["stats", "--sites", "10", "--prometheus"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_visits_attempted counter" in out
        assert "repro_visits_attempted 10" in out
        assert "repro_stage_seconds_bucket" in out

    def test_existing_database(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "crawl.sqlite")
        assert main(["stats", "--sites", "15", "--db", db,
                     "--fresh"]) == 0
        capsys.readouterr()
        # Second invocation reports on the stored crawl, no recrawl.
        code = main(["stats", "--db", db])
        out = capsys.readouterr().out
        assert code == 0
        assert "enqueued ............... 15" in out
        assert "BOOKS BALANCE" in out

"""The query layer: a threaded stdlib HTTP server over the rollups.

``repro serve <db> --port N`` exposes JSON endpoints:

=========================  ===========================================
``/healthz``               rollup state, schema version, generation
``/metrics``               server metrics, Prometheus text format
``/sites``                 every known site (sorted)
``/site?url=<site-url>``   one site's verdict card
``/aggregates/<name>``     totals · symbols · resources · cookies ·
                           crashes · drop_reasons
``/corpus/<hash>``         occurrence stats + archived-body metadata
                           for one script hash
=========================  ===========================================

Concurrency model: the crawl writer owns the database's single write
connection (WAL journal mode); the server opens *read-only* SQLite
connections (``mode=ro``), one per handler thread. Each request runs
inside one explicit read transaction, so the generation it reports and
the aggregates it serves come from a single WAL snapshot — readers
never block the writer, the writer never gives readers a torn view,
and nobody sees ``database is locked``.

Cacheable responses are fronted by the LRU/TTL cache keyed under the
snapshot's rollup generation (see :mod:`repro.serve.cache`); the
``X-Rollup-Generation`` header exposes which generation an answer came
from. ``/healthz`` and ``/metrics`` bypass the cache.

``ResultServer.respond`` is transport-independent — tests and the
benchmark drive it directly; the HTTP layer only adds sockets.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.serve import rollups
from repro.serve.aggregates import (
    AGGREGATE_BUILDERS,
    encode_payload,
    healthz_payload,
    script_payload,
    site_payload,
    sites_payload,
)
from repro.serve.cache import CachedResponse, ResponseCache


class ServeError(RuntimeError):
    """The server cannot run against this database."""


class ResultServer:
    """Serves one crawl database's aggregates over HTTP."""

    def __init__(self, database_path: str, host: str = "127.0.0.1",
                 port: int = 0, cache_capacity: int = 512,
                 cache_ttl: float = 30.0, clock: Any = None,
                 ensure: bool = True) -> None:
        import os

        if not os.path.isfile(database_path):
            raise ServeError(f"no crawl database at {database_path!r}")
        self.database_path = database_path
        self.host = host
        self.port = port
        self.cache = ResponseCache(capacity=cache_capacity,
                                   ttl=cache_ttl, clock=clock)
        from repro.obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self._local = threading.local()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        if ensure:
            self.ensure_rollups()

    # -- rollup lifecycle ---------------------------------------------
    def ensure_rollups(self) -> str:
        """Backfill stale/absent rollups before serving from them.

        Needs a moment of write access; skipped automatically when the
        rollups are already fresh (the live-crawl maintenance path).
        """
        connection = sqlite3.connect(self.database_path)
        try:
            state = rollups.rollups_state(connection)
            if state != "fresh":
                rollups.build(connection)
            return rollups.rollups_state(connection)
        finally:
            connection.close()

    # -- per-thread read-only connections -----------------------------
    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = sqlite3.connect(
                f"file:{self.database_path}?mode=ro", uri=True,
                isolation_level=None)
            connection.execute("PRAGMA busy_timeout = 10000")
            self._local.connection = connection
        return connection

    # -- request core (transport-independent) -------------------------
    def respond(self, path: str, query: str = "") -> CachedResponse:
        """Answer one GET; returns the response the transport sends."""
        if path == "/healthz":
            return self._uncached(path)
        if path == "/metrics":
            from repro.obs.export import metrics_to_prometheus

            self.metrics.counter("serve_requests_total",
                                 endpoint="metrics").inc()
            return CachedResponse(
                body=metrics_to_prometheus(
                    self.metrics.snapshot()).encode("utf-8"),
                content_type="text/plain; version=0.0.4")
        return self._cached(path, query)

    def _uncached(self, path: str) -> CachedResponse:
        self.metrics.counter("serve_requests_total",
                             endpoint="healthz").inc()
        connection = self._connection()
        connection.execute("BEGIN")
        try:
            payload = healthz_payload(connection, self.database_path)
        finally:
            connection.execute("COMMIT")
        status = 200 if payload["rollups"] == "fresh" else 503
        return CachedResponse(body=encode_payload(payload),
                              status=status,
                              generation=payload["generation"])

    def _cached(self, path: str, query: str) -> CachedResponse:
        key = f"{path}?{query}" if query else path
        connection = self._connection()
        # One explicit transaction per request: the generation below
        # and every row the builder reads come from the same WAL
        # snapshot, so a concurrent writer can never give us a torn
        # answer (generation G with generation-G+1 aggregates).
        connection.execute("BEGIN")
        try:
            generation = rollups.generation(connection)
            entry = self.cache.get(key, generation)
            if entry is not None:
                self.metrics.counter("serve_cache_hits_total").inc()
                return entry
            self.metrics.counter("serve_cache_misses_total").inc()
            body, status, endpoint = self._build(connection, path,
                                                 query)
        finally:
            connection.execute("COMMIT")
        self.metrics.counter("serve_requests_total",
                             endpoint=endpoint).inc()
        if status != 200:
            return CachedResponse(body=body, status=status,
                                  generation=generation)
        return self.cache.put(key, generation, body)

    def _build(self, connection: sqlite3.Connection, path: str,
               query: str) -> Tuple[bytes, int, str]:
        """Render one payload inside the caller's read transaction."""
        if rollups.rollups_state(connection) != "fresh":
            return (encode_payload(
                {"error": "rollups are "
                          + rollups.rollups_state(connection)
                          + "; run `repro serve build`"}), 503, "stale")
        if path == "/sites":
            return encode_payload(sites_payload(connection)), 200, \
                "sites"
        if path == "/site":
            params = parse_qs(query)
            urls = params.get("url", [])
            if len(urls) != 1:
                return encode_payload(
                    {"error": "expected exactly one url= parameter"}), \
                    400, "site"
            payload = site_payload(connection, urls[0])
            if payload is None:
                return encode_payload(
                    {"error": f"unknown site {urls[0]!r}"}), 404, "site"
            return encode_payload(payload), 200, "site"
        if path.startswith("/aggregates/"):
            name = path[len("/aggregates/"):]
            builder = AGGREGATE_BUILDERS.get(name)
            if builder is None:
                return encode_payload(
                    {"error": f"unknown aggregate {name!r}",
                     "known": sorted(AGGREGATE_BUILDERS)}), 404, \
                    "aggregates"
            return encode_payload(builder(connection)), 200, \
                "aggregates"
        if path.startswith("/corpus/"):
            digest = unquote(path[len("/corpus/"):])
            payload = script_payload(connection, digest)
            if payload is None:
                return encode_payload(
                    {"error": f"unknown script hash {digest!r}"}), \
                    404, "corpus"
            return encode_payload(payload), 200, "corpus"
        return encode_payload({"error": f"no route for {path!r}"}), \
            404, "unknown"

    # -- HTTP plumbing ------------------------------------------------
    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port
        (meaningful with ``port=0`` ephemeral binds)."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib name)
                split = urlsplit(self.path)
                try:
                    response = server.respond(split.path, split.query)
                except Exception as exc:  # pragma: no cover - guard
                    server.metrics.counter("serve_errors_total").inc()
                    response = CachedResponse(
                        body=encode_payload({"error": repr(exc)}),
                        status=500)
                self.send_response(response.status)
                self.send_header("Content-Type",
                                 response.content_type)
                self.send_header("Content-Length",
                                 str(len(response.body)))
                self.send_header("X-Rollup-Generation",
                                 str(response.generation))
                self.end_headers()
                self.wfile.write(response.body)

            def log_message(self, *args: Any) -> None:
                pass  # journald duty belongs to the telemetry layer

        self._httpd = ThreadingHTTPServer((self.host, self.port),
                                          Handler)
        self._httpd.daemon_threads = True
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve", daemon=True)
        self._thread.start()
        return self.port

    def serve_forever(self) -> None:
        """Foreground serving for the CLI (Ctrl-C returns)."""
        if self._httpd is None:
            self.start()
        assert self._thread is not None
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None


def json_get(url: str, timeout: float = 10.0) -> Tuple[int, Any]:
    """Tiny stdlib GET helper for tests/CI: (status, decoded JSON)."""
    from urllib.error import HTTPError
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except HTTPError as error:
        body = error.read()
        try:
            return error.code, json.loads(body)
        except (ValueError, TypeError):
            return error.code, body.decode("utf-8", "replace")

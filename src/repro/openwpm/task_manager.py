"""Task manager: the framework layer orchestrating browsers.

Reproduces the orchestration responsibilities Fig. 1 assigns to the
framework: owning N browsers, distributing command sequences, watching
for crashes, restarting failed browsers, and funnelling everything into
one storage controller.

Fault injection and supervision (:mod:`repro.faults`): the manager
builds an effective :class:`~repro.faults.FaultPlan` (the legacy
``crash_probability`` Bernoulli becomes a ``crash`` rule drawing from
the manager RNG, so old crawls stay bit-identical), wires it into the
network and storage layers, and defends with a per-stage
:class:`~repro.faults.Watchdog`, a per-site
:class:`~repro.faults.CircuitBreaker` (quarantine), and
:class:`~repro.faults.CrashLoopDetector` browser-slot cooldowns.
"""

from __future__ import annotations

import random
import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.browser.browser import Browser, VisitResult
from repro.browser.profiles import openwpm_profile
from repro.faults.plan import (
    DEFAULT_HANG_SECONDS,
    FaultPlan,
    FaultRule,
    NetworkFault,
)
from repro.faults.supervision import (
    CircuitBreaker,
    CrashLoopDetector,
    VisitDeadlineExceeded,
    Watchdog,
)
from repro.net.network import Network
from repro.obs.telemetry import Telemetry, coalesce
from repro.openwpm.config import BrowserParams, ManagerParams
from repro.openwpm.extension import OpenWPMExtension
from repro.openwpm.storage import StorageController

#: abort_visit table name -> records_written instrument label.
_DISCARD_INSTRUMENTS = {
    "javascript": "js",
    "http_requests": "http",
    "javascript_cookies": "cookie",
}


class BrowserCrashed(RuntimeError):
    """Raised inside a visit when fault injection fires."""


@dataclass
class CommandSequence:
    """A unit of crawling work: visit a site, then run extra commands.

    Retry behaviour is governed by ``manager_params.failure_limit``.
    """

    url: str
    #: Extra callbacks run with (browser, visit_result) after the GET.
    callbacks: List[Callable[[Browser, VisitResult], None]] = field(
        default_factory=list)
    dwell_time: Optional[float] = None


@dataclass
class ManagedBrowser:
    """One browser slot with crash/restart bookkeeping."""

    browser_id: int
    params: BrowserParams
    browser: Browser
    extension: OpenWPMExtension
    crash_count: int = 0
    #: visit_id of this slot's most recently *committed* visit, None
    #: until one completes. The scheduler's discard hook uses it to
    #: delete the copy when a late completion loses the lease race.
    last_visit_id: Optional[int] = None
    #: site whose ``failed_visits`` row this slot's latest
    #: execute_command_sequence call wrote (retry exhaustion), None
    #: otherwise. The discard hook retracts that row when the
    #: terminal-failure verdict is voided by a lost lease.
    last_given_up_site: Optional[str] = None
    #: Index into the slot's JS-instrument record stream at visit
    #: start; the slice from here is the visit's bundle trace.
    bundle_trace_mark: int = 0


class TaskManager:
    """Drives browsers over a list of sites with crash recovery.

    Thread safety — ``execute_command_sequence`` runs concurrently on
    pool worker threads (one pinned browser slot each):

    * thread-safe members: ``storage``, ``telemetry``, ``fault_plan``,
      the circuit breaker and crash-loop detector (all internally
      locked), and ``failed_sites`` (guarded by
      ``_failed_sites_lock``);
    * single-thread only: ``crawl()``/``get()`` (the sequential path,
      including ``_next_slot`` round-robin) and ``close()``.
    """

    def __init__(self, manager_params: ManagerParams,
                 browser_params: List[BrowserParams],
                 network: Network,
                 js_instrument_factory: Optional[Callable[..., Any]] = None,
                 telemetry: Optional[Telemetry] = None
                 ) -> None:
        self.manager_params = manager_params
        self.network = network
        self.storage = StorageController(manager_params.database_path)
        self.telemetry = coalesce(telemetry)
        self._rng = random.Random(manager_params.seed)
        self._js_instrument_factory = js_instrument_factory
        self.browsers: List[ManagedBrowser] = [
            self._launch_browser(params) for params in browser_params]
        self._next_slot = 0
        self.failed_sites: List[str] = []
        self._failed_sites_lock = threading.Lock()
        #: Optional :class:`repro.bundles.BundleRecorder`; when set,
        #: every visit is archived into an execution bundle (the
        #: network-side hook is installed by the crawl runner).
        self.recorder: Optional[Any] = None

        self.fault_plan = self._build_fault_plan()
        if self.fault_plan is not None:
            self.fault_plan.bind_clock(self.telemetry.clock)
            self.storage.fault_plan = self.fault_plan
            self.network.fault_plan = self.fault_plan
            # Flight recorder: journal every injection. The journal is
            # read through the telemetry facade at fire time, so a
            # journal attached after construction still gets events.
            self.fault_plan.on_trigger = self._journal_fault

        self._watchdog: Optional[Watchdog] = None
        if manager_params.stage_deadline_seconds is not None \
                or manager_params.stage_deadlines:
            self._watchdog = Watchdog(
                self.telemetry.clock,
                default_deadline=manager_params.stage_deadline_seconds,
                stage_deadlines=manager_params.stage_deadlines)
            self._watchdog.on_abort = self._journal_watchdog_abort

        self._breaker: Optional[CircuitBreaker] = None
        if manager_params.quarantine_after:
            self._breaker = CircuitBreaker(manager_params.quarantine_after)
            # A reopened crawl database remembers its quarantines.
            for row in self.storage.quarantined_rows():
                self._breaker.force_open(row["site_url"])

        self._crash_loop: Optional[CrashLoopDetector] = None
        if manager_params.crash_loop_threshold:
            self._crash_loop = CrashLoopDetector(
                manager_params.crash_loop_threshold,
                window_seconds=manager_params.crash_loop_window_seconds,
                cooldown_seconds=manager_params.crash_loop_cooldown_seconds)

    def _build_fault_plan(self) -> Optional[FaultPlan]:
        plan = self.manager_params.fault_plan
        probability = self.manager_params.crash_probability
        if probability > 0:
            if plan is None:
                plan = FaultPlan(seed=self.manager_params.seed)
            # The legacy Bernoulli, drawing from the manager RNG at the
            # exact position the old inline check drew — bit-identical.
            plan.add_rule(FaultRule(fault="crash", point="visit.start",
                                    probability=probability),
                          rng=self._rng)
        return plan

    # ------------------------------------------------------------------
    def _launch_browser(self, params: BrowserParams) -> ManagedBrowser:
        profile = openwpm_profile(
            params.os_name,
            "regular" if params.display_mode == "native"
            else params.display_mode,
            window_size=params.window_size,
            window_position=params.window_position)
        # Each browser writes through a handle pinning its browser_id,
        # so concurrent visits cannot cross-attribute records.
        storage_handle = self.storage.handle(params.browser_id)
        js_instrument = None
        if self._js_instrument_factory is not None and params.js_instrument:
            js_instrument = self._js_instrument_factory(
                storage=storage_handle)
        extension = OpenWPMExtension(params, storage=storage_handle,
                                     js_instrument=js_instrument,
                                     telemetry=self.telemetry)
        browser = Browser(profile, self.network,
                          client_id=f"openwpm-{params.browser_id}",
                          extension=extension, seed=params.seed)
        return ManagedBrowser(browser_id=params.browser_id, params=params,
                              browser=browser, extension=extension)

    def _restart_browser(self, slot: ManagedBrowser,
                         site_url: str = "") -> None:
        """Replace a crashed browser, preserving its identity and params.

        ``site_url`` is the URL being visited when the browser died, so
        the restart row in ``crash_history`` names the responsible site.
        A slot caught crash-looping cools down (virtual time) before
        the relaunch instead of hot-looping replacements.
        """
        self.storage.record_crash(slot.browser_id, site_url, "restart")
        self.telemetry.metrics.counter("browser_restarts").inc()
        if self._crash_loop is not None:
            cooldown = self._crash_loop.on_restart(
                slot.browser_id, self.telemetry.clock.peek())
            if cooldown > 0:
                self.telemetry.metrics.counter("browser_cooldowns").inc()
                self.telemetry.clock.advance(cooldown)
        replacement = self._launch_browser(slot.params)
        slot.browser = replacement.browser
        slot.extension = replacement.extension
        slot.crash_count += 1
        self.telemetry.metrics.gauge(
            "browser_crash_count",
            browser=str(slot.browser_id)).set(slot.crash_count)

    # ------------------------------------------------------------------
    # Fault-injection / supervision plumbing
    # ------------------------------------------------------------------
    def _journal_fault(self, point: str, url: str, rule_index: int,
                       fault: str) -> None:
        self.telemetry.journal.emit("fault", point=point, url=url,
                                    rule=rule_index, fault=fault)

    def _journal_watchdog_abort(self, exc: VisitDeadlineExceeded) -> None:
        self.telemetry.journal.emit(
            "watchdog_abort", url=exc.url, stage=exc.stage,
            elapsed=exc.elapsed, deadline=exc.deadline)

    def _inject(self, point: str, url: str) -> None:
        """Consult the fault plan at a visit choke point."""
        plan = self.fault_plan
        if plan is None:
            return
        rule = plan.check(point, url=url)
        if rule is None:
            return
        if rule.fault == "crash":
            raise BrowserCrashed(url)
        if rule.fault == "hang":
            # The visit stalls: virtual time burns and only a watchdog
            # deadline can rescue the slot.
            plan.burn(rule.seconds or DEFAULT_HANG_SECONDS)

    def is_quarantined(self, url: str) -> bool:
        return self._breaker is not None and self._breaker.is_open(url)

    def _trip_breaker(self, slot: ManagedBrowser, url: str,
                      visit_span: Any, why: str) -> bool:
        """Count one site failure; True when the site just got
        quarantined (the visit ends here with no further retries)."""
        if self._breaker is None:
            return False
        if not self._breaker.record_failure(url):
            return False
        self.storage.record_quarantine(
            url, self._breaker.failures(url), why,
            self.telemetry.clock.peek())
        tm = self.telemetry
        tm.journal.emit("site_quarantined", url=url,
                        failures=self._breaker.failures(url), why=why)
        tm.metrics.counter("sites_quarantined").inc()
        tm.metrics.counter("visits_quarantined").inc()
        # The quarantine row is now the site's single ledger entry:
        # retract any failed_visits row written earlier (e.g. a
        # lease-expiry reclaim that went terminal while this worker
        # was still hung on the site).
        self._retract_failed_rows(url)
        visit_span.set_attribute("outcome", "quarantined")
        visit_span.set_status("error:quarantined")
        return True

    def _retract_failed_rows(self, url: str) -> int:
        """Void a site's failed_visits entries (superseded verdict)."""
        retracted = self.storage.retract_failed_visits(url)
        if retracted:
            self.telemetry.journal.emit("given_up_retracted", url=url,
                                        count=retracted)
            self.telemetry.metrics.counter(
                "visits_given_up_retracted").inc(retracted)
            with self._failed_sites_lock:
                self.failed_sites = [site for site in self.failed_sites
                                     if site != url]
        return retracted

    def _retract_stale_quarantine(self, url: str) -> None:
        """Void a quarantine tripped by an already-voided attempt after
        the site was (or is being) completed by a live worker: close
        the breaker and drop the row so the ledger matches the queue's
        verdict that the site succeeded."""
        retracted = self.storage.retract_quarantine(url)
        if retracted:
            self.telemetry.journal.emit("quarantine_retracted", url=url,
                                        count=retracted)
            self.telemetry.metrics.counter(
                "sites_quarantined_retracted").inc(retracted)
        if self._breaker is not None:
            self._breaker.reset(url)

    def _record_given_up(self, browser_id: int, url: str,
                         attempts: int, reason: str) -> None:
        """The crawl-loss ledger entry for a site given up on."""
        self.storage.record_failed_visit(browser_id, url, attempts,
                                         reason)
        self.telemetry.journal.emit("visit_given_up", url=url,
                                    attempts=attempts, reason=reason)
        self.telemetry.metrics.counter("visits_given_up").inc()
        with self._failed_sites_lock:
            self.failed_sites.append(url)

    def _count_discarded(self, discarded: Dict[str, int]) -> None:
        for table, count in discarded.items():
            instrument = _DISCARD_INSTRUMENTS.get(table)
            if instrument is not None and count > 0:
                self.telemetry.metrics.counter(
                    "records_discarded", instrument=instrument).inc(count)

    # ------------------------------------------------------------------
    def get(self, url: str,
            callbacks: Optional[List[Callable]] = None,
            dwell_time: Optional[float] = None) -> None:
        """Enqueue-and-run a GET command sequence for *url*."""
        self.execute_command_sequence(CommandSequence(
            url=url, callbacks=callbacks or [], dwell_time=dwell_time))

    def execute_command_sequence(self, sequence: CommandSequence,
                                 slot: Optional[ManagedBrowser] = None,
                                 propagate_hangs: bool = False
                                 ) -> Optional[VisitResult]:
        """Run one command sequence with retry, supervision, accounting.

        Every call ends in exactly one outcome: a completed visit, a
        ``failed_visits`` row (retries exhausted), a quarantine (the
        circuit breaker opened for — or was already open on — the
        site), or a re-raised exception (an unexpected callback fault,
        or a watchdog abort with ``propagate_hangs=True`` — the
        scheduled path, where the queue owns the retry).
        """
        if slot is None:
            slot = self.browsers[self._next_slot]
            self._next_slot = (self._next_slot + 1) % len(self.browsers)

        slot.last_visit_id = None
        slot.last_given_up_site = None
        tm = self.telemetry
        journal = tm.journal
        journal.emit("visit_start", url=sequence.url,
                     browser_id=slot.browser_id)
        tm.metrics.counter("visits_attempted").inc()
        if self.is_quarantined(sequence.url):
            journal.emit("visit_quarantined", url=sequence.url,
                         reason="breaker_open")
            tm.metrics.counter("visits_quarantined").inc()
            return None
        watch = self._watchdog
        with tm.tracer.span("visit", url=sequence.url,
                            browser_id=slot.browser_id) as visit_span:
            attempts = 0
            give_up_reason = "failure_limit"
            while attempts < self.manager_params.failure_limit:
                attempts += 1
                if attempts > 1:
                    tm.metrics.counter("visits_retried").inc()
                tm.metrics.counter("visit_attempts_total").inc()
                journal.emit("visit_attempt", url=sequence.url,
                             attempt=attempts)
                try:
                    context = self.storage.begin_visit(slot.browser_id,
                                                       sequence.url)
                except sqlite3.OperationalError:
                    # Transient busy/locked before any side effect:
                    # nothing to clean up, just retry the attempt.
                    journal.emit("visit_storage_fault",
                                 url=sequence.url, attempt=attempts)
                    tm.metrics.counter("visits_storage_faults").inc()
                    give_up_reason = "storage_fault"
                    continue
                try:
                    started = watch.start() if watch else 0.0
                    self._bundle_begin(slot, sequence.url)
                    self._inject("visit.start", sequence.url)
                    dwell = sequence.dwell_time \
                        if sequence.dwell_time is not None \
                        else slot.params.dwell_time
                    self._inject("visit.page_load", sequence.url)
                    with tm.stage("page_load"):
                        result = slot.browser.visit(sequence.url,
                                                    wait=dwell)
                    if watch:
                        watch.check("page_load", started, sequence.url)
                        started = watch.start()
                    self._inject("visit.interaction", sequence.url)
                    with tm.stage("interaction"):
                        self._interact(slot, result)
                    if watch:
                        watch.check("interaction", started, sequence.url)
                        started = watch.start()
                    self._inject("visit.callbacks", sequence.url)
                    with tm.stage("callbacks"):
                        for callback in sequence.callbacks:
                            callback(slot.browser, result)
                    if watch:
                        watch.check("callbacks", started, sequence.url)
                        started = watch.start()
                    self._inject("visit.storage_commit", sequence.url)
                    if watch:
                        # Checked before the commit: a visit that hung
                        # here must be aborted, not persisted.
                        watch.check("storage_commit", started,
                                    sequence.url)
                    with tm.stage("storage_commit"):
                        self.storage.end_visit(slot.browser_id)
                    self._bundle_commit(slot, sequence.url, attempts)
                    slot.last_visit_id = context.visit_id
                    journal.emit("visit_complete", url=sequence.url,
                                 attempts=attempts,
                                 visit_id=context.visit_id)
                    tm.metrics.counter("visits_completed").inc()
                    visit_span.set_attribute("outcome", "completed")
                    visit_span.set_attribute("attempts", attempts)
                    return result
                except BrowserCrashed:
                    self._bundle_abandon(slot)
                    journal.emit("visit_crash", url=sequence.url,
                                 attempt=attempts)
                    tm.metrics.counter("visits_crashed").inc()
                    self.storage.record_crash(slot.browser_id,
                                              sequence.url, "crash")
                    self.storage.end_visit(slot.browser_id)
                    with tm.stage("browser_restart"):
                        self._restart_browser(slot, sequence.url)
                    give_up_reason = "failure_limit"
                    if self._trip_breaker(slot, sequence.url,
                                          visit_span, "crash"):
                        return None
                except VisitDeadlineExceeded:
                    # The watchdog's remedy for a hung visit: discard
                    # its partial rows, restart the slot, retry (or let
                    # the queue re-run it when the caller propagates).
                    # (The watchdog's own on_abort hook already wrote
                    # the ``watchdog_abort`` event with stage detail.)
                    self._bundle_abandon(slot)
                    journal.emit("visit_hung", url=sequence.url,
                                 attempt=attempts)
                    tm.metrics.counter("visits_hung").inc()
                    if slot.browser_id in self.storage.active_visits():
                        tm.metrics.counter("visits_aborted").inc()
                        self._count_discarded(
                            self.storage.abort_visit(slot.browser_id))
                    self.storage.record_crash(slot.browser_id,
                                              sequence.url,
                                              "watchdog_abort")
                    with tm.stage("browser_restart"):
                        self._restart_browser(slot, sequence.url)
                    give_up_reason = "deadline"
                    if self._trip_breaker(slot, sequence.url,
                                          visit_span, "hang"):
                        return None
                    if propagate_hangs:
                        journal.emit("visit_abandoned",
                                     url=sequence.url, attempt=attempts)
                        tm.metrics.counter("visits_abandoned").inc()
                        visit_span.set_attribute("outcome", "abandoned")
                        visit_span.set_status("error:deadline")
                        raise
                except NetworkFault:
                    # The fetch died but the browser is fine: close the
                    # attempt and retry without a restart.
                    self._bundle_abandon(slot)
                    journal.emit("visit_network_fault",
                                 url=sequence.url, attempt=attempts)
                    tm.metrics.counter("visits_network_faults").inc()
                    if slot.browser_id in self.storage.active_visits():
                        self.storage.end_visit(slot.browser_id)
                    give_up_reason = "network_fault"
                except Exception as exc:
                    # Unexpected fault: close the visit so the browser
                    # slot stays usable, then let queue-level retry
                    # (or the caller) deal with the site.
                    self._bundle_abandon(slot)
                    journal.emit("visit_error", url=sequence.url,
                                 attempt=attempts, error=repr(exc))
                    tm.metrics.counter("visits_errored").inc()
                    if slot.browser_id in self.storage.active_visits():
                        self.storage.end_visit(slot.browser_id)
                    raise
            tm.metrics.counter("visits_failed_exhausted").inc()
            visit_span.set_attribute("outcome", "failed_exhausted")
            visit_span.set_attribute("attempts", attempts)
            visit_span.set_status(f"error:{give_up_reason}")
            self._record_given_up(slot.browser_id, sequence.url,
                                  attempts, give_up_reason)
            if self.is_quarantined(sequence.url):
                # A concurrent trip (scheduled path) quarantined the
                # site while this attempt was retrying: that row is
                # the ledger entry, the exhaustion one would double up.
                self._retract_failed_rows(sequence.url)
            else:
                slot.last_given_up_site = sequence.url
            return None

    # ------------------------------------------------------------------
    # Execution-bundle hooks (record and replay share the protocol;
    # each crawl site is its own bundle site keyed by URL)
    # ------------------------------------------------------------------
    def _bundle_begin(self, slot: ManagedBrowser, url: str) -> None:
        begin = getattr(self.network, "begin_visit", None)
        if begin is not None:
            begin(url, url)
        if self.recorder is not None:
            self.recorder.begin_visit(url, url)
            instrument = slot.extension.js_instrument
            slot.bundle_trace_mark = len(instrument.records) \
                if instrument is not None else 0

    def _bundle_commit(self, slot: ManagedBrowser, url: str,
                       attempts: int) -> None:
        end = getattr(self.network, "end_visit", None)
        if end is not None:
            end()
        if self.recorder is not None:
            instrument = slot.extension.js_instrument
            trace = list(instrument.records[slot.bundle_trace_mark:]) \
                if instrument is not None else []
            self.recorder.end_visit(trace=trace)
            self.recorder.finish_site(
                url, verdict={"success": True, "attempts": attempts})

    def _bundle_abandon(self, slot: ManagedBrowser) -> None:
        abandon = getattr(self.network, "abandon_visit", None)
        if abandon is not None:
            abandon()
        if self.recorder is not None:
            self.recorder.abandon_visit()

    def _interact(self, slot: ManagedBrowser, result) -> None:
        """Run the configured interaction driver on the loaded page.

        'selenium' mirrors the framework's default event synthesis;
        'human' is the HLISA-style driver (Sec. 7 / Goßen et al.).
        """
        style = slot.params.interaction
        if style is None or result is None or result.top_window is None:
            return
        from repro.browser.interaction import (
            HumanLikeInteraction,
            SeleniumInteraction,
        )

        driver_cls = HumanLikeInteraction if style == "human" \
            else SeleniumInteraction
        driver = driver_cls(self._rng)
        window = result.top_window
        driver.scroll(window, 600.0)
        driver.click(window, "a")

    def crawl(self, urls: List[str],
              callbacks: Optional[List[Callable]] = None
              ) -> List[Optional[VisitResult]]:
        """Visit every URL, distributing across browser slots.

        A site whose visit raises an unexpected exception (a broken
        callback, an abandoned hang) no longer aborts the whole crawl:
        the loss lands in ``failed_visits`` and the crawl moves on —
        the same graceful degradation the scheduled path has.
        """
        results: List[Optional[VisitResult]] = []
        for url in urls:
            slot = self.browsers[self._next_slot]
            self._next_slot = (self._next_slot + 1) % len(self.browsers)
            try:
                results.append(self.execute_command_sequence(
                    CommandSequence(url=url,
                                    callbacks=list(callbacks or [])),
                    slot=slot))
            except Exception as exc:
                self._record_given_up(slot.browser_id, url, 1,
                                      repr(exc))
                results.append(None)
        return results

    def crawl_scheduled(self, urls: List[str],
                        workers: Optional[int] = None,
                        queue_path: str = ":memory:",
                        resume: bool = False,
                        callbacks: Optional[List[Callable]] = None,
                        stop_after_jobs: Optional[int] = None,
                        max_attempts: int = 2,
                        lease_seconds: float = 300.0) -> "CrawlReport":
        """Drain *urls* through the crawl scheduler.

        Each worker owns one browser slot (``workers`` therefore cannot
        exceed the number of browsers; it defaults to all of them). The
        task manager's own ``failure_limit`` retry loop stays
        authoritative for in-visit crashes; a site that exhausts it is
        reported to the queue as terminally failed and never re-queued.
        Queue-level backoff handles worker-level faults (unexpected
        exceptions, watchdog-aborted hangs, expired leases): ``claim``
        consumes one attempt, so ``max_attempts=2`` gives such sites
        exactly one backed-off re-run. Sites that still fail terminally
        at the queue level get a ``failed_visits`` row — and sites the
        circuit breaker quarantined a ``quarantined_sites`` row — so
        the crawl-loss ledger stays complete.

        With ``resume=True`` (requires a file-backed ``queue_path``)
        completed sites are skipped and only the remainder is visited.
        """
        from repro.sched import CrawlScheduler, JobFailed

        if workers is None:
            workers = len(self.browsers)
        if workers > len(self.browsers):
            raise ValueError(
                f"{workers} workers need {workers} browser slots, "
                f"only {len(self.browsers)} configured")

        scheduler = CrawlScheduler(
            queue_path, resume=resume, seed=self.manager_params.seed,
            max_attempts=max_attempts, lease_seconds=lease_seconds,
            telemetry=self.telemetry)
        scheduler.enqueue(urls)

        def handler(job: Any, worker_index: int) -> None:
            slot = self.browsers[worker_index]
            result = self.execute_command_sequence(
                CommandSequence(url=job.site_url,
                                callbacks=list(callbacks or [])),
                slot=slot, propagate_hangs=True)
            if result is None:
                if self.is_quarantined(job.site_url):
                    # The quarantined_sites row is the ledger entry.
                    raise JobFailed("quarantined", retry=False)
                # failure_limit already exhausted and the failed_visits
                # row written — do not burn queue retries on it too.
                raise JobFailed("failure_limit", retry=False)

        def record_terminal_failure(job: Any, error: str,
                                    worker_index: int) -> None:
            if error in ("failure_limit", "quarantined") \
                    or self.is_quarantined(job.site_url):
                # execute_command_sequence already kept the ledger (a
                # failed_visits or quarantined_sites row exists) — a
                # second entry would double-count the site.
                return
            slot = self.browsers[worker_index]
            self._record_given_up(slot.browser_id, job.site_url,
                                  job.attempts, error)
            if self.is_quarantined(job.site_url):
                # The breaker tripped between the check above and the
                # write: the quarantine row supersedes this one.
                self._retract_failed_rows(job.site_url)

        def discard_result(job: Any, worker_index: int) -> None:
            # This attempt's verdict was voided by a lost lease and the
            # site will be re-run: take back whatever it recorded so
            # the site isn't double-counted. Either the visit committed
            # (delete the duplicate-to-be copy) or retry exhaustion
            # wrote a failed_visits row (retract it — the re-run may
            # complete or quarantine the site instead).
            slot = self.browsers[worker_index]
            if slot.last_visit_id is not None:
                self.telemetry.journal.emit(
                    "visit_discarded", url=job.site_url,
                    visit_id=slot.last_visit_id)
                self._count_discarded(
                    self.storage.delete_visit(slot.last_visit_id))
                slot.last_visit_id = None
                self.telemetry.metrics.counter("visits_discarded").inc()
            if slot.last_given_up_site == job.site_url:
                slot.last_given_up_site = None
                self._retract_failed_rows(job.site_url)
            if self.is_quarantined(job.site_url) \
                    and scheduler.queue.job_status(job.job_id) \
                    == "completed":
                # The breaker tripped on this voided attempt after a
                # live worker had already completed the site: the
                # quarantine verdict is stale, take it back.
                self._retract_stale_quarantine(job.site_url)

        def record_completion(job: Any, worker_index: int) -> None:
            if self.is_quarantined(job.site_url):
                # A hung sibling attempt tripped the breaker while this
                # visit was in flight — the queue just accepted the
                # completion, so the quarantine is stale.
                self._retract_stale_quarantine(job.site_url)

        try:
            return scheduler.run(
                handler, workers=workers,
                stop_after_jobs=stop_after_jobs,
                on_terminal_failure=record_terminal_failure,
                on_completed=record_completion,
                on_discard_result=discard_result,
                fault_plan=self.fault_plan)
        finally:
            scheduler.close()

    def close(self) -> None:
        """Persist the telemetry snapshot alongside the crawl, then close."""
        if self.telemetry.enabled:
            self.storage.persist_telemetry(self.telemetry.snapshot())
        self.telemetry.journal.flush()
        self.storage.close()

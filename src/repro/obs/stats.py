"""Crawl health / loss-accounting reports (``python -m repro stats``).

The paper shows OpenWPM loses data silently; this module makes loss
*visible* and *checkable*. A report reconciles two independent sources:

* the telemetry counters the crawl recorded as it ran (persisted in the
  ``telemetry`` table, or read live from a :class:`Telemetry`), and
* the crawl data itself (``site_visits``, ``javascript``,
  ``http_requests``, ``javascript_cookies``, ``crash_history``,
  ``failed_visits``).

Every row of the loss funnel — enqueued → attempted → completed /
crashed / given up — is cross-checked; a crawl whose books don't
balance is exactly the "gullible tool" failure mode the paper warns
about, so the CLI exits non-zero on mismatch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.telemetry import Telemetry


def _metric_value(metrics: List[Dict[str, Any]], name: str,
                  **labels: str) -> float:
    wanted = {str(k): str(v) for k, v in labels.items()}
    for metric in metrics:
        if metric["name"] == name and (metric.get("labels") or {}) == wanted:
            return float(metric.get("value") or 0.0)
    return 0.0


def _has_metric(metrics: List[Dict[str, Any]], name: str) -> bool:
    return any(metric["name"] == name for metric in metrics)


def _table_count(storage: Any, table: str, where: str = "",
                 params: tuple = ()) -> int:
    sql = f"SELECT COUNT(*) AS n FROM {table}"  # noqa: S608 (fixed names)
    if where:
        sql += f" WHERE {where}"
    return int(storage.query(sql, params)[0]["n"])


def build_crawl_report(storage: Any,
                       telemetry: Optional[Telemetry] = None
                       ) -> Dict[str, Any]:
    """Assemble the loss-accounting report for one crawl database.

    ``telemetry`` overrides the stored snapshot with live metrics (used
    mid-crawl); by default metrics come from the ``telemetry`` table.
    """
    if telemetry is not None and telemetry.enabled:
        metrics = telemetry.metrics.snapshot()
        spans = telemetry.tracer.snapshot()
    else:
        metrics = storage.telemetry_metrics()
        spans = storage.telemetry_spans()

    # --- database-side truth -----------------------------------------
    db = {
        "site_visit_rows": _table_count(storage, "site_visits"),
        "distinct_sites_visited": int(storage.query(
            "SELECT COUNT(DISTINCT site_url) AS n FROM site_visits"
        )[0]["n"]),
        "crash_rows": _table_count(storage, "crash_history",
                                   "action = 'crash'"),
        "restart_rows": _table_count(storage, "crash_history",
                                     "action = 'restart'"),
        "failed_visit_rows": _table_count(storage, "failed_visits"),
        "javascript_rows": _table_count(storage, "javascript"),
        "http_request_rows": _table_count(storage, "http_requests"),
        "cookie_rows": _table_count(storage, "javascript_cookies"),
        "content_rows": _table_count(storage, "content"),
    }
    drop_reasons: Dict[str, int] = {}
    for row in storage.query(
            "SELECT reason, COUNT(*) AS n FROM failed_visits "
            "GROUP BY reason ORDER BY n DESC"):
        drop_reasons[row["reason"] or "unknown"] = int(row["n"])

    # --- telemetry-side counters -------------------------------------
    tele = {
        "visits_attempted": _metric_value(metrics, "visits_attempted"),
        "visits_completed": _metric_value(metrics, "visits_completed"),
        "visits_crashed": _metric_value(metrics, "visits_crashed"),
        "visits_retried": _metric_value(metrics, "visits_retried"),
        "visits_failed_exhausted": _metric_value(
            metrics, "visits_failed_exhausted"),
        "visit_attempts_total": _metric_value(metrics,
                                              "visit_attempts_total"),
        "browser_restarts": _metric_value(metrics, "browser_restarts"),
        "records_js": _metric_value(metrics, "records_written",
                                    instrument="js"),
        "records_http": _metric_value(metrics, "records_written",
                                      instrument="http"),
        "records_cookie": _metric_value(metrics, "records_written",
                                        instrument="cookie"),
        "scripts_collected": _metric_value(metrics, "scripts_collected"),
        "instrumentation_blocked": _metric_value(
            metrics, "instrumentation_blocked"),
        "integrity_probe_failures": _metric_value(
            metrics, "integrity_probe_failures"),
        "recording_integrity": _metric_value(metrics,
                                             "recording_integrity"),
        "has_integrity_gauge": _has_metric(metrics, "recording_integrity"),
    }

    # --- stage latency -----------------------------------------------
    stages = []
    for metric in metrics:
        if metric["kind"] == "histogram" \
                and metric["name"] == "stage_seconds":
            count = int(metric.get("count") or 0)
            total = float(metric.get("sum") or 0.0)
            stages.append({
                "stage": (metric.get("labels") or {}).get("stage", ""),
                "count": count,
                "total_seconds": total,
                "mean_seconds": total / count if count else 0.0,
            })
    stages.sort(key=lambda s: -s["total_seconds"])

    # --- reconciliation ----------------------------------------------
    has_telemetry = bool(metrics)
    checks: List[Dict[str, Any]] = []

    def check(name: str, lhs: float, rhs: float) -> None:
        checks.append({"check": name, "telemetry": lhs, "database": rhs,
                       "ok": int(lhs) == int(rhs)})

    if has_telemetry:
        check("visits_attempted == completed + failed_exhausted",
              tele["visits_attempted"],
              tele["visits_completed"] + tele["visits_failed_exhausted"])
        check("visit_attempts_total == completed + crashed",
              tele["visit_attempts_total"],
              tele["visits_completed"] + tele["visits_crashed"])
        check("visit_attempts_total == site_visits rows",
              tele["visit_attempts_total"], db["site_visit_rows"])
        check("visits_crashed == crash_history rows",
              tele["visits_crashed"], db["crash_rows"])
        check("visits_failed_exhausted == failed_visits rows",
              tele["visits_failed_exhausted"], db["failed_visit_rows"])
        check("records_written{js} == javascript rows",
              tele["records_js"], db["javascript_rows"])
        check("records_written{http} == http_requests rows",
              tele["records_http"], db["http_request_rows"])
        check("records_written{cookie} == javascript_cookies rows",
              tele["records_cookie"], db["cookie_rows"])

    return {
        "has_telemetry": has_telemetry,
        "database": db,
        "telemetry": tele,
        "drop_reasons": drop_reasons,
        "stages": stages,
        "span_count": len(spans),
        "reconciliation": checks,
        "reconciled": all(c["ok"] for c in checks),
    }


def render_crawl_report(report: Dict[str, Any]) -> str:
    """The human-readable crawl health report."""
    db = report["database"]
    tele = report["telemetry"]
    lines: List[str] = []
    push = lines.append

    push("Crawl health report")
    push("===================")
    push("")
    push("Loss accounting (sites)")
    attempted = int(tele["visits_attempted"])
    completed = int(tele["visits_completed"])
    failed = int(tele["visits_failed_exhausted"])
    if report["has_telemetry"]:
        rate = (completed / attempted * 100.0) if attempted else 0.0
        push(f"  enqueued ............... {attempted}")
        push(f"  completed .............. {completed}  ({rate:.1f}%)")
        push(f"  given up (exhausted) ... {failed}")
        push(f"  crashes (retried) ...... {int(tele['visits_crashed'])}"
             f"  (retries: {int(tele['visits_retried'])}, "
             f"restarts: {int(tele['browser_restarts'])})")
    else:
        push("  (no telemetry snapshot in this database — "
             "database-side view only)")
    push(f"  site_visits rows ....... {db['site_visit_rows']}"
         f"  (distinct sites: {db['distinct_sites_visited']})")
    push("")

    push("Records written")
    push(f"  javascript ............. {db['javascript_rows']}")
    push(f"  http_requests .......... {db['http_request_rows']}")
    push(f"  javascript_cookies ..... {db['cookie_rows']}")
    push(f"  content (archived) ..... {db['content_rows']}"
         f"  (scripts collected: {int(tele['scripts_collected'])})")
    push("")

    push("Recording integrity")
    if tele["has_integrity_gauge"]:
        healthy = tele["recording_integrity"] >= 1.0 \
            and tele["integrity_probe_failures"] == 0
        state = "OK" if healthy else "COMPROMISED"
        push(f"  gauge .................. "
             f"{int(tele['recording_integrity'])} ({state})")
        push(f"  probe failures ......... "
             f"{int(tele['integrity_probe_failures'])}")
    else:
        push("  (no JS instrument in this crawl — gauge not set)")
    push(f"  instrumentation blocked  "
         f"{int(tele['instrumentation_blocked'])}")
    push("")

    if report["drop_reasons"]:
        push("Drop reasons (failed_visits)")
        for reason, count in report["drop_reasons"].items():
            push(f"  {reason} ... {count} site(s)")
        push("")

    if report["stages"]:
        push("Stage latency (virtual seconds)")
        push("  stage              count      total       mean")
        for stage in report["stages"]:
            push(f"  {stage['stage']:<18} {stage['count']:>5} "
                 f"{stage['total_seconds']:>10.3f} "
                 f"{stage['mean_seconds']:>10.4f}")
        push("")

    if report["reconciliation"]:
        push("Reconciliation (telemetry vs database)")
        for entry in report["reconciliation"]:
            mark = "OK " if entry["ok"] else "FAIL"
            push(f"  [{mark}] {entry['check']}: "
                 f"{int(entry['telemetry'])} vs {int(entry['database'])}")
        push("")
        push("BOOKS BALANCE" if report["reconciled"]
             else "BOOKS DO NOT BALANCE — crawl data is not trustworthy")
    return "\n".join(lines)

"""The JavaScript corpus: detectors, trackers, fingerprinters, decoys.

Every script here is genuine JavaScript executed by the engine during a
crawl. The disguise levels map to how the paper's two analysis methods
see them:

================  ==============  ===============
script form       static analysis dynamic analysis
================  ==============  ===============
plain             caught          caught
minified          caught          caught
hex-obfuscated    caught (after   caught
                  deobfuscation)
concat-obfuscated missed          caught
lazy (not run)    caught          missed
decoy ('webdriver'loose pattern   not a detector
 as a UA token)   only (FP)
iterator          missed          honey-property
                                  'inconclusive'
================  ==============  ===============
"""

from __future__ import annotations

import hashlib
from typing import List

# ---------------------------------------------------------------------------
# Selenium / webdriver detectors
# ---------------------------------------------------------------------------

_PLAIN_DETECTOR = """
(function () {
    var bot = false;
    if (navigator.webdriver === true) { bot = true; }
    if (navigator["webdriver"]) { bot = true; }
    if (window.screen.availTop === 0 && window.screen.availLeft === 0) {
        bot = bot || false;
    }
    if (bot) { window._botDetected = true; }
    navigator.sendBeacon("https://__PROVIDER__/report?bot="
        + (bot ? "1" : "0") + "&site=" + location.host);
})();
"""

_MINIFIED_DETECTOR = (
    '(function(){var b=false;if(navigator.webdriver===true){b=true;}'
    'if(navigator["webdriver"]){b=true;}if(b){window._botDetected=true;}'
    'navigator.sendBeacon("https://__PROVIDER__/report?bot="+(b?"1":"0")'
    '+"&site="+location.host);})();'
)

#: Hex escapes decode to 'webdriver'; the scan's preprocessing step
#: recovers ``navigator["webdriver"]``, so static analysis still
#: catches this one (the deobfuscation win of Sec. 4.1.3).
_HEX_DETECTOR = """
(function () {
    var bot = navigator["\\x77\\x65\\x62\\x64\\x72\\x69\\x76\\x65\\x72"] === true;
    if (bot) { window._botDetected = true; }
    navigator.sendBeacon("https://__PROVIDER__/report?bot="
        + (bot ? "1" : "0") + "&site=" + location.host);
})();
"""

#: Dynamic property-name construction: invisible to static patterns.
_CONCAT_DETECTOR = """
(function () {
    var parts = ["web", "dri", "ver"];
    var name = parts[0] + parts[1] + parts[2];
    var bot = navigator[name] === true;
    if (bot) { window._botDetected = true; }
    navigator.sendBeacon("https://__PROVIDER__/report?bot="
        + (bot ? "1" : "0") + "&site=" + location.host);
})();
"""

#: Present in the source but only runs on user interaction the crawler
#: never performs — found by static analysis, silent dynamically.
_LAZY_DETECTOR = """
document.addEventListener("mousemove", function () {
    if (navigator.webdriver === true) {
        window._botDetected = true;
        navigator.sendBeacon("https://__PROVIDER__/report?bot=1&site="
            + location.host);
    }
});
"""

_FORMS = {
    "plain": _PLAIN_DETECTOR,
    "minified": _MINIFIED_DETECTOR,
    "hex": _HEX_DETECTOR,
    "obfuscated": _CONCAT_DETECTOR,
    "lazy": _LAZY_DETECTOR,
}


def selenium_detector(provider_domain: str, form: str = "plain") -> str:
    """A Selenium/webdriver detector reporting to *provider_domain*."""
    template = _FORMS.get(form)
    if template is None:
        raise ValueError(f"unknown detector form {form!r}")
    return template.replace("__PROVIDER__", provider_domain)


# ---------------------------------------------------------------------------
# OpenWPM-specific detectors (Table 6)
# ---------------------------------------------------------------------------

def openwpm_detector(provider_domain: str, probes: tuple,
                     obfuscated: bool = False) -> str:
    """A script probing OpenWPM instrument residue properties."""
    checks: List[str] = []
    for prop in probes:
        if obfuscated:
            # Split the name so static patterns cannot see it.
            head, tail = prop[: len(prop) // 2], prop[len(prop) // 2:]
            checks.append(
                f'if (typeof window["{head}" + "{tail}"] !== "undefined") '
                "{ owpm = true; }")
        else:
            checks.append(
                f'if (typeof window.{prop} !== "undefined") '
                "{ owpm = true; }")
    body = "\n    ".join(checks)
    return f"""
(function () {{
    var owpm = false;
    {body}
    if (navigator.webdriver === true) {{ owpm = true; }}
    if (owpm) {{ window._botDetected = true; }}
    navigator.sendBeacon("https://{provider_domain}/report?owpm="
        + (owpm ? "1" : "0") + "&site=" + location.host);
}})();
"""


# ---------------------------------------------------------------------------
# Non-detector scripts
# ---------------------------------------------------------------------------

#: The static-analysis false positive: 'webdriver' appears only as a
#: user-agent keyword (matches the loose pattern, none of the strict
#: ones — the iteration the paper describes in Appx. B).
DECOY_UA_SCRIPT = """
(function () {
    var botTokens = ["webdriver", "selenium", "phantomjs", "headless"];
    var ua = navigator.userAgent.toLowerCase();
    var hit = false;
    for (var i = 0; i < botTokens.length; i++) {
        if (ua.indexOf(botTokens[i]) >= 0) { hit = true; }
    }
    if (hit) { window._uaFlagged = true; }
})();
"""

#: A browser fingerprinting script that iterates navigator/window: it
#: touches navigator.webdriver only as part of the sweep — the case the
#: honey properties disambiguate (Sec. 4.1.3).
ITERATOR_FINGERPRINTER = """
(function () {
    var fp = [];
    for (var key in navigator) {
        fp.push(key + "=" + navigator[key]);
    }
    for (var key2 in window.screen) {
        fp.push("screen." + key2 + "=" + window.screen[key2]);
    }
    navigator.sendBeacon("https://__PROVIDER__/fp?n=" + fp.length
        + "&site=" + location.host);
})();
"""


def iterator_fingerprinter(provider_domain: str) -> str:
    return ITERATOR_FINGERPRINTER.replace("__PROVIDER__", provider_domain)


#: Tag of a network that does NOT act on bot signals: sets a long-lived
#: first-party uid cookie and fires its pixel unconditionally.
TRACKER_SCRIPT = """
(function () {
    var uid = "u" + Math.floor(Math.random() * 1000000000) + "x"
        + Math.floor(Math.random() * 1000000000);
    document.cookie = "__TRACK_NAME__=" + uid + "; Max-Age=31536000";
    var img = new Image();
    img.src = "https://__PROVIDER__/pixel?uid=" + uid
        + "&site=" + location.host;
})();
"""

#: Tag of a *cloaking* network: still runs for bots, but withholds the
#: identifying uid — so traffic volume barely changes while the
#: tracking-cookie yield collapses (the Table 8 vs Table 10 asymmetry).
GATED_TRACKER_SCRIPT = """
(function () {
    var bot = window._botDetected === true;
    var uid = "u" + Math.floor(Math.random() * 1000000000) + "x"
        + Math.floor(Math.random() * 1000000000);
    var img = new Image();
    img.src = "https://__PROVIDER__/pixel?uid=" + (bot ? "denied" : uid)
        + "&bot=" + (bot ? "1" : "0") + "&site=" + location.host;
})();
"""


def tracker_script(provider_domain: str, gated: bool = False) -> str:
    name = "_trk_" + hashlib.sha256(
        provider_domain.encode()).hexdigest()[:6]
    template = GATED_TRACKER_SCRIPT if gated else TRACKER_SCRIPT
    return (template
            .replace("__PROVIDER__", provider_domain)
            .replace("__TRACK_NAME__", name))


#: Harmless utility script (jQuery-like) served by CDNs.
BENIGN_LIBRARY = """
(function () {
    window.$lib = {
        version: "3.6.0",
        select: function (selector) {
            return document.querySelector(selector);
        },
        each: function (items, fn) {
            for (var i = 0; i < items.length; i++) { fn(items[i], i); }
        }
    };
})();
"""

#: First-party analytics beacon (no detection, no tracking cookie).
FIRST_PARTY_ANALYTICS = """
(function () {
    var payload = "w=" + window.innerWidth + "&h=" + window.innerHeight;
    navigator.sendBeacon("/analytics/collect?" + payload);
})();
"""


#: DOM-probe variants: each accesses some APIs in the top window and
#: some through a freshly created iframe's contentWindow *in the same
#: tick* — the channel vanilla OpenWPM does not observe (Fig. 6). The
#: per-API top/iframe mix across variants produces Fig. 6's per-symbol
#: coverage spread (Screen.top mostly top-window; Screen.availLeft
#: mostly in-iframe).
_DOM_PROBE_TEMPLATE = """
(function () {
    %s
    var holder = document.createElement("div");
    document.body.appendChild(holder);
    var ifr = document.createElement("iframe");
    holder.appendChild(ifr);
    var w = ifr.contentWindow;
    %s
})();
"""

_DOM_PROBE_VARIANTS = [
    (["screen.top", "screen.width", "screen.availLeft"],
     ["w.screen.availLeft", "w.navigator.userAgent"]),
    (["screen.top", "navigator.userAgent"],
     ["w.screen.availLeft", "w.screen.availTop", "w.screen.height"]),
    (["screen.top", "screen.availTop"],
     ["w.screen.availLeft", "w.navigator.platform"]),
    (["screen.top", "screen.height", "navigator.platform"],
     ["w.screen.availLeft", "w.screen.width"]),
    (["screen.top"],
     ["w.screen.availLeft", "w.screen.availTop", "w.navigator.userAgent",
      "w.screen.colorDepth"]),
]


def dom_probe_script(variant: int) -> str:
    top_calls, frame_calls = _DOM_PROBE_VARIANTS[
        variant % len(_DOM_PROBE_VARIANTS)]
    return _DOM_PROBE_TEMPLATE % (
        ";\n    ".join(top_calls) + ";",
        ";\n    ".join(frame_calls) + ";")


def first_party_detector(vendor_name: str) -> str:
    """A first-party bot-management script (Akamai/Incapsula/... style).

    First-party vendors feed their verdict to the site itself (e.g., to
    throttle, block, or serve CAPTCHAs) — modelled by a same-origin
    beacon plus the shared client-side flag.
    """
    return f"""
/* {vendor_name} bot manager */
(function () {{
    var score = 0;
    if (navigator.webdriver === true) {{ score = score + 10; }}
    if (window.screen.availTop === 0) {{ score = score + 1; }}
    if (window.outerWidth === 0) {{ score = score + 1; }}
    var bot = score >= 10;
    if (bot) {{ window._botDetected = true; }}
    navigator.sendBeacon("/{vendor_name.lower()}/telemetry?score=" + score
        + "&bot=" + (bot ? "1" : "0"));
}})();
"""

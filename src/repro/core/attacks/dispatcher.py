"""Event-dispatcher attacks (paper Listing 2, Sec. 5.1.1 / 5.2).

The vanilla JS instrument ships records through
``document.dispatchEvent`` with a random event ID, looked up dynamically
at call time. A page script can therefore:

1. temporarily replace ``dispatchEvent``, trigger any instrumented API,
   and read the random ID off the intercepted event;
2. re-replace ``dispatchEvent`` with a filter that swallows exactly the
   instrument's events (recording is now off, the page keeps working);
3. forge arbitrary records by dispatching its own events under the
   stolen ID through the saved original dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.browser.profiles import BrowserProfile, openwpm_profile
from repro.core.lab import visit_with_scripts

#: Step I of Listing 2: steal the instrument's random event ID.
GRAB_ID_SNIPPET = """
var dispatch_fn = document.dispatchEvent;
var grabbedId = null;
document.dispatchEvent = function (event) {
    grabbedId = event.type;
    document.dispatchEvent = dispatch_fn;
};
// Perform an action to grab the ID
navigator.userAgent;
"""

#: Steps I+II: swallow every instrument event from now on.
BLOCK_RECORDING_ATTACK = GRAB_ID_SNIPPET + """
var stolenId = grabbedId;
document.dispatchEvent = function (event) {
    if (event.type != stolenId) {
        dispatch_fn.call(document, event); // Dispatch unrelated events
    }
};
"""

#: Steps I+III: inject a fabricated record under the stolen ID.
FAKE_INJECTION_ATTACK = GRAB_ID_SNIPPET + """
var stolenId = grabbedId;
dispatch_fn.call(document, new CustomEvent(stolenId, {detail: {
    symbol: "__FAKE_SYMBOL__",
    operation: "call",
    value: "__FAKE_VALUE__",
    arguments: "__FAKE_ARGS__",
    callStack: "",
    scriptUrl: "__FAKE_SCRIPT_URL__"
}}));
"""

#: Benign activity executed after the attack; recording of these calls
#: is the success criterion.
PROBE_ACTIVITY = """
navigator.platform;
screen.width;
navigator.userAgent;
"""


@dataclass
class AttackOutcome:
    """Result of one attack run."""

    attack: str
    succeeded: bool
    #: Symbols recorded by the instrument during the whole visit.
    recorded_symbols: List[str] = field(default_factory=list)
    #: Records (dicts) matching attacker-controlled content, if any.
    forged_records: List[dict] = field(default_factory=list)
    details: str = ""


def normalized_symbols(instrument: Any) -> set:
    """Recorded symbols, case-folded.

    The vanilla instrument logs instance-style symbols
    (``navigator.userAgent``); the hardened one logs interface-style
    (``Navigator.userAgent``). Case-folding makes them comparable.
    """
    return {symbol.lower() for symbol in instrument.symbols_accessed()}


def _make_extension(stealth: bool, storage: Any = None,
                    telemetry: Any = None):
    from repro.openwpm.config import BrowserParams
    from repro.openwpm.extension import OpenWPMExtension

    js_instrument = None
    if stealth:
        from repro.core.hardening.stealth import StealthJSInstrument

        js_instrument = StealthJSInstrument(storage=storage)
    return OpenWPMExtension(BrowserParams(stealth=stealth),
                            storage=storage, js_instrument=js_instrument,
                            telemetry=telemetry)


def run_block_recording_attack(profile: Optional[BrowserProfile] = None,
                               stealth: bool = False,
                               telemetry: Any = None) -> AttackOutcome:
    """Run Listing 2 (turn recording off) and check what got recorded.

    Success means the probe activity executed *after* the attack left no
    records — data recording was silently disabled. Pass an enabled
    ``telemetry`` to additionally exercise the end-of-visit recording-
    integrity probe: the attack flips the ``recording_integrity`` gauge.
    """
    extension = _make_extension(stealth, telemetry=telemetry)
    profile = profile or openwpm_profile("ubuntu", "regular")
    _, result = visit_with_scripts(
        profile, [BLOCK_RECORDING_ATTACK, PROBE_ACTIVITY],
        extension=extension)
    symbols = extension.js_instrument.symbols_accessed()
    probe_symbols = {"navigator.platform", "screen.width"}
    missed = probe_symbols - normalized_symbols(extension.js_instrument)
    return AttackOutcome(
        attack="block-recording",
        succeeded=missed == probe_symbols,
        recorded_symbols=symbols,
        details=f"probe symbols missing from record: {sorted(missed)}")


def run_fake_injection_attack(profile: Optional[BrowserProfile] = None,
                              stealth: bool = False,
                              fake_symbol: str = "window.FakeAPI",
                              fake_script_url: str =
                              "https://innocent.example/clean.js"
                              ) -> AttackOutcome:
    """Run Listing 2 variant III (inject fake data).

    Success means a record with attacker-chosen symbol and script URL
    shows up in the instrument's stream. Note what stays out of the
    attacker's reach: the backend assigns ``top_level_url``/``visit_id``
    itself (RQ6), so forgeries are confined to the visited site.
    """
    extension = _make_extension(stealth)
    profile = profile or openwpm_profile("ubuntu", "regular")
    source = (FAKE_INJECTION_ATTACK
              .replace("__FAKE_SYMBOL__", fake_symbol)
              .replace("__FAKE_VALUE__", "forged-value")
              .replace("__FAKE_ARGS__", "forged-args")
              .replace("__FAKE_SCRIPT_URL__", fake_script_url))
    _, result = visit_with_scripts(profile, [source], extension=extension)
    forged = [
        {"symbol": record.symbol, "script_url": record.script_url,
         "value": record.value}
        for record in extension.js_instrument.records
        if record.symbol == fake_symbol]
    return AttackOutcome(
        attack="fake-injection",
        succeeded=bool(forged),
        recorded_symbols=extension.js_instrument.symbols_accessed(),
        forged_records=forged,
        details=f"{len(forged)} forged record(s) accepted")

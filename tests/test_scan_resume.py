"""Resume edge cases for the corpus-backed scan pipeline.

Covers the failure modes the content-addressed redesign introduced:
old-format sidecars that store raw sources instead of hashes, corpora
missing a referenced body, and multi-worker runs that must converge on
the same corpus as a single-worker run.
"""

import json
import os
import sqlite3

import pytest

from repro.core.scan import ScanPipeline
from repro.core.scan.classify import VisitEvidence, classify_site
from repro.core.scan.results_store import (
    ScanResultStore,
    ScanStoreFormatError,
    store_path_for,
)
from repro.corpus import MissingScriptError, ScriptCorpus, corpus_path_for
from repro.web import build_world


def _write_v1_sidecar(path: str) -> None:
    """Hand-build a pre-corpus sidecar: raw sources, no format marker."""
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE scan_results ("
                 "domain TEXT PRIMARY KEY, evidence_json TEXT NOT NULL)")
    conn.execute(
        "INSERT INTO scan_results (domain, evidence_json) VALUES (?, ?)",
        ("legacy.test", json.dumps([{
            "page_url": "https://www.legacy.test/",
            "scripts": [["https://www.legacy.test/a.js",
                         "if (navigator.webdriver) {}"]],
            "webdriver_accessors": [], "residue_accessors": {},
            "honey_hits": {}}])))
    conn.commit()
    conn.close()


@pytest.fixture(scope="module")
def world():
    return build_world(site_count=12, seed=5)


class TestOldFormatSidecar:
    def test_store_refuses_v1_sidecar(self, tmp_path):
        path = str(tmp_path / "q.queue.scan")
        _write_v1_sidecar(path)
        with pytest.raises(ScanStoreFormatError,
                           match="raw-source format"):
            ScanResultStore(path)

    def test_store_refuses_unknown_format_number(self, tmp_path):
        path = str(tmp_path / "q.queue.scan")
        store = ScanResultStore(path)
        store.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE scan_store_meta SET value = '99' "
                     "WHERE key = 'format'")
        conn.commit()
        conn.close()
        with pytest.raises(ScanStoreFormatError, match="format 99"):
            ScanResultStore(path)

    def test_pipeline_resume_refuses_v1_sidecar(self, world, tmp_path):
        queue = str(tmp_path / "legacy.queue")
        pipeline = ScanPipeline(world, client_id="resume-test")
        pipeline.run(site_limit=2, visit_subpages=False, queue_path=queue)
        pipeline.corpus.close()
        # Rewrite the sidecar in the old format, as a pre-corpus
        # checkout would have left it.
        sidecar = store_path_for(queue)
        os.remove(sidecar)
        _write_v1_sidecar(sidecar)
        with pytest.raises(ScanStoreFormatError):
            ScanPipeline(world, client_id="resume-test-2").run(
                site_limit=2, visit_subpages=False,
                queue_path=queue, resume=True)

    def test_fresh_store_is_stamped_v2(self, tmp_path):
        path = str(tmp_path / "q.queue.scan")
        ScanResultStore(path).close()
        # Reopening must succeed: marker present and current.
        ScanResultStore(path).close()


class TestMissingCorpusBody:
    def test_resume_with_gutted_corpus_raises(self, world, tmp_path):
        queue = str(tmp_path / "gutted.queue")
        pipeline = ScanPipeline(world, client_id="resume-test")
        dataset = pipeline.run(site_limit=3, visit_subpages=False,
                               queue_path=queue)
        assert dataset.unique_scripts  # the run did collect scripts
        pipeline.corpus.close()
        # Wipe the corpus but leave queue + sidecar intact: the resume
        # must refuse to classify against unresolvable hashes.
        gutted = ScriptCorpus(corpus_path_for(queue))
        gutted.clear()
        gutted.close()
        with pytest.raises(RuntimeError,
                           match="missing from the corpus"):
            ScanPipeline(world, client_id="resume-test-2").run(
                site_limit=3, visit_subpages=False,
                queue_path=queue, resume=True)

    def test_classify_with_unknown_hash_raises(self):
        corpus = ScriptCorpus()
        evidence = VisitEvidence(page_url="https://www.x.test/")
        evidence.scripts = [("https://www.x.test/a.js", "0" * 64)]
        with pytest.raises(MissingScriptError):
            classify_site("x.test", [evidence], corpus=corpus)

    def test_resume_missing_sidecar_evidence_raises(self, world,
                                                    tmp_path):
        queue = str(tmp_path / "partial.queue")
        pipeline = ScanPipeline(world, client_id="resume-test")
        pipeline.run(site_limit=3, visit_subpages=False, queue_path=queue)
        pipeline.corpus.close()
        store = ScanResultStore(store_path_for(queue))
        victim = store.domains()[0]
        store.delete(victim)
        store.close()
        with pytest.raises(RuntimeError, match="no persisted evidence"):
            ScanPipeline(world, client_id="resume-test-2").run(
                site_limit=3, visit_subpages=False,
                queue_path=queue, resume=True)


class TestMultiWorkerDeterminism:
    def test_worker_count_does_not_change_corpus_or_tables(
            self, world, tmp_path):
        datasets = {}
        for workers in (1, 3):
            queue = str(tmp_path / f"w{workers}.queue")
            pipeline = ScanPipeline(world, client_id="mw-test")
            datasets[workers] = pipeline.run(
                visit_subpages=True, workers=workers, queue_path=queue)
        one, three = datasets[1], datasets[3]
        try:
            assert three.corpus.occurrence_rows() \
                == one.corpus.occurrence_rows()
            assert three.corpus.hashes() == one.corpus.hashes()
            assert three.unique_scripts == one.unique_scripts
            assert three.table5() == one.table5()
            assert three.table11() == one.table11()
            # Refcount discipline holds under contention: every body's
            # refcount equals its live occurrence count in both runs.
            for dataset in (one, three):
                stats = dataset.corpus.stats()
                assert stats["unique_scripts"] == stats["stored_bodies"]
        finally:
            one.corpus.close()
            three.corpus.close()

    def test_resume_after_multi_worker_run_restores_everything(
            self, world, tmp_path):
        queue = str(tmp_path / "mw-resume.queue")
        pipeline = ScanPipeline(world, client_id="mw-test")
        first = pipeline.run(visit_subpages=True, workers=3,
                             queue_path=queue)
        table5 = first.table5()
        rows = first.corpus.occurrence_rows()
        first.corpus.close()
        resumed = ScanPipeline(world, client_id="mw-test-2").run(
            visit_subpages=True, workers=3, queue_path=queue,
            resume=True)
        try:
            assert resumed.table5() == table5
            assert resumed.corpus.occurrence_rows() == rows
        finally:
            resumed.corpus.close()

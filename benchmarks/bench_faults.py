"""Fault-injection subsystem: supervision overhead + chaos throughput.

Two properties worth guarding:

* arming the defenses — an (empty) fault plan consulted at every choke
  point, a watchdog checking every visit stage, a circuit breaker
  counting failures, a crash-loop detector watching restarts — must be
  close to free on a healthy crawl (the acceptance bound is < 5%
  wall-clock overhead vs the unsupervised baseline);
* a crawl under an actively hostile fault plan must still drain at a
  usable rate — the chaos-throughput section documents what a
  deliberately unreliable web costs.
"""

import gc
import time

from conftest import BENCH_SEED, report

FAULT_SITES = 800
SUPERVISION_OVERHEAD_LIMIT_PCT = 5.0


def _timed_crawl(site_count, supervised, **kwargs):
    from repro.obs.runner import run_telemetry_crawl
    from repro.obs.telemetry import Telemetry

    if supervised:
        from repro.faults import FaultPlan

        kwargs.setdefault("fault_plan", FaultPlan(seed=BENCH_SEED))
        kwargs.setdefault("stage_deadline", 100.0)
        kwargs.setdefault("quarantine_after", 10)
        kwargs.setdefault("crash_loop_threshold", 50)
    gc.collect()
    start = time.perf_counter()
    result = run_telemetry_crawl(
        site_count=site_count, seed=BENCH_SEED, browsers=2,
        crash_probability=0.05, telemetry=Telemetry.disabled(),
        **kwargs)
    elapsed = time.perf_counter() - start
    visits = result.storage.query(
        "SELECT COUNT(*) AS n FROM site_visits")[0]["n"]
    result.close()
    return elapsed, visits


def measure_supervision_overhead(site_count=FAULT_SITES, rounds=3):
    """Interleaved best-of-N: plain crawl vs fully armed defenses.

    The supervised run executes the identical crawl (the empty plan
    fires nothing, the watchdog never trips) plus every supervision
    hook, so the wall-clock gap *is* the subsystem's overhead.
    """
    best = {"plain": float("inf"), "supervised": float("inf")}
    visits = {}
    _timed_crawl(site_count, supervised=True)  # warm-up, discarded
    for _ in range(rounds):
        for mode, supervised in (("plain", False), ("supervised", True)):
            elapsed, seen = _timed_crawl(site_count, supervised)
            best[mode] = min(best[mode], elapsed)
            visits[mode] = seen
    overhead = (best["supervised"] - best["plain"]) / best["plain"] * 100.0
    return {"sites": site_count, "best": best, "visits": visits,
            "overhead_pct": overhead}


def measure_chaos_throughput(site_count=300):
    """Scheduled crawl under the randomized chaos plan, vs fault-free."""
    import importlib.util
    from pathlib import Path

    from repro.obs.runner import run_telemetry_crawl
    from repro.obs.telemetry import Telemetry

    spec = importlib.util.spec_from_file_location(
        "chaos_helpers",
        Path(__file__).parent.parent / "tests" / "test_faults.py")
    helpers = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(helpers)

    out = {}
    for mode in ("fault_free", "chaos"):
        plan = helpers.random_fault_plan(BENCH_SEED) \
            if mode == "chaos" else None
        gc.collect()
        start = time.perf_counter()
        result = run_telemetry_crawl(
            site_count=site_count, seed=BENCH_SEED, browsers=2,
            crash_probability=0.0, telemetry=Telemetry(),
            workers=2, fault_plan=plan, stage_deadline=50.0,
            quarantine_after=2, max_attempts=3, lease_seconds=1e9)
        elapsed = time.perf_counter() - start
        assert result.report.drained, result.report
        counts = {
            "completed": result.report.completed,
            "failed": result.report.failed,
            "fires": plan.fire_count() if plan is not None else 0,
        }
        result.close()
        out[mode] = {"seconds": elapsed, **counts}
    return {"sites": site_count, **out}


def test_benchmark_supervision_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: measure_supervision_overhead(rounds=3),
        rounds=1, iterations=1)
    chaos = measure_chaos_throughput()

    best, sites = result["best"], result["sites"]
    lines = [
        f"({sites}-site lab crawl, crash injection 5%, best of 3.",
        " 'supervised' arms an empty fault plan, a 100s-per-stage",
        " watchdog, a 10-failure circuit breaker, and a crash-loop",
        " detector over the identical crawl — the gap is the whole",
        " fault subsystem's cost on a healthy run.)",
        "",
        "| mode | seconds | sites/s |",
        "|---|---|---|",
        f"| plain | {best['plain']:.3f} "
        f"| {sites / best['plain']:.0f} |",
        f"| supervised | {best['supervised']:.3f} "
        f"| {sites / best['supervised']:.0f} |",
        f"| supervision overhead | {result['overhead_pct']:+.2f}% | |",
        "",
        f"Chaos throughput ({chaos['sites']} sites, 2 workers, "
        "randomized seeded plan):",
        "",
        "| mode | seconds | completed | failed | faults fired |",
        "|---|---|---|---|---|",
    ]
    for mode in ("fault_free", "chaos"):
        row = chaos[mode]
        lines.append(
            f"| {mode} | {row['seconds']:.3f} | {row['completed']} "
            f"| {row['failed']} | {row['fires']} |")
    report("fault_supervision", "Fault injection - supervision overhead",
           lines)

    assert all(count >= sites for count in result["visits"].values()), \
        result["visits"]
    assert result["overhead_pct"] < SUPERVISION_OVERHEAD_LIMIT_PCT, result

"""Sec. 3.3: detector validation — 100% TPR on OpenWPM, 0 FPR on
consumer browsers (plus the hardened client passing undetected)."""

from conftest import report


def test_benchmark_detector_validation(benchmark):
    from repro.browser.profiles import consumer_profiles, openwpm_profile
    from repro.core.fingerprint import OpenWPMDetector
    from repro.core.hardening import StealthJSInstrument, StealthSettings
    from repro.core.lab import make_window
    from repro.openwpm import BrowserParams, OpenWPMExtension

    detector = OpenWPMDetector()
    setups = [("ubuntu", m) for m in ("regular", "headless", "xvfb",
                                      "docker")] \
        + [("macos", m) for m in ("regular", "headless")]

    def validate():
        results = {"openwpm": {}, "consumer": {}, "hardened": None}
        for os_name, mode in setups:
            extension = OpenWPMExtension(BrowserParams(
                os_name=os_name, display_mode=mode))
            _, window = make_window(openwpm_profile(os_name, mode),
                                    extension=extension)
            results["openwpm"][f"{os_name}/{mode}"] = \
                detector.test_window(window).is_openwpm
        for profile in consumer_profiles():
            _, window = make_window(profile)
            results["consumer"][profile.name] = \
                detector.test_window(window).is_openwpm
        settings = StealthSettings.plausible()
        extension = OpenWPMExtension(BrowserParams(stealth=True),
                                     js_instrument=StealthJSInstrument())
        _, window = make_window(
            openwpm_profile("ubuntu", "regular",
                            window_size=settings.window_size,
                            window_position=settings.window_position),
            extension=extension)
        results["hardened"] = detector.test_window(window).is_openwpm
        return results

    results = benchmark.pedantic(validate, rounds=1, iterations=1)

    lines = ["| client | detected | expected |", "|---|---|---|"]
    for name, detected in results["openwpm"].items():
        lines.append(f"| OpenWPM {name} | {detected} | True |")
    for name, detected in results["consumer"].items():
        lines.append(f"| {name} | {detected} | False |")
    lines.append(f"| WPM_hide (regular) | {results['hardened']} | False |")
    report("sec33_detector_validation",
           "Sec 3.3 - detector validation", lines)

    assert all(results["openwpm"].values())  # 100% identification
    assert not any(results["consumer"].values())  # zero false positives
    assert results["hardened"] is False

"""AST node definitions for the JS subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass
class Node:
    """Base AST node; every node carries a source position."""

    line: int = 0
    column: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class NumberLiteral(Node):
    value: float = 0.0


@dataclass
class StringLiteral(Node):
    value: str = ""


@dataclass
class BooleanLiteral(Node):
    value: bool = False


@dataclass
class NullLiteral(Node):
    pass


@dataclass
class UndefinedLiteral(Node):
    pass


@dataclass
class Identifier(Node):
    name: str = ""


@dataclass
class ThisExpression(Node):
    pass


@dataclass
class ArrayLiteral(Node):
    elements: List[Node] = field(default_factory=list)


@dataclass
class ObjectLiteral(Node):
    #: (key, value) pairs; keys are plain strings.
    entries: List[Tuple[str, Node]] = field(default_factory=list)
    #: Accessor entries: (key, kind 'get'|'set', FunctionExpression).
    accessors: List[Tuple[str, str, Node]] = field(default_factory=list)


@dataclass
class FunctionExpression(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)
    source: str = ""  # exact source slice, for Function.prototype.toString
    is_arrow: bool = False


@dataclass
class MemberExpression(Node):
    object: Node = None
    property: Any = None  # str when not computed, Node when computed
    computed: bool = False


@dataclass
class CallExpression(Node):
    callee: Node = None
    arguments: List[Node] = field(default_factory=list)


@dataclass
class NewExpression(Node):
    callee: Node = None
    arguments: List[Node] = field(default_factory=list)


@dataclass
class UnaryExpression(Node):
    op: str = ""
    operand: Node = None


@dataclass
class UpdateExpression(Node):
    op: str = ""  # '++' or '--'
    target: Node = None
    prefix: bool = False


@dataclass
class BinaryExpression(Node):
    op: str = ""
    left: Node = None
    right: Node = None


@dataclass
class LogicalExpression(Node):
    op: str = ""  # '&&' or '||'
    left: Node = None
    right: Node = None


@dataclass
class AssignmentExpression(Node):
    op: str = "="  # '=', '+=', ...
    target: Node = None  # Identifier or MemberExpression
    value: Node = None


@dataclass
class ConditionalExpression(Node):
    test: Node = None
    consequent: Node = None
    alternate: Node = None


@dataclass
class SequenceExpression(Node):
    expressions: List[Node] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Program(Node):
    body: List[Node] = field(default_factory=list)
    source: str = ""


@dataclass
class VariableDeclaration(Node):
    kind: str = "var"  # 'var' | 'let' | 'const'
    declarations: List[Tuple[str, Optional[Node]]] = field(
        default_factory=list)


@dataclass
class FunctionDeclaration(Node):
    function: FunctionExpression = None


@dataclass
class ExpressionStatement(Node):
    expression: Node = None


@dataclass
class BlockStatement(Node):
    body: List[Node] = field(default_factory=list)


@dataclass
class IfStatement(Node):
    test: Node = None
    consequent: Node = None
    alternate: Optional[Node] = None


@dataclass
class WhileStatement(Node):
    test: Node = None
    body: Node = None


@dataclass
class DoWhileStatement(Node):
    body: Node = None
    test: Node = None


@dataclass
class ForStatement(Node):
    init: Optional[Node] = None  # statement or expression
    test: Optional[Node] = None
    update: Optional[Node] = None
    body: Node = None


@dataclass
class ForInStatement(Node):
    #: declaration kind for the loop variable ('' when pre-declared).
    kind: str = ""
    name: str = ""
    object: Node = None
    body: Node = None
    #: True for for..of (iterates values instead of keys).
    of: bool = False


@dataclass
class ReturnStatement(Node):
    argument: Optional[Node] = None


@dataclass
class BreakStatement(Node):
    pass


@dataclass
class ContinueStatement(Node):
    pass


@dataclass
class ThrowStatement(Node):
    argument: Node = None


@dataclass
class TryStatement(Node):
    block: BlockStatement = None
    catch_param: Optional[str] = None
    catch_block: Optional[BlockStatement] = None
    finally_block: Optional[BlockStatement] = None


@dataclass
class SwitchCase(Node):
    #: None marks the ``default:`` clause.
    test: Optional[Node] = None
    body: List[Node] = field(default_factory=list)


@dataclass
class SwitchStatement(Node):
    discriminant: Node = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class EmptyStatement(Node):
    pass

"""OpenWPM reproduction.

A faithful-by-design reimplementation of the parts of OpenWPM the paper
analyses (v0.17–0.20 era): the task manager / browser manager framework,
SQLite storage, and the three most-used instruments — HTTP, cookie, and
JavaScript. The JavaScript instrument deliberately reproduces the
*vulnerable* upstream design (DOM script injection, event-dispatcher
messaging with a random ID, first-prototype-only wrapping, leftover
``window.getInstrumentJS``), because the paper's attacks (Sec. 5) and
hardening (Sec. 6) are defined against exactly those behaviours.
"""

from repro.openwpm.config import BrowserParams, ManagerParams
from repro.openwpm.merge import MergeReport, merge_shards
from repro.openwpm.storage import StorageController
from repro.openwpm.storage_shard import ShardRecorder, is_shard_database
from repro.openwpm.extension import OpenWPMExtension
from repro.openwpm.task_manager import CommandSequence, TaskManager

__all__ = [
    "BrowserParams",
    "ManagerParams",
    "MergeReport",
    "StorageController",
    "ShardRecorder",
    "OpenWPMExtension",
    "TaskManager",
    "CommandSequence",
    "is_shard_database",
    "merge_shards",
]

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, json.loads(captured.out)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.os == "ubuntu" and args.mode == "regular"

    def test_scan_arguments(self):
        args = build_parser().parse_args(
            ["scan", "--sites", "100", "--front-only"])
        assert args.sites == 100 and args.front_only


class TestCommands:
    def test_survey(self, capsys):
        code, out = run_cli(capsys, ["survey"])
        assert code == 0
        assert out["table1"]["total"] == 72
        assert out["table14"]["outdated_days"] == 540

    def test_audit_regular(self, capsys):
        code, out = run_cli(capsys, ["audit", "--mode", "regular"])
        assert code == 0
        assert out["detected"] is True
        assert out["tampered_properties"] == 252

    def test_audit_without_instrument(self, capsys):
        code, out = run_cli(capsys, ["audit", "--no-instrument"])
        assert code == 0
        assert out["tampered_properties"] == 0
        assert out["detected"] is True  # webdriver still gives it away

    def test_scan_small(self, capsys):
        code, out = run_cli(capsys, ["scan", "--sites", "40",
                                     "--front-only", "--seed", "3"])
        assert code == 0
        assert out["sites"] == 40
        assert "table5" in out and "table11" in out

    def test_attack(self, capsys):
        code, out = run_cli(capsys, ["attack"])
        assert code == 0
        assert out["block-recording"]["vs_wpm"] is True
        assert out["block-recording"]["vs_wpm_hide"] is False
        assert out["sql-injection"]["database_corrupted"] is False

    def test_compare_tiny(self, capsys):
        code, out = run_cli(capsys, ["compare", "--sites", "60",
                                     "--repetitions", "1"])
        assert code == 0
        assert out["detector_sites"] > 0
        assert 0.0 <= out["cookie_wilcoxon_p"] <= 1.0


class TestCrawlCommand:
    def test_crawl_in_memory_drains(self, capsys):
        code, out = run_cli(capsys, ["crawl", "--sites", "20",
                                     "--workers", "2", "--json"])
        assert code == 0
        assert out["drained"] is True
        assert out["completed"] + out["failed"] == 20
        assert out["queue"] == ":memory:"

    def test_crawl_resume_needs_file_queue(self, capsys):
        code = main(["crawl", "--sites", "5", "--resume"])
        captured = capsys.readouterr()
        assert code == 2
        assert "file-backed queue" in captured.err

    def test_crawl_interrupt_then_resume(self, tmp_path, capsys):
        db = str(tmp_path / "crawl.sqlite")
        code, out = run_cli(capsys, [
            "crawl", "--sites", "30", "--workers", "2", "--db", db,
            "--stop-after", "10", "--crash-probability", "0",
            "--json"])
        assert code == 1  # not drained
        assert out["interrupted"] is True
        assert out["queue"] == f"{db}.queue"

        code, out = run_cli(capsys, [
            "crawl", "--sites", "30", "--workers", "2", "--db", db,
            "--crash-probability", "0", "--resume", "--json"])
        assert code == 0
        assert out["resumed"] is True
        assert out["drained"] is True
        assert out["queue_counts"]["completed"] == 30

    def test_stats_reads_crawl_queue(self, tmp_path, capsys):
        db = str(tmp_path / "crawl.sqlite")
        assert run_cli(capsys, ["crawl", "--sites", "15",
                                "--workers", "2", "--db", db,
                                "--json"])[0] == 0
        code, out = run_cli(capsys, ["stats", "--db", db,
                                     "--queue", f"{db}.queue",
                                     "--json"])
        assert code == 0
        assert out["scheduler"]["jobs_completed"] \
            + out["scheduler"]["jobs_failed"] == 15
        assert out["queue"]["drained"] is True
        assert out["reconciled"] is True

"""Literature datasets: the OpenWPM study survey and release history.

* :mod:`repro.literature.studies` — the 72 peer-reviewed OpenWPM-based
  studies of Tables 1 and 15 (what they measure, how they deploy, how
  they interact, whether they consider bot detection);
* :mod:`repro.literature.firefox_releases` — Firefox/OpenWPM release
  alignment (Table 14) and the outdated-fraction computation.
"""

from repro.literature.studies import (
    STUDIES,
    Study,
    summarise_studies,
)
from repro.literature.firefox_releases import (
    FIREFOX_RELEASES,
    OPENWPM_RELEASES,
    outdated_statistics,
)

__all__ = [
    "Study",
    "STUDIES",
    "summarise_studies",
    "FIREFOX_RELEASES",
    "OPENWPM_RELEASES",
    "outdated_statistics",
]

"""Unit tests for the TaskManager framework layer."""

import pytest

from repro.core.lab import LAB_URL, make_lab_network
from repro.openwpm import (
    BrowserParams,
    CommandSequence,
    ManagerParams,
    TaskManager,
)


def make_manager(crash_probability=0.0, num_browsers=1):
    network = make_lab_network()
    manager = TaskManager(
        ManagerParams(crash_probability=crash_probability, seed=3),
        [BrowserParams(browser_id=i, dwell_time=1.0)
         for i in range(num_browsers)],
        network)
    return manager


class TestCrawling:
    def test_get_records_visit(self):
        manager = make_manager()
        manager.get(LAB_URL)
        visits = manager.storage.query("SELECT * FROM site_visits")
        assert len(visits) == 1
        assert visits[0]["site_url"] == LAB_URL
        manager.close()

    def test_crawl_distributes_round_robin(self):
        manager = make_manager(num_browsers=2)
        manager.crawl([LAB_URL] * 4)
        visits = manager.storage.query(
            "SELECT browser_id FROM site_visits ORDER BY visit_id")
        assert [v["browser_id"] for v in visits] == [0, 1, 0, 1]
        manager.close()

    def test_callbacks_receive_result(self):
        seen = []
        manager = make_manager()
        manager.get(LAB_URL, callbacks=[
            lambda browser, result: seen.append(result.final_url)])
        assert seen == [LAB_URL]
        manager.close()

    def test_instruments_wired_to_storage(self):
        manager = make_manager()
        manager.get(LAB_URL)
        requests = manager.storage.http_request_rows()
        assert any(r["resource_type"] == "main_frame" for r in requests)
        manager.close()


class TestCrashRecovery:
    def test_crashes_logged_and_recovered(self):
        manager = make_manager(crash_probability=0.4)
        results = manager.crawl([LAB_URL] * 10)
        crashes = manager.storage.query(
            "SELECT * FROM crash_history WHERE action = 'crash'")
        assert crashes  # fault injection fired at least once
        # Every site still eventually succeeded or was given up cleanly.
        completed = [r for r in results if r is not None]
        assert len(completed) + len(manager.failed_sites) == 10
        assert completed  # recovery produced successes
        manager.close()

    def test_browser_replaced_after_crash(self):
        manager = make_manager(crash_probability=1.0)
        manager.get(LAB_URL)
        assert manager.failed_sites == [LAB_URL]
        assert manager.browsers[0].crash_count \
            == manager.manager_params.failure_limit
        manager.close()

    def test_stealth_factory_used(self):
        from repro.core.hardening import StealthJSInstrument

        network = make_lab_network()
        manager = TaskManager(
            ManagerParams(),
            [BrowserParams(browser_id=0, stealth=True, dwell_time=1.0)],
            network,
            js_instrument_factory=lambda storage: StealthJSInstrument(
                storage=storage))
        assert isinstance(manager.browsers[0].extension.js_instrument,
                          StealthJSInstrument)
        manager.close()


class TestInteraction:
    def _manager_with_collector(self, style):
        from repro.core.lab import LAB_URL, make_lab_network
        from repro.net.page import PageSpec, ScriptItem
        from repro.browser.interaction import BEHAVIOUR_COLLECTOR_SCRIPT

        page = PageSpec(url=LAB_URL, items=[
            ScriptItem(source=BEHAVIOUR_COLLECTOR_SCRIPT)])
        network = make_lab_network(pages={"/": page})
        return TaskManager(
            ManagerParams(),
            [BrowserParams(dwell_time=1.0, interaction=style)], network)

    def _track(self, manager):
        from repro.browser.interaction import extract_behaviour_track

        tracks = []
        manager.get("https://lab.test/", callbacks=[
            lambda browser, result: tracks.append(
                extract_behaviour_track(result.top_window))])
        manager.close()
        return tracks[0]

    def test_no_interaction_by_default(self):
        manager = self._manager_with_collector(None)
        assert self._track(manager) == []

    def test_selenium_style_flagged_behaviourally(self):
        from repro.browser.interaction import score_pointer_track

        manager = self._manager_with_collector("selenium")
        verdict = score_pointer_track(self._track(manager))
        assert verdict.is_bot

    def test_human_style_passes_behaviourally(self):
        from repro.browser.interaction import score_pointer_track

        manager = self._manager_with_collector("human")
        track = self._track(manager)
        assert len(track) > 5
        verdict = score_pointer_track(track)
        assert not verdict.is_bot

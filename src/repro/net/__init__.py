"""HTTP and URL substrate for the simulated web."""

from repro.net.url import URL, etld_plus_one, same_site
from repro.net.http import (
    HttpRequest,
    HttpResponse,
    ResourceType,
)

__all__ = [
    "URL",
    "etld_plus_one",
    "same_site",
    "HttpRequest",
    "HttpResponse",
    "ResourceType",
]

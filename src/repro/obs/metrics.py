"""Metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-flavoured but dependency-free. Metrics are identified by
``(name, sorted label set)``; repeated lookups return the same
instrument, so hot paths can call ``registry.counter(...)`` directly or
cache the handle. Histograms use *fixed* bucket boundaries chosen at
creation — no wall-clock or data-dependent bucketing — so snapshots are
deterministic under fixed seeds.

:class:`NullMetricsRegistry` is the disabled-mode twin: every factory
returns a shared inert instrument, making instrumented code near-free
when telemetry is off.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

#: Default latency buckets (virtual seconds). Fixed and seed-independent.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count.

    Mutation is lock-protected: ``+=`` on an attribute is
    read-modify-write, so unlocked concurrent ``inc`` calls from worker
    threads would lose increments.
    """

    __slots__ = ("name", "labels", "value", "_lock", "_on_delta")
    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()
        self._on_delta: Any = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount
        if self._on_delta is not None:
            self._on_delta(self, amount)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (e.g. recording integrity)."""

    __slots__ = ("name", "labels", "value", "_lock", "_on_delta")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()
        self._on_delta: Any = None

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            current = self.value
        if self._on_delta is not None:
            self._on_delta(self, current)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            current = self.value
        if self._on_delta is not None:
            self._on_delta(self, current)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount
            current = self.value
        if self._on_delta is not None:
            self._on_delta(self, current)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-boundary histogram with cumulative-style export.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative internally; the exporter accumulates). The final
    implicit bucket is ``+Inf``.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum",
                 "count", "_lock", "_on_delta")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelsKey = (),
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if tuple(buckets) != tuple(sorted(buckets)):
            raise ValueError("histogram buckets must be sorted")
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()
        self._on_delta: Any = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break
            else:
                self.bucket_counts[-1] += 1
        if self._on_delta is not None:
            self._on_delta(self, value)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "sum": self.sum,
                "count": self.count, "bounds": list(self.bounds),
                "bucket_counts": list(self.bucket_counts)}


class MetricsRegistry:
    """Owns every metric; get-or-create by (name, labels).

    Get-or-create and the read side are serialized by one lock, so
    concurrent workers always share a single instrument per key and
    snapshots never iterate a dict mid-insert. Instrument mutation is
    locked per instrument, not here.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelsKey], Any] = {}
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._on_delta: Any = None

    def set_on_delta(self, callback: Any) -> None:
        """Install a flight-recorder hook ``fn(instrument, value)``
        fired on every counter ``inc`` (value = delta), gauge mutation
        (value = new value), and histogram ``observe`` (value =
        observation). Applies to existing and future instruments."""
        with self._lock:
            self._on_delta = callback
            for metric in self._metrics.values():
                metric._on_delta = callback

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: Dict[str, Any],
                       **kwargs: Any):
        key = (name, _labels_key(labels))
        with self._lock:
            registered = self._kinds.get(name)
            if registered is not None and registered != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {registered}")
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                metric._on_delta = self._on_delta
                self._metrics[key] = metric
                self._kinds[name] = cls.kind
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: Any) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels,
            buckets=tuple(buckets) if buckets else DEFAULT_BUCKETS)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            metric = self._metrics.get((name, _labels_key(labels)))
        return metric.value if metric is not None else 0.0

    def gauge_value(self, name: str, **labels: Any) -> float:
        return self.counter_value(name, **labels)

    def sum_counter(self, name: str) -> float:
        """Total over every label combination of a counter."""
        with self._lock:
            metrics = list(self._metrics.items())
        return sum(m.value for (n, _), m in metrics
                   if n == name and m.kind == "counter")

    def all_metrics(self) -> List[Any]:
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> List[Dict[str, Any]]:
        return [metric.to_dict() for metric in self.all_metrics()]

    def restore(self, metrics: List[Dict[str, Any]]) -> int:
        """Seed instruments from a stored snapshot (resume carry-forward).

        A resumed crawl starts with a fresh registry, but its database
        spans every earlier run; restoring the persisted snapshot first
        keeps the final snapshot cumulative — counters and histograms
        are *added to*, gauges adopt the stored value. Histograms with
        mismatched bucket bounds are skipped rather than corrupted.
        Returns the number of instruments restored.

        Restores mutate instrument state directly, bypassing the
        flight-recorder ``_on_delta`` hook: carried-forward totals were
        already journalled by the run that produced them, and replaying
        them as fresh deltas would double-count every counter in the
        journal-vs-telemetry reconciliation after a resume.
        """
        restored = 0
        for metric in metrics:
            labels = metric.get("labels") or {}
            kind = metric.get("kind")
            if kind == "counter":
                counter = self.counter(metric["name"], **labels)
                with counter._lock:
                    counter.value += float(metric.get("value") or 0.0)
            elif kind == "gauge":
                gauge = self.gauge(metric["name"], **labels)
                with gauge._lock:
                    gauge.value = float(metric.get("value") or 0.0)
            elif kind == "histogram":
                bounds = tuple(metric.get("bounds") or DEFAULT_BUCKETS)
                hist = self.histogram(metric["name"], buckets=bounds,
                                      **labels)
                counts = list(metric.get("bucket_counts") or [])
                if tuple(hist.bounds) != bounds \
                        or len(counts) != len(hist.bucket_counts):
                    continue
                for index, count in enumerate(counts):
                    hist.bucket_counts[index] += int(count)
                hist.sum += float(metric.get("sum") or 0.0)
                hist.count += int(metric.get("count") or 0)
            else:
                continue
            restored += 1
        return restored

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()


class _NullCounter:
    __slots__ = ()
    kind = "counter"
    name = ""
    labels: LabelsKey = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = ""
    labels: LabelsKey = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = ""
    labels: LabelsKey = ()
    sum = 0.0
    count = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """Disabled-mode registry: shared inert instruments, no state."""

    enabled = False

    def set_on_delta(self, callback: Any) -> None:
        pass

    def counter(self, name: str, **labels: Any) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: Any) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def counter_value(self, name: str, **labels: Any) -> float:
        return 0.0

    def gauge_value(self, name: str, **labels: Any) -> float:
        return 0.0

    def sum_counter(self, name: str) -> float:
        return 0.0

    def all_metrics(self) -> List[Any]:
        return []

    def snapshot(self) -> List[Dict[str, Any]]:
        return []

    def restore(self, metrics: List[Dict[str, Any]]) -> int:
        return 0

    def clear(self) -> None:
        pass

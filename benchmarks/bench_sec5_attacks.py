"""Sec. 5 / Listings 2-4: the recording attacks, vanilla vs hardened.

Also checks the operator-facing counterpart: the telemetry layer's
``recording_integrity`` gauge must go red exactly when the dispatcher
hijack succeeds, and stay green for the hardened instrument.
"""

from conftest import report


def test_benchmark_attacks(benchmark):
    from repro.core.attacks import (
        run_block_recording_attack,
        run_csp_blocking_attack,
        run_fake_injection_attack,
        run_iframe_bypass_attack,
        run_silent_delivery_attack,
        run_sql_injection_probe,
    )

    def run_matrix():
        matrix = {}
        for stealth in (False, True):
            key = "WPM_hide" if stealth else "WPM"
            matrix[key] = {
                "block-recording":
                    run_block_recording_attack(stealth=stealth).succeeded,
                "fake-injection":
                    run_fake_injection_attack(stealth=stealth).succeeded,
                "csp-blocking":
                    run_csp_blocking_attack(stealth=stealth).succeeded,
                "iframe-bypass":
                    run_iframe_bypass_attack(stealth=stealth).succeeded,
                "silent-delivery": run_silent_delivery_attack(
                    save_content="script", stealth=stealth).succeeded,
            }
        matrix["WPM save_content=all"] = {
            "silent-delivery":
                run_silent_delivery_attack(save_content="all").succeeded}
        matrix["sql-injection"] = run_sql_injection_probe().succeeded
        return matrix

    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    lines = ["(paper: every attack succeeds against vanilla OpenWPM; the "
             "hardening mitigates all of them; the SQLite backend is "
             "injection-safe)", "",
             "| attack | vs WPM | vs WPM_hide |", "|---|---|---|"]
    for attack in matrix["WPM"]:
        lines.append(f"| {attack} | {matrix['WPM'][attack]} | "
                     f"{matrix['WPM_hide'][attack]} |")
    lines.append(f"| silent-delivery vs save_content='all' | "
                 f"{matrix['WPM save_content=all']['silent-delivery']} "
                 f"| - |")
    lines.append(f"| sql-injection (RQ7) | {matrix['sql-injection']} | "
                 f"- |")
    report("sec5_attacks", "Sec 5 - recording attacks", lines)

    assert all(matrix["WPM"].values())
    assert matrix["WPM_hide"]["block-recording"] is False
    assert matrix["WPM_hide"]["fake-injection"] is False
    assert matrix["WPM_hide"]["csp-blocking"] is False
    assert matrix["WPM_hide"]["iframe-bypass"] is False
    assert matrix["WPM save_content=all"]["silent-delivery"] is False
    assert matrix["sql-injection"] is False


def test_benchmark_integrity_gauge(benchmark):
    """The recording-integrity probe sees the Listing 2 hijack."""
    from repro.core.attacks import run_block_recording_attack
    from repro.obs.telemetry import Telemetry

    def run_gauge_matrix():
        out = {}
        for stealth in (False, True):
            key = "WPM_hide" if stealth else "WPM"
            telemetry = Telemetry()
            outcome = run_block_recording_attack(stealth=stealth,
                                                 telemetry=telemetry)
            out[key] = {
                "attack_succeeded": outcome.succeeded,
                "gauge": telemetry.metrics.gauge_value(
                    "recording_integrity"),
                "probe_failures": telemetry.metrics.counter_value(
                    "integrity_probe_failures"),
            }
        return out

    gauges = benchmark.pedantic(run_gauge_matrix, rounds=1, iterations=1)

    lines = ["(the gauge goes red exactly when the hijack silences the "
             "instrument)", "",
             "| client | attack succeeded | recording_integrity | "
             "probe failures |", "|---|---|---|---|"]
    for key, row in gauges.items():
        lines.append(f"| {key} | {row['attack_succeeded']} | "
                     f"{row['gauge']:.0f} | "
                     f"{row['probe_failures']:.0f} |")
    report("sec5_integrity_gauge",
           "Sec 5 - recording-integrity gauge vs dispatcher hijack",
           lines)

    assert gauges["WPM"]["attack_succeeded"]
    assert gauges["WPM"]["gauge"] == 0.0
    assert gauges["WPM"]["probe_failures"] >= 1
    assert not gauges["WPM_hide"]["attack_succeeded"]
    assert gauges["WPM_hide"]["gauge"] == 1.0
    assert gauges["WPM_hide"]["probe_failures"] == 0

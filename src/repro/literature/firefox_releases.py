"""Firefox / OpenWPM release alignment (paper Table 14 / Appx. C).

A crawl day is *outdated* when the newest available Firefox is newer
than the Firefox shipped with the newest OpenWPM release. Between the
releases of Firefox 77 and Firefox 104 the paper counts 780 days, 540
of which (69%) OpenWPM shipped an outdated browser.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FirefoxRelease:
    version: str
    released: date

    @property
    def major(self) -> float:
        parts = self.version.split(".")
        return float(parts[0]) + float(parts[1]) / 100 \
            if len(parts) > 1 else float(parts[0])


@dataclass(frozen=True)
class OpenWPMRelease:
    version: str
    released: date
    firefox_version: str


FIREFOX_RELEASES: List[FirefoxRelease] = [
    FirefoxRelease("77.0", date(2020, 6, 3)),
    FirefoxRelease("78.0", date(2020, 6, 30)),
    FirefoxRelease("78.0.1", date(2020, 7, 1)),
    FirefoxRelease("79.0", date(2020, 7, 28)),
    FirefoxRelease("80.0", date(2020, 8, 25)),
    FirefoxRelease("81.0", date(2020, 9, 22)),
    FirefoxRelease("83.0", date(2020, 11, 18)),
    FirefoxRelease("84.0", date(2020, 12, 15)),
    FirefoxRelease("86.0.1", date(2021, 3, 11)),
    FirefoxRelease("87.0", date(2021, 3, 23)),
    FirefoxRelease("88.0", date(2021, 4, 19)),
    FirefoxRelease("89.0", date(2021, 6, 1)),
    FirefoxRelease("90.0", date(2021, 7, 13)),
    FirefoxRelease("91.0", date(2021, 8, 10)),
    FirefoxRelease("95.0", date(2021, 12, 7)),
    FirefoxRelease("96.0", date(2022, 1, 11)),
    FirefoxRelease("98.0", date(2022, 3, 8)),
    FirefoxRelease("99.0", date(2022, 4, 5)),
    FirefoxRelease("100.0", date(2022, 5, 3)),
    FirefoxRelease("101.0", date(2022, 5, 31)),
    FirefoxRelease("104.0", date(2022, 7, 23)),
]

OPENWPM_RELEASES: List[OpenWPMRelease] = [
    OpenWPMRelease("0.10.0", date(2020, 6, 23), "77.0"),
    OpenWPMRelease("0.11.0", date(2020, 7, 9), "78.0.1"),
    OpenWPMRelease("0.12.0", date(2020, 8, 26), "80.0"),
    OpenWPMRelease("0.13.0", date(2020, 11, 19), "83.0"),
    OpenWPMRelease("0.14.0", date(2021, 3, 12), "86.0.1"),
    OpenWPMRelease("0.15.0", date(2021, 5, 10), "88.0"),
    OpenWPMRelease("0.16.0", date(2021, 6, 10), "89.0"),
    OpenWPMRelease("0.17.0", date(2021, 7, 24), "90.0"),
    OpenWPMRelease("0.18.0", date(2021, 12, 16), "95.0"),
    OpenWPMRelease("0.19.0", date(2022, 3, 10), "98.0"),
    OpenWPMRelease("0.20.0", date(2022, 5, 5), "100.0"),
]


def _major_of(version: str) -> Tuple[int, ...]:
    return tuple(int(part) for part in version.split("."))


def newest_firefox_on(day: date) -> Optional[str]:
    newest = None
    for release in FIREFOX_RELEASES:
        if release.released <= day:
            if newest is None or _major_of(release.version) > _major_of(
                    newest):
                newest = release.version
    return newest


def openwpm_firefox_on(day: date) -> Optional[str]:
    current = None
    current_date = None
    for release in OPENWPM_RELEASES:
        if release.released <= day:
            if current_date is None or release.released > current_date:
                current = release.firefox_version
                current_date = release.released
    return current


def outdated_statistics(start: Optional[date] = None,
                        end: Optional[date] = None) -> Dict[str, float]:
    """Count outdated days in [start, end) (Table 14 bottom line)."""
    start = start or FIREFOX_RELEASES[0].released
    end = end or FIREFOX_RELEASES[-1].released
    total = (end - start).days
    outdated = 0
    day = start
    from datetime import timedelta

    while day < end:
        newest = newest_firefox_on(day)
        shipped = openwpm_firefox_on(day)
        if shipped is None or (
                newest is not None
                and _major_of(newest) > _major_of(shipped)):
            outdated += 1
        day += timedelta(days=1)
    return {
        "total_days": total,
        "outdated_days": outdated,
        "outdated_fraction": outdated / total if total else 0.0,
    }

"""Unit tests for the DOM substrate: elements, document, events, HTML."""

import pytest

from repro.dom.document import Document
from repro.dom.events import DOMEvent
from repro.dom.html import parse_html_fragment, render_attributes
from repro.dom.node import (
    CanvasElement,
    Element,
    IFrameElement,
    ScriptElement,
    make_element,
)
from repro.net.url import URL


def make_document():
    return Document(URL.parse("https://dom.test/"))


class TestElementFactory:
    def test_script_element(self):
        assert isinstance(make_element("script", None), ScriptElement)

    def test_iframe_element(self):
        assert isinstance(make_element("iframe", None), IFrameElement)

    def test_canvas_element(self):
        assert isinstance(make_element("canvas", None), CanvasElement)

    def test_generic_element(self):
        element = make_element("div", None)
        assert type(element) is Element
        assert element.class_name == "HTMLDivElement"


class TestTree:
    def test_append_sets_parent(self):
        doc = make_document()
        child = doc.create_element("div")
        doc.body.append_child(child)
        assert child.parent is doc.body
        assert child.is_attached()

    def test_detached_subtree_not_attached(self):
        doc = make_document()
        parent = doc.create_element("div")
        child = doc.create_element("span")
        parent.append_child(child)
        assert not child.is_attached()

    def test_reparenting_removes_from_old_parent(self):
        doc = make_document()
        a = doc.create_element("div")
        b = doc.create_element("div")
        child = doc.create_element("span")
        a.append_child(child)
        b.append_child(child)
        assert child not in a.children
        assert child.parent is b

    def test_remove(self):
        doc = make_document()
        child = doc.create_element("div")
        doc.body.append_child(child)
        child.remove()
        assert child.parent is None
        assert not child.is_attached()

    def test_attach_notification_fires_for_subtree(self):
        doc = make_document()
        seen = []

        class Host:
            def handle_element_attached(self, element, interp=None):
                seen.append(element.tag_name)

        doc.window_host = Host()
        wrapper = doc.create_element("div")
        inner = doc.create_element("script")
        wrapper.append_child(inner)  # detached: no notification yet
        assert seen == []
        doc.body.append_child(wrapper)
        assert seen == ["div", "script"]


class TestSelectors:
    def test_get_element_by_id(self):
        doc = make_document()
        div = doc.create_element("div")
        div.set_attribute("id", "target")
        doc.body.append_child(div)
        assert doc.get_element_by_id("target") is div
        assert doc.get_element_by_id("missing") is None

    def test_query_selector_by_tag_class_id(self):
        doc = make_document()
        div = doc.create_element("div")
        div.set_attribute("class", "a b")
        div.set_attribute("id", "x")
        doc.body.append_child(div)
        assert doc.query_selector("div") is div
        assert doc.query_selector(".b") is div
        assert doc.query_selector("#x") is div
        assert doc.query_selector("div#x") is div
        assert doc.query_selector("span") is None

    def test_query_selector_all(self):
        doc = make_document()
        for _ in range(3):
            doc.body.append_child(doc.create_element("p"))
        assert len(doc.query_selector_all("p")) == 3


class TestDocumentWrite:
    def test_write_appends_parsed_content(self):
        doc = make_document()
        doc.write('<div id="w"></div><script>var x = 1;</script>')
        assert doc.get_element_by_id("w") is not None
        scripts = doc.query_selector_all("script")
        assert scripts and scripts[0].text_content == "var x = 1;"

    def test_write_log_kept(self):
        doc = make_document()
        doc.write("<div></div>")
        assert doc.write_log == ["<div></div>"]


class TestEvents:
    def test_listener_receives_event(self):
        doc = make_document()
        got = []
        doc.add_listener("ping", lambda event, interp: got.append(
            event.event_type))
        doc.host_dispatch(DOMEvent("ping"))
        assert got == ["ping"]

    def test_listener_only_for_matching_type(self):
        doc = make_document()
        got = []
        doc.add_listener("a", lambda e, i: got.append("a"))
        doc.host_dispatch(DOMEvent("b"))
        assert got == []

    def test_remove_listener(self):
        doc = make_document()
        got = []
        listener = lambda e, i: got.append(1)  # noqa: E731
        doc.add_listener("t", listener)
        doc.remove_listener("t", listener)
        doc.host_dispatch(DOMEvent("t"))
        assert got == []

    def test_event_detail_exposed_as_js_property(self):
        event = DOMEvent("custom", detail="payload")
        assert event.get("type") == "custom"
        assert event.get("detail") == "payload"


class TestHTMLFragmentParser:
    def test_basic_tags(self):
        tags = parse_html_fragment(
            '<script src="/a.js"></script><img src="/b.png">')
        assert [(t.tag, t.attributes.get("src")) for t in tags] == [
            ("script", "/a.js"), ("img", "/b.png")]

    def test_inline_script_body(self):
        tags = parse_html_fragment("<script>var a = 1;</script>")
        assert tags[0].text == "var a = 1;"

    def test_attribute_quote_styles(self):
        tags = parse_html_fragment(
            "<div id=\"a\" class='b c' data-x=plain></div>")
        assert tags[0].attributes == {"id": "a", "class": "b c",
                                      "data-x": "plain"}

    def test_nested_containers_flattened(self):
        tags = parse_html_fragment(
            '<div><iframe src="/f.html"></iframe></div>')
        assert [t.tag for t in tags] == ["div", "iframe"]

    def test_render_attributes(self):
        assert render_attributes({"a": "1"}) == ' a="1"'
        assert render_attributes({}) == ""

"""Tests for the crawl flight recorder, JS-engine profiler, and trace
export.

Covers the journal's crash-recovery contract (torn tail tolerated,
mid-file corruption rejected), deterministic cross-worker merging,
epoch claiming on resume, the profiler's op attribution, the
fixed-seed reconciliation of a journalled two-worker crawl against the
telemetry and failure tables, and a golden-file pin of the Chrome
trace-event export for a fixed-seed sequential crawl.

To regenerate the trace golden after an intentional schema change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src \
        python -m pytest tests/test_obs_journal.py -q
"""

from __future__ import annotations

import json
import os
import pathlib
import threading

import pytest

from repro.obs.clock import VirtualClock
from repro.obs.journal import (
    NULL_JOURNAL,
    Journal,
    count_events,
    journal_files,
    journal_path_for,
    merge_journal,
    read_journal_file,
    sum_metric_deltas,
)
from repro.obs.profiler import ScriptProfiler, install_profiler
from repro.obs.runner import run_telemetry_crawl
from repro.obs.stats import REPORT_SCHEMA_VERSION, build_crawl_report
from repro.obs.trace import chrome_trace_to_json, journal_to_chrome_trace

TRACE_GOLDEN_PATH = (pathlib.Path(__file__).parent / "golden"
                     / "trace_golden.json")


class TestJournalWriting:
    def test_events_carry_order_key_fields(self, tmp_path):
        clock = VirtualClock()
        journal = Journal(str(tmp_path), clock)
        clock.advance(1.5)
        journal.emit("visit_start", url="https://a.test/")
        journal.emit("visit_complete", url="https://a.test/")
        journal.close()
        events = merge_journal(str(tmp_path))
        assert [e["type"] for e in events] == ["visit_start",
                                               "visit_complete"]
        first, second = events
        assert first["epoch"] == 0 and first["worker"] == "main"
        assert first["t"] == pytest.approx(1.5)
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["url"] == "https://a.test/"

    def test_emit_never_advances_virtual_time(self, tmp_path):
        clock = VirtualClock()
        journal = Journal(str(tmp_path), clock)
        before = clock.peek()
        for _ in range(50):
            journal.emit("metric", name="x", kind="counter", delta=1)
        journal.close()
        assert clock.peek() == before

    def test_lifecycle_event_flushes_buffered_events(self, tmp_path):
        journal = Journal(str(tmp_path), VirtualClock())
        journal.emit("metric", name="x", kind="counter", delta=1)
        journal.emit("span_open", name="visit")
        journal.emit("visit_start", url="https://a.test/")
        # No explicit flush/close: the lifecycle event must have carried
        # the buffered metric/span events to disk with it.
        (path,) = journal_files(str(tmp_path))
        assert [e["type"] for e in read_journal_file(path)] == [
            "metric", "span_open", "visit_start"]
        journal.close()

    def test_bind_worker_routes_thread_events(self, tmp_path):
        journal = Journal(str(tmp_path), VirtualClock())
        journal.emit("visit_start", url="https://main.test/")

        def work():
            journal.bind_worker("worker-0")
            try:
                journal.emit("lease_claim", url="https://w.test/")
            finally:
                journal.unbind()

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        journal.close()
        files = journal_files(str(tmp_path))
        assert [os.path.basename(p) for p in files] == [
            "epoch-0000.main.jsonl", "epoch-0000.worker-0.jsonl"]
        by_file = {os.path.basename(p): read_journal_file(p)
                   for p in files}
        assert [e["type"] for e in by_file["epoch-0000.main.jsonl"]] \
            == ["visit_start"]
        assert [e["type"] for e in by_file["epoch-0000.worker-0.jsonl"]] \
            == ["lease_claim"]

    def test_journal_path_for(self):
        assert journal_path_for(":memory:") is None
        assert journal_path_for("/tmp/c.sqlite") == "/tmp/c.sqlite.journal"

    def test_null_journal_is_inert(self):
        NULL_JOURNAL.bind_worker("w")
        NULL_JOURNAL.emit("visit_start", url="x")
        NULL_JOURNAL.flush()
        NULL_JOURNAL.close()
        assert not NULL_JOURNAL.enabled


class TestCrashRecovery:
    def _file(self, tmp_path, text):
        path = tmp_path / "epoch-0000.main.jsonl"
        path.write_text(text)
        return str(path)

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = self._file(tmp_path,
                          '{"type":"visit_start","seq":0}\n'
                          '{"type":"visit_comp')
        events = read_journal_file(path)
        assert [e["type"] for e in events] == ["visit_start"]

    def test_clean_file_reads_fully(self, tmp_path):
        path = self._file(tmp_path,
                          '{"type":"a","seq":0}\n{"type":"b","seq":1}\n')
        assert [e["type"] for e in read_journal_file(path)] == ["a", "b"]

    def test_midfile_corruption_raises(self, tmp_path):
        path = self._file(tmp_path,
                          '{"type":"a","seq":0}\n'
                          '{"type":"b","se\n'
                          '{"type":"c","seq":2}\n')
        with pytest.raises(ValueError, match="corrupt journal line 2"):
            read_journal_file(path)

    def test_kill_mid_write_recovers(self, tmp_path):
        # Simulate a crash: journal abandoned without close(), then the
        # last line torn off mid-byte.
        journal = Journal(str(tmp_path), VirtualClock())
        for i in range(5):
            journal.emit("visit_complete", url=f"https://s{i}.test/")
        journal.flush()
        (path,) = journal_files(str(tmp_path))
        data = pathlib.Path(path).read_bytes()
        pathlib.Path(path).write_bytes(data[:-9])  # tear the tail
        events = read_journal_file(path)
        assert len(events) == 4  # the torn fifth line is dropped
        assert all(e["type"] == "visit_complete" for e in events)


class TestMerge:
    def test_merge_orders_across_workers_and_epochs(self, tmp_path):
        clock = VirtualClock()
        first = Journal(str(tmp_path), clock)
        first.emit("visit_start", url="a")
        clock.advance(1.0)
        first.bind_worker("worker-0")
        first.emit("lease_claim", url="a")
        first.unbind()
        clock.advance(1.0)
        first.emit("visit_complete", url="a")
        first.close()
        # A second run over the same directory claims the next epoch;
        # its events sort after everything from epoch 0 even though its
        # virtual clock restarted at zero.
        second = Journal(str(tmp_path), VirtualClock())
        assert second.epoch == first.epoch + 1 == 1
        second.emit("visit_start", url="b")
        second.close()
        events = merge_journal(str(tmp_path))
        assert [(e["epoch"], e["type"]) for e in events] == [
            (0, "visit_start"), (0, "lease_claim"),
            (0, "visit_complete"), (1, "visit_start")]

    def test_merge_is_deterministic(self, tmp_path):
        clock = VirtualClock()
        journal = Journal(str(tmp_path), clock)
        for i in range(10):
            journal.bind_worker(f"worker-{i % 3}")
            journal.emit("lease_claim", url=f"https://s{i}.test/")
            journal.unbind()
        journal.close()
        assert merge_journal(str(tmp_path)) == merge_journal(str(tmp_path))

    def test_count_events_and_metric_deltas(self, tmp_path):
        journal = Journal(str(tmp_path), VirtualClock())
        journal.emit("visit_start", url="a")
        journal.emit("visit_start", url="b")
        journal.emit("metric", name="visits_completed", kind="counter",
                     delta=1.0, labels={})
        journal.emit("metric", name="visits_completed", kind="counter",
                     delta=2.0, labels={})
        journal.emit("metric", name="recording_integrity", kind="gauge",
                     value=1.0, labels={})
        journal.close()
        events = merge_journal(str(tmp_path))
        assert count_events(events) == {"visit_start": 2, "metric": 3}
        deltas = sum_metric_deltas(events)
        assert deltas == {("visits_completed", ()): pytest.approx(3.0)}


class TestProfiler:
    def test_hot_scripts_rank_by_op_count(self, realm):
        from repro.jsengine.interpreter import Interpreter

        profiler = ScriptProfiler()
        previous = install_profiler(profiler)
        try:
            interp = Interpreter(realm)
            interp.run("var i = 0; while (i < 100) { i = i + 1; }",
                       "https://big.test/heavy.js")
            interp.run("var x = 1;", "https://small.test/light.js")
        finally:
            install_profiler(previous)
        rows = profiler.hot_scripts()
        assert len(rows) == 2
        assert rows[0]["script_url"] == "https://big.test/heavy.js"
        assert rows[0]["ops"] > rows[1]["ops"]
        assert all(len(r["script_hash"]) == 64 for r in rows)
        assert all(r["runs"] == 1 for r in rows)

    def test_function_self_ops_exclude_callees(self, realm):
        from repro.jsengine.interpreter import Interpreter

        profiler = ScriptProfiler()
        previous = install_profiler(profiler)
        try:
            Interpreter(realm).run(
                "function inner() { var j = 0;"
                " while (j < 50) { j = j + 1; } return j; }\n"
                "function outer() { return inner() + inner(); }\n"
                "outer();", "https://fn.test/s.js")
        finally:
            install_profiler(previous)
        fns = {row["function"]: row for row in profiler.hot_functions()}
        assert fns["inner"]["calls"] == 2
        assert fns["outer"]["calls"] == 1
        # outer's total includes inner's work; its self ops do not.
        assert fns["outer"]["total_ops"] > fns["inner"]["total_ops"]
        assert fns["outer"]["self_ops"] < fns["inner"]["self_ops"]

    def test_profile_is_deterministic(self, realm):
        from repro.jsengine.builtins import Realm
        from repro.jsengine.interpreter import Interpreter

        import random

        def profile_once():
            profiler = ScriptProfiler()
            previous = install_profiler(profiler)
            try:
                interp = Interpreter(Realm(random.Random(42)))
                interp.run("function f(n) { return n < 2 ? 1"
                           " : f(n - 1) + f(n - 2); } f(8);",
                           "https://fib.test/f.js")
            finally:
                install_profiler(previous)
            return profiler.snapshot()

        assert profile_once() == profile_once()

    def test_uninstalled_profiler_records_nothing(self, realm, run):
        profiler = ScriptProfiler()
        run("var x = 1 + 1;")
        assert profiler.snapshot() == {"scripts": [], "functions": []}


class TestProfiledCrawl:
    @pytest.fixture(scope="class")
    def detector_result(self):
        # One visit to the seed-7 world's only detector site: its
        # first-party fingerprinting script must dominate the profile.
        result = run_telemetry_crawl(
            site_count=20, seed=7, web="tranco",
            urls=["https://www.healthtravelc650.jp/"],
            browsers=1, workers=None, crash_probability=0.0,
            js_instrument=True, profile=True)
        yield result
        result.close()

    def test_detector_script_ranks_first(self, detector_result):
        rows = detector_result.profiler.hot_scripts()
        assert rows, "profiled crawl produced no script rows"
        assert "_Incapsula_Resource" in rows[0]["script_url"]
        assert rows[0]["ops"] > rows[1]["ops"]

    def test_profile_aggregates_are_journalled(self, tmp_path):
        result = run_telemetry_crawl(
            site_count=20, seed=7, web="tranco",
            urls=["https://www.healthtravelc650.jp/"],
            browsers=1, workers=None, crash_probability=0.0,
            js_instrument=True, profile=True,
            journal_dir=str(tmp_path))
        try:
            events = merge_journal(str(tmp_path))
            scripts = [e for e in events if e["type"] == "profile_script"]
            assert scripts
            assert scripts[0]["script_url"] == \
                result.profiler.hot_scripts()[0]["script_url"]
            assert any(e["type"] == "profile_function" for e in events)
        finally:
            result.close()

    def test_profiler_restored_after_crawl(self, detector_result):
        from repro.jsengine import interpreter as engine

        assert engine._PROFILER is None


class TestJournalledCrawlReconciliation:
    @pytest.fixture(scope="class")
    def crawl(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("journalled")
        journal_dir = str(base / "journal")
        result = run_telemetry_crawl(
            site_count=40, seed=7, web="lab", browsers=2,
            workers=2, crash_probability=0.15,
            journal_dir=journal_dir)
        yield result, journal_dir
        result.close()

    def test_one_file_per_worker(self, crawl):
        _, journal_dir = crawl
        names = [os.path.basename(p) for p in journal_files(journal_dir)]
        assert "epoch-0000.main.jsonl" in names
        assert "epoch-0000.worker-0.jsonl" in names
        assert "epoch-0000.worker-1.jsonl" in names

    def test_merged_journal_reconciles_with_database(self, crawl):
        result, journal_dir = crawl
        report = build_crawl_report(result.storage,
                                    telemetry=result.telemetry,
                                    journal_dir=journal_dir)
        journal_checks = [c for c in report["reconciliation"]
                          if c["check"].startswith("journal")]
        assert journal_checks, "journal produced no reconciliation checks"
        bad = [c for c in journal_checks if not c["ok"]]
        assert not bad, f"journal diverged from the books: {bad}"
        assert report["reconciled"] is True
        assert report["schema_version"] == REPORT_SCHEMA_VERSION

    def test_journal_section_summarises_events(self, crawl):
        result, journal_dir = crawl
        report = build_crawl_report(result.storage,
                                    telemetry=result.telemetry,
                                    journal_dir=journal_dir)
        journal = report["journal"]
        assert journal["directory"] == journal_dir
        assert journal["files"] >= 3
        assert journal["epochs"] == 1
        counts = journal["event_counts"]
        metrics = result.telemetry.metrics
        assert counts["visit_complete"] == int(
            metrics.counter_value("visits_completed"))
        assert counts["visit_start"] == int(
            metrics.counter_value("visits_attempted"))
        assert counts["lease_claim"] >= 40
        assert set(counts) >= {"visit_start", "visit_complete",
                               "lease_claim", "lease_complete",
                               "metric", "span_open", "span_close"}

    def test_lifecycle_events_pair_up(self, crawl):
        _, journal_dir = crawl
        counts = count_events(merge_journal(journal_dir))
        # Every claim ends in exactly one of completed / failed / lost.
        assert counts["lease_claim"] == (
            counts.get("lease_complete", 0)
            + counts.get("lease_fail", 0)
            + counts.get("lease_lost", 0))

    def test_divergence_is_flagged(self, crawl, tmp_path):
        # Forge a journal that under-reports completions: the third
        # book must refuse to balance.
        result, journal_dir = crawl
        forged = tmp_path / "forged"
        forged.mkdir()
        events = merge_journal(journal_dir)
        dropped = 0
        with open(forged / "epoch-0000.main.jsonl", "w",
                  encoding="utf-8") as handle:
            for event in events:
                if event["type"] == "visit_complete" and dropped < 3:
                    dropped += 1
                    continue
                handle.write(json.dumps(event) + "\n")
        report = build_crawl_report(result.storage,
                                    telemetry=result.telemetry,
                                    journal_dir=str(forged))
        complete_check = next(
            c for c in report["reconciliation"]
            if c["check"] == "journal visit_complete events =="
                             " visits_completed")
        assert complete_check["ok"] is False
        assert report["reconciled"] is False


class TestChromeTraceExport:
    @pytest.fixture(scope="class")
    def trace_payload(self, tmp_path_factory):
        journal_dir = str(tmp_path_factory.mktemp("trace") / "journal")
        result = run_telemetry_crawl(
            site_count=6, seed=11, web="lab", browsers=1,
            workers=None, crash_probability=0.2,
            journal_dir=journal_dir)
        result.close()
        trace = journal_to_chrome_trace(merge_journal(journal_dir))
        return trace, chrome_trace_to_json(trace)

    def test_trace_event_schema(self, trace_payload):
        trace, _ = trace_payload
        assert trace["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert phases == {"M", "X", "i"}
        for event in trace["traceEvents"]:
            assert set(event) >= {"ph", "pid", "tid", "name"}
            if event["ph"] == "X":
                assert event["dur"] >= 0 and event["ts"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_metadata_names_workers(self, trace_payload):
        trace, _ = trace_payload
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert "main" in names

    def test_json_round_trips(self, trace_payload):
        trace, payload = trace_payload
        assert json.loads(payload) == json.loads(
            json.dumps(trace, default=str))

    def test_matches_golden(self, trace_payload):
        _, payload = trace_payload
        if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
            TRACE_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            TRACE_GOLDEN_PATH.write_text(payload)
            pytest.skip("trace golden regenerated")
        if not TRACE_GOLDEN_PATH.exists():
            pytest.fail(
                "missing trace golden; regenerate with "
                "REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src "
                "python -m pytest tests/test_obs_journal.py -q")
        assert payload == TRACE_GOLDEN_PATH.read_text()

"""Seeded deterministic fault injection: :class:`FaultPlan`.

The paper's thesis is that web measurement tools fail *silently*; the
only failure the reproduction could provoke until now was a Bernoulli
coin-flip crash at visit start (``manager_params.crash_probability``).
A :class:`FaultPlan` generalises that into a composable, seeded rule
set injected at named choke points across the crawl stack:

==================== ===================================================
choke point          injected by
==================== ===================================================
``visit.start``      task manager, before the page load (the legacy
                     ``crash_probability`` position)
``visit.page_load``  task manager, before the browser visit
``visit.interaction``  task manager, before the interaction driver
``visit.callbacks``  task manager, before the command callbacks
``visit.storage_commit``  task manager, before the visit commit
``network.fetch``    :class:`repro.net.network.Network`, per request
``storage.begin_visit``  storage controller, before the visit row
``pool.lease``       worker pool, right after a job is claimed
``proc.claim``       process worker, right after a cross-process claim
``proc.mid_visit``   process worker, inside the visit (as a command
                     callback, after records were produced)
``proc.envelope``    process worker, just before shipping the visit
                     envelope to the storage broker
``proc.resolve``     process worker (shard mode), inside the
                     provisional window — after the shard_jobs row,
                     before the queue resolution
``proc.respawn``     process supervisor, when respawning a dead worker
==================== ===================================================

Fault kinds: ``crash`` (browser dies, restart + retry machinery runs),
``hang`` (burns virtual time; only a watchdog deadline rescues the
visit — at ``proc.*`` points the sleep is *real* wall time without
heartbeats, so the process supervisor's SIGKILL ladder is what rescues
it), ``connection_reset`` (the fetch raises :class:`NetworkFault`),
``slow_response`` (burns virtual time but the fetch succeeds),
``truncated_body`` (the response body is silently halved — data
corruption, not failure), ``storage_busy`` (``begin_visit`` raises
``sqlite3.OperationalError``), ``worker_death`` (the pool worker
abandons its freshly claimed job and lets the lease expire),
``worker_sigkill`` (the worker *process* SIGKILLs itself — no cleanup,
no goodbye; the supervisor must reap, release its leases, and
respawn), ``broker_pipe_error`` (the worker's connection to the
storage broker breaks mid-send, exercising envelope loss), and
``respawn_failure`` (the supervisor's respawn attempt itself fails,
driving the crash-loop backoff → pool-shrink ladder).

Determinism: every probabilistic rule draws from its own
``random.Random`` seeded from ``(plan seed, rule index)``, so a re-run
of the same plan over the same site order fires identically. Matching
state (occurrence counters, fire counts) is kept under one lock so
concurrent workers can share a plan; under thread interleaving the
*set* of faults stays seed-determined even when their order does not.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
from dataclasses import asdict, dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Recognised fault kinds.
FAULT_KINDS = (
    "crash",
    "hang",
    "connection_reset",
    "slow_response",
    "truncated_body",
    "storage_busy",
    "worker_death",
    "worker_sigkill",
    "broker_pipe_error",
    "respawn_failure",
)

#: Virtual seconds burned by a ``hang`` with no explicit ``seconds``.
DEFAULT_HANG_SECONDS = 600.0
#: Virtual seconds burned by a ``slow_response`` with no ``seconds``.
DEFAULT_SLOW_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """Base class for exceptions raised by injected faults."""


class NetworkFault(InjectedFault):
    """An injected network-level failure (connection reset)."""


def _glob(pattern: str) -> bool:
    return any(ch in pattern for ch in "*?[")


def _match_point(pattern: str, point: str) -> bool:
    if _glob(pattern):
        return fnmatchcase(point, pattern)
    return pattern == point


def _match_site(pattern: str, url: str) -> bool:
    """Glob when the pattern looks like one, substring otherwise."""
    if _glob(pattern):
        return fnmatchcase(url, pattern)
    return pattern in url


@dataclass
class FaultRule:
    """One injection rule.

    ``point`` and ``site`` accept ``fnmatch`` globs (``visit.*``,
    ``*site-0001*``); a glob-free ``site`` matches as a substring of
    the URL. ``nth`` fires only on the nth matching occurrence
    (1-based); ``probability`` draws from the rule's dedicated RNG on
    every match; ``times`` caps how often the rule fires in total;
    ``seconds`` parameterises time-burning faults.
    """

    fault: str
    point: str = "visit.start"
    site: Optional[str] = None
    nth: Optional[int] = None
    probability: Optional[float] = None
    times: Optional[int] = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault {self.fault!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.probability is not None \
                and not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based; must be >= 1")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1")


@dataclass
class _RuleState:
    occurrences: int = 0
    fires: int = 0


def _rule_rng(seed: int, index: int) -> random.Random:
    # Stable across Python versions and platforms.
    digest = hashlib.sha256(f"{seed}:{index}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class FaultPlan:
    """A seeded, composable set of :class:`FaultRule`\\ s.

    Thread-safe; one plan is shared by the task manager, the network,
    the storage controller, and the worker pool.
    """

    def __init__(self, rules: Sequence[FaultRule] = (),
                 seed: int = 0) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = list(rules)
        self._rngs: List[random.Random] = [
            _rule_rng(seed, index) for index in range(len(self.rules))]
        self._states: List[_RuleState] = [
            _RuleState() for _ in self.rules]
        self._lock = threading.Lock()
        self.clock: Optional[Any] = None
        #: (point, url, rule_index, fault) for every firing — test aid.
        self.fired: List[Tuple[str, str, int, str]] = []
        self.burned_seconds = 0.0
        #: Flight-recorder hook ``fn(point, url, rule_index, fault)``
        #: fired once per injection, outside the plan lock.
        self.on_trigger: Optional[Any] = None

    # ------------------------------------------------------------------
    def add_rule(self, rule: FaultRule,
                 rng: Optional[random.Random] = None) -> None:
        """Append a rule; ``rng`` overrides its dedicated RNG.

        The override is what the ``crash_probability`` compatibility
        shim uses to keep drawing from the task manager's own RNG, so
        legacy crawls stay bit-identical.
        """
        self.rules.append(rule)
        self._rngs.append(rng if rng is not None
                          else _rule_rng(self.seed, len(self.rules) - 1))
        self._states.append(_RuleState())

    @classmethod
    def legacy_crash(cls, probability: float,
                     rng: Optional[random.Random] = None) -> "FaultPlan":
        """The old ``crash_probability`` Bernoulli as a one-rule plan."""
        plan = cls()
        plan.add_rule(FaultRule(fault="crash", point="visit.start",
                                probability=probability), rng=rng)
        return plan

    # ------------------------------------------------------------------
    def bind_clock(self, clock: Any) -> None:
        """Attach the virtual clock that time-burning faults advance."""
        self.clock = clock

    def burn(self, seconds: float) -> None:
        """Advance the bound clock (hang / slow-response faults)."""
        if seconds <= 0:
            return
        with self._lock:
            self.burned_seconds += seconds
        if self.clock is not None:
            self.clock.advance(seconds)

    # ------------------------------------------------------------------
    def check(self, point: str, url: str = "") -> Optional[FaultRule]:
        """First rule firing at *point* for *url*, or ``None``.

        A probabilistic rule draws on **every** match (even when its
        ``times`` budget is spent), so RNG consumption — and therefore
        every later draw — does not depend on earlier firing outcomes.
        """
        if not self.rules:
            return None
        hit: Optional[FaultRule] = None
        hit_index = -1
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not _match_point(rule.point, point):
                    continue
                if rule.site is not None \
                        and not _match_site(rule.site, url):
                    continue
                state = self._states[index]
                state.occurrences += 1
                if rule.probability is not None:
                    draw = self._rngs[index].random()
                    if draw >= rule.probability:
                        continue
                if rule.nth is not None \
                        and state.occurrences != rule.nth:
                    continue
                if rule.times is not None and state.fires >= rule.times:
                    continue
                state.fires += 1
                self.fired.append((point, url, index, rule.fault))
                hit, hit_index = rule, index
                break
        if hit is not None and self.on_trigger is not None:
            # Outside the lock: the hook may journal, which takes its
            # own locks and must never nest inside the plan's.
            self.on_trigger(point, url, hit_index, hit.fault)
        return hit

    def preconsume(self, index: int, fires: int) -> None:
        """Mark *fires* earlier firings of rule *index* as spent.

        The process supervisor uses this when respawning a worker: the
        fresh process rebuilds the plan from its serialized form (rule
        states reset to zero), so without pre-consuming, a ``times``-
        capped ``worker_sigkill`` rule would fire again on every
        respawn and kill-loop the slot. RNG streams are untouched —
        rules keep their index-derived generators.
        """
        if fires <= 0:
            return
        with self._lock:
            self._states[index].fires += fires

    def fire_count(self, fault: Optional[str] = None) -> int:
        with self._lock:
            return sum(1 for item in self.fired
                       if fault is None or item[3] == fault)

    # ------------------------------------------------------------------
    # Serialisation (``repro crawl --fault-plan plan.json``)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "rules": [asdict(rule) for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        rules = []
        for raw in data.get("rules", []):
            unknown = set(raw) - {
                "fault", "point", "site", "nth", "probability", "times",
                "seconds"}
            if unknown:
                raise ValueError(
                    f"unknown fault-rule fields: {sorted(unknown)}")
            rules.append(FaultRule(**raw))
        return cls(rules, seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan(seed={self.seed}, "
                f"rules={len(self.rules)}, fired={len(self.fired)})")

"""Unit tests for OpenWPM's instruments (vulnerable-by-design JS
instrument, HTTP instrument, cookie instrument)."""

import pytest

from repro.browser import Browser, openwpm_profile
from repro.core.lab import LAB_URL, make_window, visit_with_scripts
from repro.net.http import HttpRequest, HttpResponse, SetCookie
from repro.net.url import URL
from repro.openwpm import BrowserParams, OpenWPMExtension
from repro.openwpm.instruments.http_instrument import (
    HTTPInstrument,
    looks_like_javascript,
)
from repro.openwpm.instruments.js_instrument import (
    INSTRUMENT_SCRIPT_URL,
    JSInstrument,
)


def instrumented(params=None, scripts=None, **visit_kwargs):
    extension = OpenWPMExtension(params or BrowserParams())
    browser, result = visit_with_scripts(
        openwpm_profile("ubuntu", "regular"), scripts or [],
        extension=extension, **visit_kwargs)
    return extension, result


class TestJSInstrumentRecording:
    def test_property_get_recorded_with_value(self):
        extension, _ = instrumented(scripts=["navigator.platform;"])
        records = [r for r in extension.js_instrument.records
                   if r.symbol == "navigator.platform"]
        assert records and records[0].operation == "get"
        assert records[0].value == "Linux x86_64"

    def test_method_call_recorded_with_arguments(self):
        extension, _ = instrumented(
            scripts=["navigator.sendBeacon('https://lab.test/x', 'data');"])
        calls = [r for r in extension.js_instrument.records
                 if r.operation == "call"
                 and r.symbol == "navigator.sendBeacon"]
        assert calls
        assert "https://lab.test/x" in calls[0].arguments

    def test_script_url_attributed(self):
        extension, _ = instrumented(scripts=["screen.width;"])
        record = [r for r in extension.js_instrument.records
                  if r.symbol == "screen.width"][0]
        assert record.script_url.startswith("https://lab.test/")

    def test_set_attempt_recorded(self):
        extension, _ = instrumented(
            scripts=["navigator.sendBeacon = function () {};"])
        sets = [r for r in extension.js_instrument.records
                if r.operation == "set"
                and r.symbol == "navigator.sendBeacon"]
        assert sets

    def test_records_forwarded_to_storage(self):
        from repro.openwpm.storage import StorageController

        storage = StorageController()
        extension = OpenWPMExtension(BrowserParams(), storage=storage)
        storage.begin_visit(0, LAB_URL)
        visit_with_scripts(openwpm_profile("ubuntu", "regular"),
                           ["navigator.userAgent;"], extension=extension)
        assert any(r["symbol"] == "navigator.userAgent"
                   for r in storage.javascript_records())


class TestJSInstrumentFingerprint:
    """The vulnerable design's identifiable traces (Sec. 3.1.4)."""

    def test_wrapped_method_tostring_shows_listing1(self):
        extension, result = instrumented(scripts=[
            "window.sig = document.createElement('canvas')"
            ".getContext('2d').fillRect.toString();"])
        signature = result.top_window.window_object.get("sig")
        assert "logCall" in signature
        assert "getOriginatingScriptContext" in signature
        assert "[native code]" not in signature

    def test_get_instrument_js_residue(self):
        extension, result = instrumented(scripts=[
            "window.residue = typeof window.getInstrumentJS;"])
        assert result.top_window.window_object.get("residue") == "function"

    def test_legacy_v010_residue(self):
        from repro.core.lab import visit_with_scripts

        extension = OpenWPMExtension(
            BrowserParams(),
            js_instrument=JSInstrument(legacy_v010=True))
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["window.a = typeof window.jsInstruments;"
             "window.b = typeof window.instrumentFingerprintingApis;"
             "window.c = typeof window.getInstrumentJS;"],
            extension=extension)
        window = result.top_window.window_object
        assert window.get("a") == "function"
        assert window.get("b") == "function"
        assert window.get("c") == "undefined"

    def test_prototype_pollution_fig2(self):
        extension, result = instrumented(scripts=[
            "window.polluted = Object.getPrototypeOf(screen)"
            ".hasOwnProperty('addEventListener');"])
        assert result.top_window.window_object.get("polluted") is True

    def test_instrument_frames_in_stack_traces(self):
        extension, result = instrumented(scripts=["""
            var sig = "";
            try { screen.addEventListener(); } catch (e) { sig = e.stack; }
            window.stackSig = sig;
        """])
        assert INSTRUMENT_SCRIPT_URL in \
            result.top_window.window_object.get("stackSig")

    def test_install_count_matches_table2(self):
        extension, result = instrumented()
        counts = list(extension.js_instrument.install_counts.values())
        assert counts[0] == 252  # ubuntu; macOS is 253

    def test_install_count_macos_253(self):
        extension = OpenWPMExtension(BrowserParams(os_name="macos"))
        make_window(openwpm_profile("macos", "regular"),
                    extension=extension)
        assert list(extension.js_instrument.install_counts.values())[0] \
            == 253

    def test_csp_blocks_installation(self):
        extension, result = instrumented(
            scripts=[], csp_header="script-src 'self'; report-uri /csp")
        assert extension.js_instrument.failed_windows
        assert any(e.request.resource_type == "csp_report"
                   for e in result.exchanges)


class TestHTTPInstrument:
    def _exchange(self, url, content_type):
        request = HttpRequest(url=URL.parse(url), resource_type="script",
                              top_frame_url=URL.parse("https://x.test/"))
        response = HttpResponse(content_type=content_type, body="BODY")
        return request, response

    def test_javascript_filter_by_content_type(self):
        request, response = self._exchange("https://x.test/a",
                                           "text/javascript")
        assert looks_like_javascript(response, request)

    def test_javascript_filter_by_extension(self):
        request, response = self._exchange("https://x.test/a.js",
                                           "text/plain")
        assert looks_like_javascript(response, request)

    def test_disguised_payload_evades_filter(self):
        """The Listing 4 precondition."""
        request, response = self._exchange("https://x.test/cheat",
                                           "text/plain")
        assert not looks_like_javascript(response, request)

    def test_save_modes(self):
        for mode, expect_saved in (("all", True), ("script", False),
                                   (None, False)):
            instrument = HTTPInstrument(save_content=mode)
            instrument.on_request(*self._exchange("https://x.test/cheat",
                                                  "text/plain"))
            assert bool(instrument.saved_bodies) is expect_saved

    def test_requests_by_type(self):
        instrument = HTTPInstrument(save_content=None)
        instrument.on_request(*self._exchange("https://x.test/a.js",
                                              "text/javascript"))
        assert instrument.requests_by_type() == {"script": 1}

    def test_third_party_flag(self):
        instrument = HTTPInstrument(save_content=None)
        request = HttpRequest(url=URL.parse("https://tracker.test/p"),
                              resource_type="image",
                              top_frame_url=URL.parse("https://site.test/"))
        instrument.on_request(request, HttpResponse())
        assert instrument.records[0].is_third_party


class TestCookieInstrument:
    def test_cookie_changes_recorded(self):
        extension, _ = instrumented(
            scripts=["document.cookie = 'seen=yes1234; Max-Age=86400';"])
        records = extension.cookie_instrument.records
        assert any(r.name == "seen" and r.via_javascript for r in records)

    def test_first_vs_third_party_split(self):
        from repro.openwpm.instruments.cookie_instrument import (
            CookieInstrument,
        )
        from repro.browser.cookies import Cookie

        instrument = CookieInstrument()
        instrument.on_cookie_change(Cookie(
            name="a", value="1", domain="site.test",
            first_party_host="site.test"), "added")
        instrument.on_cookie_change(Cookie(
            name="b", value="2", domain="tracker.test",
            first_party_host="site.test"), "added")
        assert len(instrument.first_party_cookies()) == 1
        assert len(instrument.third_party_cookies()) == 1

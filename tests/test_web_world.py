"""Tests for the synthetic web: Tranco list, configs, servers, truth."""

import pytest

from repro.net.http import HttpRequest
from repro.net.network import ClientIdentity
from repro.net.url import URL, etld_plus_one
from repro.web import build_world
from repro.web.providers import (
    FIRST_PARTY_VENDORS,
    THIRD_PARTY_DETECTORS,
    blocklist_domains,
    long_tail_detector_domains,
)
from repro.web.sitegen import SiteConfigGenerator
from repro.web.tranco import generate_tranco


@pytest.fixture(scope="module")
def big_configs():
    """Config-only generation at scale (no crawling)."""
    tranco = generate_tranco(20_000, seed=5)
    return SiteConfigGenerator(seed=5).generate(tranco.sites)


class TestTranco:
    def test_deterministic(self):
        a = generate_tranco(100, seed=3)
        b = generate_tranco(100, seed=3)
        assert [s.domain for s in a] == [s.domain for s in b]

    def test_seed_changes_list(self):
        a = generate_tranco(100, seed=3)
        b = generate_tranco(100, seed=4)
        assert [s.domain for s in a] != [s.domain for s in b]

    def test_domains_unique(self):
        sites = generate_tranco(5000, seed=1).sites
        assert len({s.domain for s in sites}) == len(sites)

    def test_ranks_sequential(self):
        sites = generate_tranco(50, seed=1).sites
        assert [s.rank for s in sites] == list(range(1, 51))

    def test_every_site_has_categories(self):
        for site in generate_tranco(200, seed=1):
            assert 1 <= len(site.categories) <= 3

    def test_news_skews_to_top_ranks(self):
        sites = generate_tranco(10_000, seed=2).sites
        top = sum(1 for s in sites[:2000] if "News" in s.categories)
        bottom = sum(1 for s in sites[-2000:] if "News" in s.categories)
        assert top > bottom


class TestCalibration:
    """Config marginals vs the paper's published rates (100K scale)."""

    def test_front_page_detector_rate_near_14pct(self, big_configs):
        front = sum(1 for c in big_configs
                    if c.detector_on_front or c.first_party_vendor)
        rate = front / len(big_configs)
        assert 0.11 < rate < 0.17  # paper: 13.99%

    def test_combined_detector_rate_near_19pct(self, big_configs):
        sites = sum(1 for c in big_configs if c.has_detector)
        rate = sites / len(big_configs)
        assert 0.15 < rate < 0.23  # paper: 18.7%

    def test_decoy_rate_near_17pct(self, big_configs):
        rate = sum(c.has_decoy for c in big_configs) / len(big_configs)
        assert 0.15 < rate < 0.19

    def test_first_party_share_of_detector_sites(self, big_configs):
        detectors = [c for c in big_configs if c.has_detector]
        share = sum(1 for c in detectors if c.first_party_vendor) \
            / len(detectors)
        assert 0.14 < share < 0.30  # paper: ~21%

    def test_csp_blocking_rate(self, big_configs):
        rate = sum(c.csp_blocking for c in big_configs) / len(big_configs)
        assert 0.06 < rate < 0.10  # paper: 113/1487 = 7.6%

    def test_top_third_party_provider_is_yandex(self, big_configs):
        from collections import Counter

        counts = Counter()
        for config in big_configs:
            for provider in set(config.third_party_detectors):
                counts[provider] += 1
        assert counts.most_common(1)[0][0] == "yandex.ru"

    def test_first_party_vendor_ordering_table12(self, big_configs):
        from collections import Counter

        counts = Counter(c.first_party_vendor for c in big_configs
                         if c.first_party_vendor)
        assert counts["Akamai"] > counts["PerimeterX"]
        assert counts["Incapsula"] > counts["Cloudflare"]

    def test_openwpm_probe_rate(self, big_configs):
        sites = sum(1 for c in big_configs if c.openwpm_providers)
        # paper: 356 / 100K = 0.36%
        assert 0.001 < sites / len(big_configs) < 0.008

    def test_rank_gradient_exists(self, big_configs):
        top = sum(1 for c in big_configs[:5000] if c.has_detector)
        bottom = sum(1 for c in big_configs[-5000:] if c.has_detector)
        assert top > bottom

    def test_configs_deterministic(self):
        tranco = generate_tranco(100, seed=9)
        a = SiteConfigGenerator(seed=9).generate(tranco.sites)
        b = SiteConfigGenerator(seed=9).generate(tranco.sites)
        assert [(c.domain, c.front_detector_form, c.trackers)
                for c in a] == [(c.domain, c.front_detector_form,
                                 c.trackers) for c in b]


class TestProviders:
    def test_table7_shares_sum_sensibly(self):
        total = sum(p.inclusion_share for p in THIRD_PARTY_DETECTORS)
        assert 0.65 < total < 0.75  # long tail holds the rest

    def test_long_tail_domains_distinct_registrables(self):
        domains = long_tail_detector_domains()
        assert len({etld_plus_one(d) for d in domains}) == len(domains)

    def test_first_party_vendor_totals(self):
        total = sum(v.sites_per_100k for v in FIRST_PARTY_VENDORS)
        assert total == 3867  # Sec. 4.3.2

    def test_blocklists_disjoint_purposes(self):
        lists = blocklist_domains()
        assert "adclick-syndicate.com" in lists["easylist"]
        assert "pixelmetrics.net" in lists["easyprivacy"]


class TestWorldServers:
    def test_every_site_served(self, small_world):
        client = ClientIdentity("probe")
        for config in small_world.configs[:10]:
            response, _ = small_world.network.fetch(
                HttpRequest(url=URL.parse(f"https://www.{config.domain}/"),
                            resource_type="main_frame"), client)
            assert response.status == 200
            assert response.page is not None

    def test_front_page_links_are_relative_subpages(self, small_world):
        client = ClientIdentity("probe")
        config = small_world.configs[0]
        response, _ = small_world.network.fetch(
            HttpRequest(url=URL.parse(f"https://www.{config.domain}/"),
                        resource_type="main_frame"), client)
        links = response.page.links()
        assert any(link.startswith("/p/") for link in links)
        assert any("jslib-cdn.example" in link for link in links)

    def test_subpages_served(self, small_world):
        client = ClientIdentity("probe")
        config = small_world.configs[0]
        response, _ = small_world.network.fetch(
            HttpRequest(url=URL.parse(
                f"https://www.{config.domain}/p/1.html"),
                resource_type="main_frame"), client)
        assert response.status == 200

    def test_detector_provider_serves_requested_form(self, small_world):
        client = ClientIdentity("probe")
        response, _ = small_world.network.fetch(
            HttpRequest(url=URL.parse(
                "https://yandex.ru/tag.js?form=obfuscated"),
                resource_type="script"), client)
        assert "webdriver" not in response.body  # concat-obfuscated

    def test_report_endpoint_flags_client(self, small_world):
        from repro.web.servers import BOT_INTEL

        client = ClientIdentity("bot-probe")
        small_world.network.fetch(
            HttpRequest(url=URL.parse(
                "https://yandex.ru/report?bot=1&site=x.test"),
                resource_type="beacon"), client)
        assert small_world.network.state[BOT_INTEL].get("bot-probe")

    def test_intel_sync_publishes_with_delay(self):
        from repro.web.servers import published_age

        world = build_world(site_count=5, seed=3)
        client = ClientIdentity("c")
        world.network.fetch(
            HttpRequest(url=URL.parse(
                "https://yandex.ru/report?bot=1&site=x"),
                resource_type="beacon"), client)
        assert published_age(world.network, client) == 0
        world.sync_intel()
        assert published_age(world.network, client) == 1
        world.sync_intel()
        assert published_age(world.network, client) == 2

    def test_tracker_withholds_uid_from_published_bot(self):
        world = build_world(site_count=5, seed=3)
        client = ClientIdentity("bot")
        world.network.state["bot-intel"][client.client_id] = True
        world.sync_intel()
        response, _ = world.network.fetch(
            HttpRequest(url=URL.parse(
                "https://retarget-exchange.com/pixel?uid=u123456789x1"),
                resource_type="image"), client)
        names = {c.name for c in response.set_cookies}
        assert not any(n.startswith("_trk_") for n in names)
        assert any(n.startswith("_sess_") for n in names)

    def test_tracker_grants_uid_to_human(self):
        world = build_world(site_count=5, seed=3)
        client = ClientIdentity("human")
        response, _ = world.network.fetch(
            HttpRequest(url=URL.parse(
                "https://retarget-exchange.com/pixel?uid=u123456789x1"),
                resource_type="image"), client)
        assert any(c.name.startswith("_trk_")
                   for c in response.set_cookies)

    def test_reset_intel(self):
        world = build_world(site_count=5, seed=3)
        world.network.state["bot-intel"]["x"] = True
        world.reset_intel()
        assert not world.network.state["bot-intel"]

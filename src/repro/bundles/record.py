"""Live-crawl recording: visit contexts feeding a bundle writer.

The recorder hangs off :attr:`repro.net.network.Network.recorder`; the
hot-path cost when recording is off is a single attribute check per
fetch. When recording is on, each worker thread's in-flight visit is a
thread-local buffer — exchanges accumulate as the browser fetches,
the JS-call trace is attached at visit end, and the whole site is
committed to the bundle in one transaction when its verdict lands
(:meth:`finish_site`). A crash mid-site therefore loses only that
site's buffer; the bundle on disk never holds torn visits, and its
manifest stays ``status: recording`` so replay refuses it cleanly.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.bundles.bundle import BundleWriter
from repro.bundles.codec import encode_hops, encode_trace
from repro.corpus.store import script_hash
from repro.obs.telemetry import coalesce


class BundleRecorder:
    """Records visits into an execution bundle during a normal crawl."""

    def __init__(self, path: str, kind: str = "crawl",
                 params: Optional[Dict[str, object]] = None,
                 sites: Optional[List[str]] = None,
                 telemetry=None) -> None:
        self.writer = BundleWriter(path, kind=kind, params=params,
                                   sites=sites)
        self.telemetry = coalesce(telemetry)
        self._tl = threading.local()
        #: Digests already persisted — lets on_fetch skip re-buffering
        #: bodies the bundle holds (reads under the writer lock).
        self._seen = set()
        self._seen_lock = threading.Lock()

    @property
    def path(self) -> str:
        return self.writer.path

    # ------------------------------------------------------------------
    # Visit lifecycle (called by the scan pipeline / task manager)
    # ------------------------------------------------------------------
    def begin_visit(self, site: str, url: str) -> None:
        tl = self._tl
        if getattr(tl, "site", None) != site:
            tl.site = site
            tl.visits = []
        tl.current = {"url": url, "exchanges": [], "blobs": {},
                      "trace": [], "success": True}

    def on_fetch(self, request, hops) -> None:
        """Archive one fetch's full hop chain (network hot path)."""
        current = getattr(self._tl, "current", None)
        if current is None:
            return
        blobs = current["blobs"]

        def put(text: str) -> str:
            digest = script_hash(text)
            with self._seen_lock:
                seen = digest in self._seen
            if not seen:
                blobs[digest] = text
            return digest

        current["exchanges"].append({"hops": encode_hops(hops, put)})

    def end_visit(self, trace=None, success: bool = True) -> None:
        tl = self._tl
        current = getattr(tl, "current", None)
        if current is None:
            return
        current["trace"] = encode_trace(trace or [])
        current["success"] = bool(success)
        tl.visits.append(current)
        tl.current = None
        self.telemetry.metrics.counter("bundle_visits_recorded").inc()
        self.telemetry.journal.emit(
            "bundle_visit_recorded", site=tl.site, url=current["url"],
            exchanges=len(current["exchanges"]))

    def abandon_visit(self) -> None:
        """Drop the in-flight visit buffer (crashed/aborted attempt)."""
        self._tl.current = None

    def abandon_site(self) -> None:
        """Drop everything buffered for this thread's current site."""
        tl = self._tl
        tl.current = None
        tl.visits = []
        tl.site = None

    # ------------------------------------------------------------------
    def finish_site(self, site: str, front=None, combined=None,
                    evidence=None,
                    verdict: Optional[Dict[str, object]] = None) -> None:
        """Commit the site's buffered visits plus its verdict.

        Scan callers pass the ``front``/``combined`` classifications
        and the raw evidence list; crawl callers pass a plain
        ``verdict`` dict. Serialization happens here so neither
        pipeline needs to import bundle internals.
        """
        tl = self._tl
        visits = tl.visits if getattr(tl, "site", None) == site \
            else []
        if verdict is None and (front is not None
                                or combined is not None):
            from repro.bundles.codec import classification_to_dict

            verdict = {}
            if front is not None:
                verdict["front"] = classification_to_dict(front)
            if combined is not None:
                verdict["combined"] = classification_to_dict(combined)
        evidence_payload = None
        if evidence is not None:
            from repro.core.scan.results_store import evidence_to_dict

            evidence_payload = [evidence_to_dict(item)
                                for item in evidence]
        self.writer.write_site(site, visits, verdict=verdict,
                               evidence=evidence_payload)
        with self._seen_lock:
            for visit in visits:
                self._seen.update(visit["blobs"])
        tl.visits = []
        tl.site = None
        tl.current = None
        self.telemetry.metrics.counter("bundle_sites_recorded").inc()
        self.telemetry.journal.emit("bundle_site_recorded", site=site,
                                    visits=len(visits))

    # ------------------------------------------------------------------
    def absorb_analysis(self, rows) -> int:
        """Archive a scan corpus's memoized static-analysis verdicts."""
        return self.writer.import_analysis_cache(rows)

    def close(self, complete: bool = True) -> None:
        self.writer.finalize(complete=complete)

"""Structured page content.

A :class:`PageSpec` is the structured equivalent of an HTML document:
an ordered list of items (scripts, iframes, images, stylesheets, links)
plus metadata. Servers return it as the payload of ``main_frame`` /
``sub_frame`` responses; the browser walks it top-to-bottom like an HTML
parser; ``to_html`` renders a faithful textual body for instruments that
archive response bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.dom.html import render_attributes
from repro.net.http import ResourceType


@dataclass
class ScriptItem:
    """A ``<script>``: external (``src``) or inline (``source``)."""

    src: str = ""
    source: str = ""
    attributes: dict = field(default_factory=dict)

    def to_html(self) -> str:
        attrs = dict(self.attributes)
        if self.src:
            attrs["src"] = self.src
            return f"<script{render_attributes(attrs)}></script>"
        return f"<script{render_attributes(attrs)}>{self.source}</script>"


@dataclass
class IFrameItem:
    """An ``<iframe src=...>``."""

    src: str
    attributes: dict = field(default_factory=dict)

    def to_html(self) -> str:
        attrs = {"src": self.src, **self.attributes}
        return f"<iframe{render_attributes(attrs)}></iframe>"


@dataclass
class ResourceItem:
    """A passive subresource (image, stylesheet, font, media, ...)."""

    url: str
    resource_type: str = ResourceType.IMAGE

    def to_html(self) -> str:
        if self.resource_type == ResourceType.STYLESHEET:
            return f'<link rel="stylesheet" href="{self.url}">'
        return f'<img src="{self.url}">'


@dataclass
class LinkItem:
    """An ``<a href=...>`` candidate subpage link."""

    href: str
    text: str = ""

    def to_html(self) -> str:
        return f'<a href="{self.href}">{self.text or self.href}</a>'


PageItem = object  # union of the four item classes above


@dataclass
class PageSpec:
    """One page of the synthetic web."""

    url: str
    title: str = ""
    csp_header: str = ""
    items: List[PageItem] = field(default_factory=list)

    def scripts(self) -> List[ScriptItem]:
        return [item for item in self.items if isinstance(item, ScriptItem)]

    def iframes(self) -> List[IFrameItem]:
        return [item for item in self.items if isinstance(item, IFrameItem)]

    def resources(self) -> List[ResourceItem]:
        return [item for item in self.items if isinstance(item, ResourceItem)]

    def links(self) -> List[str]:
        return [item.href for item in self.items
                if isinstance(item, LinkItem)]

    def to_html(self) -> str:
        body = "\n".join(item.to_html() for item in self.items)
        return (
            "<!DOCTYPE html>\n<html>\n<head>"
            f"<title>{self.title}</title></head>\n"
            f"<body>\n{body}\n</body>\n</html>"
        )


@dataclass
class ScriptFile:
    """A served JavaScript (or disguised) file."""

    url: str
    source: str
    content_type: str = "text/javascript"

"""Monotonic clock shims for the telemetry layer.

Telemetry must be deterministic under fixed seeds (ROADMAP: reproducible
experiments), so nothing in ``repro.obs`` may read the wall clock by
default. :class:`VirtualClock` is a deterministic monotonic clock: every
reading advances it by a fixed tick, so span durations depend only on
the code path executed, never on host speed. Integrations that track
simulated time (the browser's virtual event loop) can :meth:`advance`
it by known amounts.

:class:`WallClock` wraps ``time.monotonic`` for the one place real time
matters — the telemetry-overhead benchmark guard.
"""

from __future__ import annotations

import time


class VirtualClock:
    """Deterministic monotonic clock.

    ``now()`` advances the clock by ``tick`` before returning, so two
    successive readings are always a fixed distance apart and durations
    measured between readings are exactly reproducible.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.001) -> None:
        self._now = float(start)
        self._tick = float(tick)

    def now(self) -> float:
        self._now += self._tick
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by a known (virtual) duration."""
        if seconds > 0:
            self._now += seconds

    def peek(self) -> float:
        """Current reading without advancing (for tests)."""
        return self._now


class WallClock:
    """Real monotonic time, for overhead measurements only."""

    def now(self) -> float:
        return time.monotonic()

    def advance(self, seconds: float) -> None:  # pragma: no cover
        pass

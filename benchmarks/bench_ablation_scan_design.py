"""Ablations of the scan pipeline's design choices (Sec. 4.1).

Three knockouts over the same crawl:

* **no deobfuscation** — static analysis without hex/unicode decoding
  loses the hex-encoded detectors;
* **no honey properties** — iterator fingerprinters can no longer be
  separated from targeted probes: dynamic results absorb the
  'inconclusive' class as false positives;
* **subpage depth 0..3** — the detection-rate curve behind Fig. 3's
  front-vs-deep contrast.
"""

from conftest import report


def test_benchmark_scan_ablations(benchmark, bench_world, bench_scan):
    truth_static = bench_world.ground_truth.static_detectable()
    truth_dynamic = bench_world.ground_truth.dynamic_detectable()
    iterators = bench_world.ground_truth.iterator_sites()

    def run_ablations():
        out = {}
        out["full"] = bench_scan.reclassify()
        out["no-deobfuscation"] = bench_scan.reclassify(
            preprocess_static=False)
        out["no-honey"] = bench_scan.reclassify(use_honey=False)
        for depth in range(4):
            out[f"depth-{depth}"] = bench_scan.reclassify(
                max_visits=depth + 1)
        return out

    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    def count(key, attribute):
        return sum(getattr(c, attribute) for c in results[key].values())

    lines = ["## Static deobfuscation", "",
             "| variant | static (strict) sites | ground truth |",
             "|---|---|---|",
             f"| with deobfuscation | {count('full', 'static_clean')} | "
             f"{len(truth_static)} |",
             f"| without | {count('no-deobfuscation', 'static_clean')} | "
             f"{len(truth_static)} |",
             "", "## Honey properties", "",
             "| variant | dynamic (clean) sites | iterator sites planted |",
             "|---|---|---|",
             f"| with honey filter | {count('full', 'dynamic_clean')} | "
             f"{len(iterators)} |",
             f"| without | {count('no-honey', 'dynamic_clean')} | "
             f"{len(iterators)} |",
             "", "## Subpage depth", "",
             "| subpages visited | clean-union sites |", "|---|---|"]
    for depth in range(4):
        lines.append(f"| {depth} | "
                     f"{count(f'depth-{depth}', 'clean_union')} |")
    report("ablation_scan_design", "Ablation - scan design choices",
           lines)

    # Deobfuscation recovers hex-encoded detectors.
    assert count("no-deobfuscation", "static_clean") \
        < count("full", "static_clean")
    # Without honey properties, iterator sites leak into the clean set.
    assert count("no-honey", "dynamic_clean") \
        >= count("full", "dynamic_clean")
    if iterators:
        assert count("no-honey", "dynamic_clean") \
            > count("full", "dynamic_clean")
    # Detection grows monotonically with subpage depth.
    depths = [count(f"depth-{d}", "clean_union") for d in range(4)]
    assert depths == sorted(depths)
    assert depths[-1] > depths[0]

"""Probe-list fingerprinting (Jonker et al., Sec. 3).

Unlike the exhaustive template traversal, probes are an explicit list of
checks, each executed as *real JavaScript* inside the target window —
the same code a detecting website would ship. The probe script returns a
JSON object of findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict

PROBE_SCRIPT = r"""
var probe = {};
probe.webdriver = navigator.webdriver;
probe.userAgent = navigator.userAgent;
probe.platform = navigator.platform;
probe.languagesLength = navigator.languages.length;
var extraLangProps = 0;
for (var key in navigator.languages) {
    if (("" + (key * 1)) !== key) { extraLangProps = extraLangProps + 1; }
}
probe.languagesExtraProps = extraLangProps;

probe.screenWidth = screen.width;
probe.screenHeight = screen.height;
probe.availTop = screen.availTop;
probe.availLeft = screen.availLeft;
probe.innerWidth = window.innerWidth;
probe.innerHeight = window.innerHeight;
probe.screenX = window.screenX;
probe.screenY = window.screenY;

var canvas = document.createElement("canvas");
var gl = canvas.getContext("webgl");
if (gl === null) {
    probe.webglVendor = null;
    probe.webglRenderer = null;
} else {
    probe.webglVendor = gl.getParameter("VENDOR");
    probe.webglRenderer = gl.getParameter("RENDERER");
}

probe.hasGetInstrumentJS = typeof window.getInstrumentJS !== "undefined";
probe.hasJsInstruments = typeof window.jsInstruments !== "undefined";
probe.hasInstrumentFingerprintingApis =
    typeof window.instrumentFingerprintingApis !== "undefined";

var uaDescriptor = Object.getOwnPropertyDescriptor(
    Object.getPrototypeOf(navigator), "userAgent");
var uaGetterSource = uaDescriptor && uaDescriptor.get
    ? uaDescriptor.get.toString() : "";
probe.userAgentGetterNative = uaGetterSource.indexOf("[native code]") >= 0;

var ctx = canvas.getContext("2d");
probe.fillRectNative = ctx.fillRect.toString().indexOf("[native code]") >= 0;

var screenProto = Object.getPrototypeOf(screen);
probe.screenProtoPolluted = screenProto.hasOwnProperty("addEventListener");

var stackSign = "";
try {
    screen.addEventListener();
} catch (err) {
    stackSign = err.stack;
}
probe.instrumentInStack = stackSign.indexOf("moz-extension") >= 0
    || stackSign.indexOf("openwpm") >= 0;

var fontCount = 0;
var fontList = ["Arial", "Helvetica", "Georgia", "Verdana", "Ubuntu",
                "DejaVu Sans", "Noto Sans", "Times New Roman",
                "Bitstream Vera Sans Mono"];
for (var i = 0; i < fontList.length; i++) {
    if (document.fonts.check("12px " + fontList[i])) {
        fontCount = fontCount + 1;
    }
}
probe.fontCount = fontCount;
probe.timezoneOffset = new Date().getTimezoneOffset();

JSON.stringify(probe)
"""


@dataclass
class ProbeResults:
    """Findings of one probe run against one client."""

    client_name: str
    values: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)


def run_probes(window: Any) -> ProbeResults:
    """Execute the probe script in *window* and parse its findings."""
    raw = window.run_script(PROBE_SCRIPT,
                            script_url="https://prober.test/probe.js",
                            raise_errors=True)
    return ProbeResults(client_name=window.profile.name,
                        values=json.loads(str(raw)))

"""Chrome trace-event export (``python -m repro trace``).

Converts a crawl's flight-recorder journal — or, for databases recorded
before the journal existed, the persisted ``telemetry`` span table —
into the Trace Event JSON format that Perfetto and ``about:tracing``
load: visit/stage/script spans as ``"X"`` complete events on one track
per worker, and lifecycle / fault / lease / watchdog events as ``"i"``
instants. Timestamps are the journal's virtual-clock seconds scaled to
microseconds, so a fixed-seed crawl exports byte-identically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

#: Journal event types rendered as instant events on the worker track.
_INSTANT_TYPES = (
    "visit_start", "visit_attempt", "visit_complete", "visit_crash",
    "visit_hung", "visit_abandoned", "visit_network_fault",
    "visit_storage_fault", "visit_error", "visit_given_up",
    "visit_quarantined", "visit_discarded", "site_quarantined",
    "quarantine_retracted", "given_up_retracted", "watchdog_abort",
    "fault", "lease_claim", "lease_complete", "lease_fail",
    "lease_reclaim", "lease_lost", "lease_expired_terminal",
    "worker_death",
)

_PID = 1


def _us(seconds: Any) -> int:
    return int(round(float(seconds or 0.0) * 1_000_000))


def _event_args(event: Dict[str, Any]) -> Dict[str, Any]:
    return {key: value for key, value in sorted(event.items())
            if key not in ("type", "worker", "epoch", "t", "seq")}


def _span_time(event: Dict[str, Any]) -> Any:
    """A span_open's boundary time: its ``t`` (old journals: start)."""
    return event.get("start", event.get("t", 0.0))


def journal_to_chrome_trace(events: Iterable[Dict[str, Any]]
                            ) -> Dict[str, Any]:
    """Trace Event JSON from a merged journal (see ``merge_journal``)."""
    events = list(events)
    workers = sorted({str(event.get("worker", "main"))
                      for event in events})
    tids = {worker: index for index, worker in enumerate(workers)}

    trace_events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
         "args": {"name": "repro crawl"}}]
    for worker in workers:
        trace_events.append(
            {"ph": "M", "pid": _PID, "tid": tids[worker],
             "name": "thread_name", "args": {"name": worker}})

    #: (worker, span_id) -> the span_open event, until its close.
    open_spans: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for event in events:
        kind = str(event.get("type", ""))
        worker = str(event.get("worker", "main"))
        tid = tids[worker]
        if kind == "span_open":
            open_spans[(worker, str(event.get("span_id")))] = event
        elif kind == "span_close":
            key = (worker, str(event.get("span_id")))
            opened = open_spans.pop(key, None)
            # Span boundaries ride in the events' own virtual-clock
            # ``t``; older journals carried explicit start/end fields.
            end = event.get("end", event.get("t", 0.0))
            start = _span_time(opened) if opened is not None else end
            args = {"span_id": event.get("span_id"),
                    "trace_id": event.get("trace_id"),
                    "status": event.get("status", "ok")}
            args.update(event.get("attrs") or {})
            trace_events.append(
                {"ph": "X", "pid": _PID, "tid": tid, "cat": "span",
                 "name": str(event.get("name", "span")),
                 "ts": _us(start),
                 "dur": max(0, _us(end) - _us(start)),
                 "args": args})
        elif kind in _INSTANT_TYPES:
            trace_events.append(
                {"ph": "i", "pid": _PID, "tid": tid, "cat": "event",
                 "name": kind, "ts": _us(event.get("t", 0.0)),
                 "s": "t", "args": _event_args(event)})
    # A span still open at end-of-journal (crash mid-visit): surface it
    # as an instant rather than dropping the evidence.
    for (worker, _), opened in sorted(
            open_spans.items(),
            key=lambda item: _us(_span_time(item[1]))):
        trace_events.append(
            {"ph": "i", "pid": _PID, "tid": tids[worker],
             "cat": "event", "name": f"unclosed:{opened.get('name')}",
             "ts": _us(_span_time(opened)), "s": "t",
             "args": _event_args(opened)})

    trace_events.sort(key=lambda e: (0 if e["ph"] == "M" else 1,
                                     e.get("ts", 0), e["tid"],
                                     e.get("name", "")))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"source": "repro journal",
                          "clock": "virtual-seconds"}}


def spans_to_chrome_trace(spans: Iterable[Dict[str, Any]]
                          ) -> Dict[str, Any]:
    """Trace Event JSON from persisted ``telemetry`` span dicts.

    The fallback path for crawl databases recorded without a journal:
    tracks are per ``browser_id`` attribute (0 when absent), and only
    spans are available — no instants.
    """
    trace_events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
         "args": {"name": "repro crawl (telemetry spans)"}}]
    tids_seen: Dict[int, bool] = {}
    for span in spans:
        attributes = span.get("attributes") or {}
        try:
            tid = int(attributes.get("browser_id", 0))
        except (TypeError, ValueError):
            tid = 0
        tids_seen[tid] = True
        start = span.get("start_time") or 0.0
        end = span.get("end_time")
        end = start if end is None else end
        args = {"span_id": span.get("span_id"),
                "trace_id": span.get("trace_id"),
                "status": span.get("status", "ok")}
        args.update(attributes)
        trace_events.append(
            {"ph": "X", "pid": _PID, "tid": tid, "cat": "span",
             "name": str(span.get("name", "span")), "ts": _us(start),
             "dur": max(0, _us(end) - _us(start)), "args": args})
    for tid in sorted(tids_seen):
        trace_events.append(
            {"ph": "M", "pid": _PID, "tid": tid, "name": "thread_name",
             "args": {"name": f"browser-{tid}"}})
    trace_events.sort(key=lambda e: (0 if e["ph"] == "M" else 1,
                                     e.get("ts", 0), e["tid"],
                                     e.get("name", "")))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"source": "repro telemetry spans",
                          "clock": "virtual-seconds"}}


def chrome_trace_to_json(trace: Dict[str, Any]) -> str:
    """Serialise deterministically (the golden-file representation)."""
    return json.dumps(trace, indent=1, sort_keys=True) + "\n"

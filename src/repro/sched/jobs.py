"""Persistent crawl job queue.

One row per site. Jobs move ``pending → leased → completed | failed``:

* ``claim`` leases the lowest-id ready job to a worker and consumes one
  attempt; the lease carries an expiry time, so a worker that dies
  mid-job does not strand the site — :meth:`reclaim_expired` returns the
  job to ``pending`` (or ``failed`` once attempts are exhausted).
* ``fail`` with ``retry=True`` re-queues the job with exponential
  backoff; the jitter added to each delay is *deterministic* — derived
  from ``(seed, site_url, attempt)`` — so a re-run of the same crawl
  schedules retries identically.
* The table lives in its own SQLite database (never the crawl
  database), so queue bookkeeping cannot perturb crawl-data
  determinism, and an interrupted crawl can be resumed by re-opening
  the queue file: completed sites stay completed, stale leases are
  released, and ``enqueue`` is idempotent (INSERT OR IGNORE on
  ``site_url``).

All access is serialized through one lock; the connection is shared
across worker threads (``check_same_thread=False``). File-backed queues
additionally run in WAL mode with a generous ``busy_timeout`` so that
*cross-process* claimants (``--worker-procs``) contend by waiting on
SQLite's lock instead of surfacing transient ``database is locked``
errors to the scheduler.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.clock import VirtualClock

#: Job states.
PENDING = "pending"
LEASED = "leased"
COMPLETED = "completed"
FAILED = "failed"
STATES = (PENDING, LEASED, COMPLETED, FAILED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id INTEGER PRIMARY KEY AUTOINCREMENT,
    site_url TEXT NOT NULL UNIQUE,
    status TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    not_before REAL NOT NULL DEFAULT 0.0,
    lease_owner TEXT,
    lease_expires_at REAL,
    enqueued_at REAL NOT NULL DEFAULT 0.0,
    claimed_at REAL,
    finished_at REAL,
    last_error TEXT DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_jobs_ready
    ON jobs (status, not_before, job_id);
"""


class LeaseError(RuntimeError):
    """A worker acted on a job whose lease it no longer holds."""


@dataclass
class Job:
    """A claimed job, as handed to a worker."""

    job_id: int
    site_url: str
    attempts: int
    enqueued_at: float
    claimed_at: float
    lease_owner: str


@dataclass
class ReclaimResult:
    """What one :meth:`JobQueue.reclaim_expired` sweep did.

    ``requeued`` leases went back to ``pending``; ``failed_jobs`` had
    no attempts left and went terminal — the pool reports those and
    runs its terminal-failure hook so the loss ledger stays complete.
    """

    requeued: int = 0
    failed_jobs: List[Job] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.requeued + len(self.failed_jobs)

    def __bool__(self) -> bool:
        return self.total > 0


def jitter_fraction(seed: int, site_url: str, attempt: int) -> float:
    """Deterministic jitter in [0, 1) for one (site, attempt) pair."""
    digest = hashlib.sha256(
        f"{seed}:{site_url}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class JobQueue:
    """SQLite-backed job queue with lease-based claiming."""

    def __init__(self, path: str = ":memory:", *, seed: int = 0,
                 max_attempts: int = 3, lease_seconds: float = 300.0,
                 backoff_base: float = 0.5, backoff_cap: float = 60.0,
                 clock: Optional[VirtualClock] = None) -> None:
        self.path = path
        self.seed = seed
        self.max_attempts = max_attempts
        self.lease_seconds = lease_seconds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.clock = clock if clock is not None else VirtualClock()
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            if path != ":memory:":
                # Cross-process claim contention (one queue file shared
                # by N worker processes) must degrade to *waiting*, not
                # to transient "database is locked" exceptions: WAL
                # lets readers proceed under a writer, and the busy
                # timeout makes writers queue behind each other.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # ------------------------------------------------------------------
    # Backoff policy
    # ------------------------------------------------------------------
    def retry_delay(self, site_url: str, attempt: int) -> float:
        """Exponential backoff plus deterministic per-site jitter."""
        base = min(self.backoff_cap,
                   self.backoff_base * 2.0 ** max(0, attempt - 1))
        return base * (1.0 + jitter_fraction(self.seed, site_url, attempt))

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def enqueue(self, site_urls: Iterable[str]) -> int:
        """Add sites; already-known sites (any state) are left alone.

        Returns the number of *newly* enqueued jobs — the idempotence
        that makes ``--resume`` safe to run with the full site list.
        """
        added = 0
        with self._lock:
            now = self.clock.peek()
            for url in site_urls:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO jobs (site_url, status, "
                    "max_attempts, enqueued_at) VALUES (?, ?, ?, ?)",
                    (url, PENDING, self.max_attempts, now))
                added += cursor.rowcount
            self._conn.commit()
        return added

    def clear(self) -> None:
        """Drop every job (fresh-crawl semantics)."""
        with self._lock:
            self._conn.execute("DELETE FROM jobs")
            self._conn.commit()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, owner: str) -> Optional[Job]:
        """Lease the lowest-id ready job to *owner*, consuming an attempt.

        Cross-process safe: the lease is taken by a *conditional*
        update (``... WHERE status = pending``), so when two processes
        race for the same row exactly one update sticks and the loser
        simply moves on to the next candidate. A select-then-blind-
        update here would let a second claimant silently overwrite the
        first one's lease — the first worker would then run the visit
        only to lose it to a :class:`LeaseError` at completion.
        """
        with self._lock:
            while True:
                now = self.clock.now()
                row = self._conn.execute(
                    "SELECT job_id, site_url, attempts, enqueued_at "
                    "FROM jobs WHERE status = ? AND not_before <= ? "
                    "ORDER BY job_id LIMIT 1", (PENDING, now)).fetchone()
                if row is None:
                    return None
                cursor = self._conn.execute(
                    "UPDATE jobs SET status = ?, lease_owner = ?, "
                    "lease_expires_at = ?, claimed_at = ?, "
                    "attempts = attempts + 1 "
                    "WHERE job_id = ? AND status = ?",
                    (LEASED, owner, now + self.lease_seconds, now,
                     row["job_id"], PENDING))
                self._conn.commit()
                if cursor.rowcount == 0:
                    # Another process won this row between our read and
                    # our write; try the next candidate.
                    continue
                attempts = self._conn.execute(
                    "SELECT attempts FROM jobs WHERE job_id = ?",
                    (row["job_id"],)).fetchone()["attempts"]
                return Job(job_id=row["job_id"],
                           site_url=row["site_url"], attempts=attempts,
                           enqueued_at=row["enqueued_at"],
                           claimed_at=now, lease_owner=owner)

    def job_status(self, job_id: int) -> Optional[str]:
        """The job's current queue state (None if unknown)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT status FROM jobs WHERE job_id = ?",
                (job_id,)).fetchone()
            return row["status"] if row is not None else None

    def _checked_lease(self, job_id: int, owner: str) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,)).fetchone()
        if row is None or row["status"] != LEASED \
                or row["lease_owner"] != owner:
            raise LeaseError(
                f"job {job_id} is not leased to {owner!r} "
                f"(status={row['status'] if row else 'missing'!r})")
        if row["lease_expires_at"] is not None \
                and row["lease_expires_at"] < self.clock.peek():
            # An expired lease is a lost lease even before anyone
            # reclaims it: a worker that hung past its deadline must
            # not fail/retry a job another worker may re-run. (complete
            # is deliberately laxer — see its docstring.)
            raise LeaseError(
                f"job {job_id} lease held by {owner!r} expired at "
                f"{row['lease_expires_at']:.3f} "
                f"(now {self.clock.peek():.3f}); the job is eligible "
                f"for reclaim")
        return row

    def complete(self, job_id: int, owner: str) -> None:
        """Mark a leased job done. Raises :class:`LeaseError` if lost.

        Unlike :meth:`fail`, a *late* completion is accepted even after
        the lease expired, as long as nobody else has taken the job: a
        worker calling ``complete`` is demonstrably alive and its visit
        data is already committed, so voiding the result would only
        force a duplicate re-run of work that succeeded. (Expiry here
        is usually collateral — on the shared virtual clock another
        worker's hang can burn this worker's lease away mid-visit.)
        Two states qualify:

        * still ``leased`` to *owner* (no reclaim happened yet), or
        * requeued as ``pending`` by :meth:`reclaim_expired` but not
          yet re-claimed by anyone.

        Only when another worker holds — or already finished — the job
        does the late completion lose: :class:`LeaseError` is raised
        and the caller must discard its committed visit data.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)).fetchone()
            still_mine = (row is not None and row["status"] == LEASED
                          and row["lease_owner"] == owner)
            requeued_unclaimed = (row is not None
                                  and row["status"] == PENDING
                                  and row["last_error"] == "lease_expired")
            if not (still_mine or requeued_unclaimed):
                raise LeaseError(
                    f"job {job_id} completion by {owner!r} lost the race "
                    f"(status={row['status'] if row else 'missing'!r}, "
                    f"owner={row['lease_owner'] if row else None!r})")
            self._conn.execute(
                "UPDATE jobs SET status = ?, finished_at = ?, "
                "lease_owner = NULL, lease_expires_at = NULL "
                "WHERE job_id = ?", (COMPLETED, self.clock.peek(), job_id))
            self._conn.commit()

    def fail(self, job_id: int, owner: str, error: str = "",
             retry: bool = True) -> str:
        """Record a failed attempt; re-queue with backoff or go terminal.

        Returns the job's resulting state (``pending`` or ``failed``).
        """
        with self._lock:
            row = self._checked_lease(job_id, owner)
            if retry and row["attempts"] < row["max_attempts"]:
                delay = self.retry_delay(row["site_url"], row["attempts"])
                self._conn.execute(
                    "UPDATE jobs SET status = ?, not_before = ?, "
                    "lease_owner = NULL, lease_expires_at = NULL, "
                    "last_error = ? WHERE job_id = ?",
                    (PENDING, self.clock.peek() + delay, error, job_id))
                state = PENDING
            else:
                self._conn.execute(
                    "UPDATE jobs SET status = ?, finished_at = ?, "
                    "lease_owner = NULL, lease_expires_at = NULL, "
                    "last_error = ? WHERE job_id = ?",
                    (FAILED, self.clock.peek(), error, job_id))
                state = FAILED
            self._conn.commit()
            return state

    # ------------------------------------------------------------------
    # Crash safety
    # ------------------------------------------------------------------
    def reclaim_expired(self) -> ReclaimResult:
        """Return timed-out leases to the queue (worker died mid-job).

        Jobs with attempts left go back to ``pending`` (with backoff);
        exhausted jobs go terminally ``failed`` and are returned in
        ``failed_jobs`` so the caller can record the loss.
        """
        with self._lock:
            now = self.clock.peek()
            rows = self._conn.execute(
                "SELECT job_id, site_url, attempts, max_attempts, "
                "enqueued_at, claimed_at, lease_owner "
                "FROM jobs WHERE status = ? AND lease_expires_at < ?",
                (LEASED, now)).fetchall()
            result = ReclaimResult()
            for row in rows:
                if row["attempts"] < row["max_attempts"]:
                    delay = self.retry_delay(row["site_url"],
                                             row["attempts"])
                    self._conn.execute(
                        "UPDATE jobs SET status = ?, not_before = ?, "
                        "lease_owner = NULL, lease_expires_at = NULL, "
                        "last_error = 'lease_expired' WHERE job_id = ?",
                        (PENDING, now + delay, row["job_id"]))
                    result.requeued += 1
                else:
                    self._conn.execute(
                        "UPDATE jobs SET status = ?, finished_at = ?, "
                        "lease_owner = NULL, lease_expires_at = NULL, "
                        "last_error = 'lease_expired' WHERE job_id = ?",
                        (FAILED, now, row["job_id"]))
                    result.failed_jobs.append(Job(
                        job_id=row["job_id"], site_url=row["site_url"],
                        attempts=row["attempts"],
                        enqueued_at=row["enqueued_at"],
                        claimed_at=row["claimed_at"] or 0.0,
                        lease_owner=row["lease_owner"] or ""))
            if rows:
                self._conn.commit()
            return result

    def release_owner(self, owner: str) -> ReclaimResult:
        """Release every lease held by one *known-dead* worker process.

        The process supervisor calls this the moment it reaps a worker:
        unlike :meth:`reclaim_expired` it ignores expiry times (the
        owner is dead, so any lease it held is stale *now*), and unlike
        :meth:`release_leases` it touches only that owner's leases so
        live siblings keep theirs. Jobs with attempts left go back to
        ``pending`` with backoff; exhausted jobs go terminally
        ``failed`` and are returned so the caller can record the loss.
        """
        with self._lock:
            now = self.clock.peek()
            rows = self._conn.execute(
                "SELECT job_id, site_url, attempts, max_attempts, "
                "enqueued_at, claimed_at, lease_owner "
                "FROM jobs WHERE status = ? AND lease_owner = ?",
                (LEASED, owner)).fetchall()
            result = ReclaimResult()
            for row in rows:
                if row["attempts"] < row["max_attempts"]:
                    delay = self.retry_delay(row["site_url"],
                                             row["attempts"])
                    self._conn.execute(
                        "UPDATE jobs SET status = ?, not_before = ?, "
                        "lease_owner = NULL, lease_expires_at = NULL, "
                        "last_error = 'lease_expired' WHERE job_id = ?",
                        (PENDING, now + delay, row["job_id"]))
                    result.requeued += 1
                else:
                    self._conn.execute(
                        "UPDATE jobs SET status = ?, finished_at = ?, "
                        "lease_owner = NULL, lease_expires_at = NULL, "
                        "last_error = 'lease_expired' WHERE job_id = ?",
                        (FAILED, now, row["job_id"]))
                    result.failed_jobs.append(Job(
                        job_id=row["job_id"], site_url=row["site_url"],
                        attempts=row["attempts"],
                        enqueued_at=row["enqueued_at"],
                        claimed_at=row["claimed_at"] or 0.0,
                        lease_owner=row["lease_owner"] or ""))
            if rows:
                self._conn.commit()
            return result

    def release_leases(self) -> int:
        """Release *every* lease (start-of-resume crash recovery).

        Unlike :meth:`reclaim_expired` this ignores expiry times: the
        previous process is known dead, so any lease it held is stale.
        """
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET status = ?, not_before = 0.0, "
                "lease_owner = NULL, lease_expires_at = NULL "
                "WHERE status = ?", (PENDING, LEASED))
            self._conn.commit()
            return cursor.rowcount

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {state: 0 for state in STATES}
            for row in self._conn.execute(
                    "SELECT status, COUNT(*) AS n FROM jobs "
                    "GROUP BY status"):
                out[row["status"]] = int(row["n"])
            return out

    def outstanding(self) -> int:
        """Jobs not yet in a terminal state (pending + leased)."""
        counts = self.counts()
        return counts[PENDING] + counts[LEASED]

    def next_ready_in(self) -> Optional[float]:
        """Seconds until the earliest pending job becomes claimable.

        0.0 when one is ready now; ``None`` when nothing is pending.
        """
        with self._lock:
            return self._next_ready_in_locked()

    def _next_ready_in_locked(self) -> Optional[float]:
        row = self._conn.execute(
            "SELECT MIN(not_before) AS t FROM jobs WHERE status = ?",
            (PENDING,)).fetchone()
        if row is None or row["t"] is None:
            return None
        return max(0.0, float(row["t"]) - self.clock.peek())

    def advance_if_idle(self) -> bool:
        """Jump the clock to the next retry time iff the queue is idle.

        The leased-count check and the advance happen under the queue
        lock — the same lock :meth:`claim` takes — so no job can be
        claimed (and no lease can start ticking) between "nothing is
        leased" and the advance, and concurrent idle workers cannot
        stack advances: the first one moves time, the rest re-check and
        find either a ready job or a live lease. Returns True only when
        the clock actually moved (a :class:`WallClock` advance is a
        no-op — callers must then fall back to a real sleep).
        """
        with self._lock:
            leased = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE status = ?",
                (LEASED,)).fetchone()["n"]
            if leased:
                return False
            hint = self._next_ready_in_locked()
            if hint is None or hint <= 0:
                return False
            before = self.clock.peek()
            self.clock.advance(hint)
            # A real advance jumps by the full hint; a WallClock no-op
            # only shows the sub-millisecond drift between two reads.
            return self.clock.peek() - before >= hint

    def sites(self, status: Optional[str] = None) -> List[str]:
        with self._lock:
            sql = "SELECT site_url FROM jobs"
            params: tuple = ()
            if status is not None:
                sql += " WHERE status = ?"
                params = (status,)
            sql += " ORDER BY job_id"
            return [row["site_url"]
                    for row in self._conn.execute(sql, params)]

    def job_rows(self) -> List[Dict[str, object]]:
        with self._lock:
            return [dict(row) for row in self._conn.execute(
                "SELECT * FROM jobs ORDER BY job_id")]

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

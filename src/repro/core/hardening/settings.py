"""Stealth configuration (paper Sec. 6.1.5).

OpenWPM hard-codes window size and position; the hardening introduces a
settings file making them configurable so a crawler can blend in with
desktop browsers. ``StealthSettings.plausible()`` yields the geometry of
an ordinary desktop Firefox.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class StealthSettings:
    """Window geometry + behaviour switches for a hardened crawl."""

    window_size: Tuple[int, int] = (1280, 940)
    window_position: Tuple[int, int] = (214, 97)
    #: Override navigator.webdriver to the regular-Firefox value.
    hide_webdriver: bool = True
    #: Archive all response bodies (Sec. 6.2.3: filtering is not robust
    #: against active adversaries).
    save_content: str = "all"

    @classmethod
    def plausible(cls) -> "StealthSettings":
        """Geometry indistinguishable from a human-driven Firefox."""
        return cls()

    def apply_to_browser_params(self, params) -> None:
        """Copy the stealth geometry into a BrowserParams object."""
        params.window_size = self.window_size
        params.window_position = self.window_position
        params.stealth = True
        params.save_content = self.save_content

"""Differential equivalence harness for the serving layer.

The tentpole guarantee of ``repro.serve``: an answer served from the
incrementally-maintained ``rollups_*`` tables is **byte-for-byte** the
answer the batch pipeline computes from the raw tables. This harness
pins that equivalence across every maintenance path:

* live incremental maintenance during a 2-process scheduled crawl;
* cold backfill (``repro serve build``) on a copy of the same crawl;
* an interrupted crawl resumed from its queue file;
* the retraction paths — a lease race deleting a committed visit, and
  chaos crawls whose failure verdicts are later retracted.

Equivalence is checked three ways at once: ``verify()`` (aggregate
state, key by key), the physical rollup state of an incremental crawl
vs a cold rebuild, and the encoded JSON payload of every endpoint vs
its batch twin.
"""

import shutil
import sqlite3

import pytest

from repro.core.lab import make_lab_network
from repro.faults import FaultPlan, FaultRule
from repro.obs.runner import run_telemetry_crawl
from repro.obs.telemetry import Telemetry
from repro.openwpm import BrowserParams, ManagerParams, TaskManager
from repro.serve import batch_state, build, rollup_state, verify
from repro.serve.aggregates import (
    AGGREGATE_BUILDERS,
    encode_payload,
    script_payload,
    site_payload,
    sites_payload,
)

URLS = [f"https://lab.test/site-{i:05d}" for i in range(50)]


def checkpoint(db_path):
    """Fold the WAL into the main file so copies are complete."""
    connection = sqlite3.connect(db_path)
    connection.execute("PRAGMA wal_checkpoint(FULL)")
    connection.close()


def all_payloads(connection, batch=False):
    """Every servable payload, encoded: aggregates, sites, corpus."""
    payloads = {}
    for name, builder in AGGREGATE_BUILDERS.items():
        payloads[f"/aggregates/{name}"] = encode_payload(
            builder(connection, batch=batch))
    listing = sites_payload(connection, batch=batch)
    payloads["/sites"] = encode_payload(listing)
    for url in listing["sites"]:
        payloads[f"/site?url={url}"] = encode_payload(
            site_payload(connection, url, batch=batch))
    for digest, in connection.execute(
            "SELECT content_hash FROM rollups_scripts "
            "UNION SELECT content_hash FROM content "
            "ORDER BY content_hash"):
        payloads[f"/corpus/{digest}"] = encode_payload(
            script_payload(connection, digest, batch=batch))
    return payloads


def assert_serving_equivalent(db_path, tmp_path):
    """The three-way pin: incremental == cold backfill == batch."""
    connection = sqlite3.connect(db_path)
    try:
        report = verify(connection)
        assert report["ok"], report["mismatches"]
        assert report["state"] == "fresh"
        incremental_state = rollup_state(connection)
        assert incremental_state == batch_state(connection)
        incremental = all_payloads(connection)
        assert incremental == all_payloads(connection, batch=True)
    finally:
        connection.close()

    # A cold rebuild on a copy must land the exact same aggregate
    # state and serve the exact same bytes — insertion order must not
    # leak into the read path (WITHOUT ROWID natural-key tables).
    checkpoint(db_path)
    copy = str(tmp_path / "backfill.db")
    shutil.copy(db_path, copy)
    connection = sqlite3.connect(copy)
    try:
        summary = build(connection)
        assert summary["sites"] == len(incremental_state["sites"])
        assert rollup_state(connection) == incremental_state
        assert all_payloads(connection) == incremental
    finally:
        connection.close()


class TestScheduledProcessCrawl:
    """Live maintenance through the multi-process broker path."""

    @pytest.fixture(scope="class")
    def proc_db(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve-proc")
        db_path = str(tmp / "proc.db")
        result = run_telemetry_crawl(
            site_count=12, seed=7, database_path=db_path,
            crash_probability=0.0, browsers=1, web="lab",
            worker_procs=2, queue_path=str(tmp / "proc.queue"))
        report = result.report
        result.close()
        assert report.drained
        assert report.completed == 12
        return db_path

    def test_incremental_equals_backfill_equals_batch(self, proc_db,
                                                      tmp_path):
        assert_serving_equivalent(proc_db, tmp_path)

    def test_rollups_survive_reopen(self, proc_db):
        """Reopening the crawl database (consistency probe) must keep
        cleanly-committed rollups fresh — no spurious stale marks."""
        from repro.openwpm.storage import StorageController

        storage = StorageController(proc_db)
        try:
            assert storage.rollups.is_fresh()
        finally:
            storage.close()


class TestInterruptedResume:
    def test_resumed_crawl_serves_equivalent(self, tmp_path):
        db_path = str(tmp_path / "resume.db")
        queue_path = str(tmp_path / "resume.queue")
        first = run_telemetry_crawl(
            site_count=20, seed=7, database_path=db_path,
            crash_probability=0.0, browsers=2, web="lab", workers=2,
            queue_path=queue_path, stop_after_jobs=7)
        interrupted = first.report.interrupted
        first.close()
        assert interrupted

        # Mid-crawl state must already serve correctly...
        assert_serving_equivalent(db_path, tmp_path)

        # ...and so must the finished crawl after --resume.
        second = run_telemetry_crawl(
            site_count=20, seed=7, database_path=db_path,
            crash_probability=0.0, browsers=2, web="lab", workers=2,
            queue_path=queue_path, resume=True)
        report = second.report
        second.close()
        assert report.drained
        assert_serving_equivalent(db_path, tmp_path)


class TestRetractionPaths:
    def make_manager(self, db_path, fault_plan=None, **params):
        return TaskManager(
            ManagerParams(database_path=db_path, seed=3,
                          num_browsers=1, crash_probability=0.0,
                          fault_plan=fault_plan, **params),
            [BrowserParams(browser_id=0, dwell_time=1.0, seed=3)],
            make_lab_network(), telemetry=Telemetry())

    def test_lease_race_retraction(self, tmp_path):
        """A lost lease deletes the committed visit; the rollups must
        retract its whole delta, not just the visit count."""
        db_path = str(tmp_path / "race.db")
        queue_path = str(tmp_path / "race.queue")
        sabotaged = []

        def steal_lease(browser, result):
            if sabotaged:
                return
            sabotaged.append(result.requested_url)
            connection = sqlite3.connect(queue_path)
            connection.execute(
                "UPDATE jobs SET lease_owner = 'intruder', "
                "lease_expires_at = 0")
            connection.commit()
            connection.close()

        manager = self.make_manager(db_path)
        report = manager.crawl_scheduled(
            URLS[:1], workers=1, queue_path=queue_path,
            callbacks=[steal_lease], max_attempts=2,
            lease_seconds=50.0)
        assert report.drained and report.lease_lost == 1
        assert manager.telemetry.metrics.counter_value(
            "visits_discarded") == 1
        manager.close()
        assert_serving_equivalent(db_path, tmp_path)

    def test_chaos_crawl_with_quarantine_retraction(self, tmp_path):
        """Crash/hang faults drive the failure ledger and quarantine
        circuit breaker; a later clean pass retracts stale verdicts.
        Every hook still leaves rollups == batch."""
        db_path = str(tmp_path / "chaos.db")
        plan = FaultPlan([
            FaultRule(fault="crash", site="site-00001"),
            FaultRule(fault="crash", site="site-00003", times=2),
        ], seed=11)
        manager = self.make_manager(db_path, fault_plan=plan,
                                    quarantine_after=2,
                                    failure_limit=3)
        manager.crawl_scheduled(
            URLS[:6], workers=1,
            queue_path=str(tmp_path / "chaos.queue"), max_attempts=3)
        manager.close()
        assert_serving_equivalent(db_path, tmp_path)

        # The retraction pass: a clean re-crawl of a quarantined /
        # failed site withdraws its ledger rows through the storage
        # hooks (retract_failed_visits / retract_quarantine).
        manager = self.make_manager(db_path)
        manager.crawl_scheduled(
            URLS[:6], workers=1,
            queue_path=str(tmp_path / "chaos2.queue"), max_attempts=2)
        manager.close()
        assert_serving_equivalent(db_path, tmp_path)

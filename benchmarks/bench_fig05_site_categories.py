"""Fig. 5: categories of sites with first-/third-party detectors."""

from conftest import report


def test_benchmark_fig5(benchmark, bench_world, bench_scan):
    from repro.core.scan.categories import category_shares

    tallies = benchmark(bench_scan.fig5, bench_world.tranco)

    third = dict(category_shares(tallies["third_party"], top=16))
    first = dict(category_shares(tallies["first_party"], top=16))

    lines = ["(paper: News leads third-party inclusions at 18.4%; "
             "Shopping leads first-party at 16.4%; Finance/Travel skew "
             "first-party)", "",
             "| category | third-party share | first-party share |",
             "|---|---|---|"]
    for category in sorted(set(third) | set(first),
                           key=lambda c: -third.get(c, 0)):
        lines.append(f"| {category} | {third.get(category, 0):.3f} | "
                     f"{first.get(category, 0):.3f} |")
    report("fig05_site_categories",
           "Fig 5 - categories of sites with detectors", lines)

    # News leads the third-party ranking.
    assert max(third, key=third.get) == "News"
    # Shopping is more prominent among first-party detector sites.
    assert first.get("Shopping", 0) > third.get("Shopping", 0)
    # News is less prominent among first-party detector sites.
    assert first.get("News", 1) < third.get("News", 0)

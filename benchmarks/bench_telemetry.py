"""Telemetry subsystem: overhead guard + crawl-health reconciliation.

Two properties worth guarding:

* the observability layer must be close to free — the disabled
  (null-object) path is the default for every experiment, and even the
  enabled path has to stay under 10% wall-clock overhead on a crawl
  workload;
* a telemetered crawl's books must balance exactly — every enqueued
  site accounted for as completed or given-up, every counter matching
  the SQLite tables (the paper's antidote to silent data loss).
"""

from conftest import (BENCH_SEED, measure_recorder_overhead,
                      measure_telemetry_overhead, report)

OVERHEAD_LIMIT_PCT = 10.0
RECORDER_OVERHEAD_LIMIT_PCT = 5.0


def test_benchmark_telemetry_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: measure_telemetry_overhead(site_count=1000, rounds=3),
        rounds=1, iterations=1)

    lines = [
        "(telemetry must cost <10% wall-clock on a 1000-site crawl)",
        "",
        "| mode | seconds (best of 3) |",
        "|---|---|",
        f"| telemetry disabled | {result['disabled_seconds']:.3f} |",
        f"| telemetry enabled | {result['enabled_seconds']:.3f} |",
        f"| overhead | {result['overhead_pct']:.2f}% |",
    ]
    report("telemetry_overhead", "Telemetry - wall-clock overhead",
           lines)

    assert result["overhead_pct"] < OVERHEAD_LIMIT_PCT, result


def test_benchmark_recorder_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: measure_recorder_overhead(site_count=120),
        rounds=1, iterations=1)

    lines = [
        "(flight recorder + JS profiler must cost <5% CPU time on top",
        "of an already-telemetered, JS-instrumented 120-site crawl)",
        "",
        f"| mode | CPU seconds (best of {result['rounds']}"
        " subprocess-isolated pairs) |",
        "|---|---|",
        f"| telemetry only | {result['baseline_seconds']:.3f} |",
        f"| + journal + profiler | {result['recorded_seconds']:.3f} |",
        f"| overhead | {result['overhead_pct']:.2f}% |",
    ]
    report("recorder_overhead",
           "Flight recorder - CPU overhead", lines)

    assert result["overhead_pct"] < RECORDER_OVERHEAD_LIMIT_PCT, result


def test_benchmark_crawl_reconciliation(benchmark):
    from repro.obs.runner import run_telemetry_crawl
    from repro.obs.stats import build_crawl_report, render_crawl_report

    def crawl_and_report():
        result = run_telemetry_crawl(site_count=1000, seed=BENCH_SEED,
                                     crash_probability=0.05)
        try:
            return build_crawl_report(result.storage,
                                      telemetry=result.telemetry)
        finally:
            result.close()

    crawl_report = benchmark.pedantic(crawl_and_report, rounds=1,
                                      iterations=1)

    report("telemetry_reconciliation",
           "Telemetry - 1000-site crawl health report",
           render_crawl_report(crawl_report).splitlines())

    tele = crawl_report["telemetry"]
    assert tele["visits_attempted"] == 1000
    assert tele["visits_attempted"] == (
        tele["visits_completed"] + tele["visits_failed_exhausted"])
    assert crawl_report["reconciliation"]
    assert crawl_report["reconciled"], crawl_report["reconciliation"]

"""OpenWPM's cookie instrument.

Wraps the browser's cookie-change notifications (``onCookieChanged`` in
the real extension). Like the HTTP instrument it sits below the page, so
page scripts cannot attack it directly — the paper's RQ5-RQ8 analysis
confirms this class of instrument is only breakable by breaking the
browser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.browser.cookies import Cookie
from repro.net.url import etld_plus_one
from repro.obs.telemetry import Telemetry, coalesce


@dataclass
class CookieRecord:
    """One observed cookie change."""

    change: str
    host: str
    name: str
    value: str
    is_session: bool
    is_http_only: bool
    lifetime: Optional[float]
    first_party: str
    via_javascript: bool

    @property
    def is_third_party(self) -> bool:
        if not self.first_party:
            return False
        return etld_plus_one(self.host.lstrip(".")) != etld_plus_one(
            self.first_party)


class CookieInstrument:
    """Records every cookie addition/change."""

    name = "cookie_instrument"

    def __init__(self, storage: Any = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.storage = storage
        self.telemetry = coalesce(telemetry)
        self.records: List[CookieRecord] = []

    def on_cookie_change(self, cookie: Cookie, change: str) -> None:
        record = CookieRecord(
            change=change,
            host=cookie.domain,
            name=cookie.name,
            value=cookie.value,
            is_session=cookie.is_session,
            is_http_only=cookie.http_only,
            lifetime=cookie.lifetime(),
            first_party=cookie.first_party_host,
            via_javascript=cookie.via_javascript,
        )
        self.records.append(record)
        self.telemetry.metrics.counter("records_written",
                                       instrument="cookie").inc()
        if self.storage is not None:
            self.storage.record_cookie(
                change_cause=change, host=record.host, name=record.name,
                value=record.value, path=cookie.path,
                is_session=record.is_session,
                is_http_only=record.is_http_only,
                expiry=cookie.expires_at, first_party=record.first_party,
                via_javascript=record.via_javascript)

    def first_party_cookies(self) -> List[CookieRecord]:
        return [r for r in self.records if not r.is_third_party]

    def third_party_cookies(self) -> List[CookieRecord]:
        return [r for r in self.records if r.is_third_party]

    def clear_records(self) -> None:
        self.records.clear()

"""Tests for the synthetic-web servers' endpoint behaviour."""

import pytest

from repro.net.http import HttpRequest
from repro.net.network import ClientIdentity, Network
from repro.net.url import URL
from repro.web.servers import (
    BOT_INTEL,
    DetectorProviderServer,
    SiteServer,
    TrackerServer,
    flag_client,
    published_age,
    sync_intel,
)
from repro.web.sitegen import SiteConfig
from repro.web.tranco import TrancoSite


def make_config(**kwargs):
    site = TrancoSite(rank=1, domain="unit.test", categories=("News",))
    return SiteConfig(site=site, **kwargs)


def get(server, url, client=None, network=None):
    return server.handle(
        HttpRequest(url=URL.parse(url), resource_type="other"),
        client or ClientIdentity("unit-client"),
        network or Network())


class TestSiteServer:
    def test_front_page_is_pagespec(self):
        response = get(SiteServer(make_config()),
                       "https://www.unit.test/")
        assert response.page is not None
        assert response.page.csp_header == ""

    def test_front_page_sets_baseline_cookies(self):
        response = get(SiteServer(make_config()),
                       "https://www.unit.test/")
        names = {c.name for c in response.set_cookies}
        assert names == {"session_id", "prefs"}

    def test_csp_blocking_site_header(self):
        config = make_config(csp_blocking=True,
                             third_party_detectors=["yandex.ru"])
        response = get(SiteServer(config), "https://www.unit.test/")
        header = response.page.csp_header
        assert "script-src" in header
        assert "'unsafe-inline'" not in header
        assert "yandex.ru" in header
        assert "report-uri /csp-report" in header

    def test_intrinsic_violation_site_allows_inline(self):
        config = make_config(csp_intrinsic_violation=True)
        response = get(SiteServer(config), "https://www.unit.test/")
        assert "'unsafe-inline'" in response.page.csp_header
        assert any(getattr(item, "src", "").startswith(
            "https://rogue-cdn.example")
            for item in response.page.items if hasattr(item, "src"))

    def test_app_js_served(self):
        response = get(SiteServer(make_config()),
                       "https://www.unit.test/js/app.js")
        assert "javascript" in response.content_type
        assert "fetch" in response.body

    def test_detector_only_on_configured_subpage(self):
        config = make_config(sub_detector_form="plain",
                             sub_detector_page=2,
                             third_party_detectors=["yandex.ru"])
        server = SiteServer(config)
        page1 = get(server, "https://www.unit.test/p/1.html").page
        page2 = get(server, "https://www.unit.test/p/2.html").page
        def has_tag(page):
            return any("tag.js" in getattr(item, "src", "")
                       for item in page.items if hasattr(item, "src"))
        assert not has_tag(page1)
        assert has_tag(page2)

    def test_vendor_telemetry_flags_client(self):
        config = make_config(first_party_vendor="Akamai",
                             first_party_path="/akam/11/abc")
        server = SiteServer(config)
        network = Network()
        client = ClientIdentity("bot-x")
        get(server, "https://www.unit.test/akamai/telemetry?score=10&bot=1",
            client=client, network=network)
        assert network.state[BOT_INTEL].get("bot-x") is True
        # The site's own analytics now withholds the uid cookie.
        response = get(server, "https://www.unit.test/analytics/collect",
                       client=client, network=network)
        assert response.set_cookies == []

    def test_analytics_grants_uid_to_unflagged(self):
        server = SiteServer(make_config())
        response = get(server, "https://www.unit.test/analytics/collect")
        assert any(c.name == "_fp_uid" for c in response.set_cookies)

    def test_unknown_path_404(self):
        assert get(SiteServer(make_config()),
                   "https://www.unit.test/nothing-here").status == 404

    def test_static_asset_content_types(self):
        server = SiteServer(make_config())
        assert get(server, "https://www.unit.test/img/x.png") \
            .content_type == "image/png"
        assert get(server, "https://www.unit.test/css/main.css") \
            .content_type == "text/css"
        assert get(server, "https://www.unit.test/media/clip.mp4") \
            .content_type == "video/mp4"


class TestDetectorProviderServer:
    def test_tag_form_selection(self):
        server = DetectorProviderServer("prov.test")
        plain = get(server, "https://prov.test/tag.js?form=plain")
        obfuscated = get(server,
                         "https://prov.test/tag.js?form=obfuscated")
        assert "navigator.webdriver" in plain.body
        assert "webdriver" not in obfuscated.body

    def test_report_collects_verdicts(self):
        server = DetectorProviderServer("prov.test")
        network = Network()
        client = ClientIdentity("c9")
        get(server, "https://prov.test/report?bot=1&site=x", client,
            network)
        get(server, "https://prov.test/report?bot=0&site=y", client,
            network)
        assert server.reports["c9"] == [True, False]
        assert network.state[BOT_INTEL].get("c9") is True


class TestTrackerServer:
    def test_gated_script_for_cloaking_provider(self):
        cloaking = TrackerServer("ads.test", cloaks=True)
        honest = TrackerServer("metrics.test", cloaks=False)
        assert "_botDetected" in get(
            cloaking, "https://ads.test/track.js").body
        assert "_botDetected" not in get(
            honest, "https://metrics.test/track.js").body

    def test_raw_intel_activation(self):
        server = TrackerServer("ads.test", cloaks=True,
                               activation_delay=0)
        network = Network()
        client = ClientIdentity("raw-bot")
        flag_client(network, client)
        response = server.handle(
            HttpRequest(url=URL.parse("https://ads.test/pixel?uid=u1x2"),
                        resource_type="image"), client, network)
        assert not any(c.name.startswith("_trk_")
                       for c in response.set_cookies)

    def test_delayed_activation_waits_for_sync(self):
        server = TrackerServer("ads.test", cloaks=True,
                               activation_delay=1)
        network = Network()
        client = ClientIdentity("late-bot")
        flag_client(network, client)
        assert server._is_bot(client, network) is False
        sync_intel(network)
        assert server._is_bot(client, network) is True

    def test_extra_uid_cookie(self):
        server = TrackerServer("ads.test", cloaks=True,
                               extra_uid_cookie=True)
        response = get(server, "https://ads.test/pixel?uid=u123456789")
        trk = [c.name for c in response.set_cookies
               if c.name.startswith(("_trk_", "_trkx_"))]
        assert len(trk) == 2

    def test_ad_fill_levels(self):
        network = Network()
        client = ClientIdentity("fill-bot")
        flag_client(network, client)
        sync_intel(network)
        frames = {}
        for fill in ("full", "partial", "none"):
            server = TrackerServer("ads.test", cloaks=True,
                                   bot_ad_fill=fill)
            body = server._ad_script(client, network)
            frames[fill] = body
        assert "impression" in frames["full"]
        assert "impression" not in frames["partial"]
        assert "viewability" in frames["partial"]
        assert "beacon" not in frames["none"]

    def test_published_age_increments_only_for_flagged(self):
        network = Network()
        flagged = ClientIdentity("f")
        clean = ClientIdentity("c")
        flag_client(network, flagged)
        sync_intel(network)
        assert published_age(network, flagged) == 1
        assert published_age(network, clean) == 0


class TestChallengeInterstitial:
    def _vendor_server(self, vendor="PerimeterX"):
        config = make_config(first_party_vendor=vendor,
                             first_party_path="/0a1b2c3d/init.js")
        return SiteServer(config)

    def test_unflagged_client_gets_full_site(self):
        server = self._vendor_server()
        response = get(server, "https://www.unit.test/")
        assert response.page.title != "One more step..."
        assert server.challenges_served == {}

    def test_flagged_client_gets_captcha_on_revisit(self):
        server = self._vendor_server()
        network = Network()
        client = ClientIdentity("blocked-bot")
        get(server, "https://www.unit.test/perimeterx/telemetry?bot=1",
            client=client, network=network)
        response = get(server, "https://www.unit.test/", client=client,
                       network=network)
        assert response.page.title == "One more step..."
        assert len(response.page.items) == 2
        assert server.challenges_served["blocked-bot"] == 1

    def test_soft_vendors_do_not_block(self):
        server = self._vendor_server(vendor="Akamai")
        network = Network()
        client = ClientIdentity("soft-bot")
        get(server, "https://www.unit.test/akamai/telemetry?bot=1",
            client=client, network=network)
        response = get(server, "https://www.unit.test/", client=client,
                       network=network)
        assert response.page.title != "One more step..."

    def test_challenge_assets_served(self):
        server = self._vendor_server()
        assert "javascript" in get(
            server,
            "https://www.unit.test/challenge/check.js").content_type
        assert get(server,
                   "https://www.unit.test/challenge/puzzle.png"
                   ).content_type == "image/png"

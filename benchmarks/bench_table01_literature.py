"""Table 1: measurement characteristics of 72 OpenWPM studies."""

from conftest import report

PAPER = {
    "measures": {"http": 56, "cookies": 35, "javascript": 22, "other": 6},
    "interaction": {"none": 55, "clicking": 11, "scrolling": 8,
                    "typing": 5},
    "subpages": {"visited": 19, "not_visited": 53},
    "bot_detection": {"discussed": 17, "ignored": 55},
}


def test_benchmark_table1(benchmark):
    from repro.literature import summarise_studies

    summary = benchmark(summarise_studies)

    lines = ["| category | item | paper | reproduced |",
             "|---|---|---|---|"]
    for category, items in PAPER.items():
        for item, expected in items.items():
            lines.append(f"| {category} | {item} | {expected} | "
                         f"{summary[category][item]} |")
    report("table01_literature", "Table 1 - OpenWPM study survey", lines)

    assert summary["measures"] == PAPER["measures"]
    assert summary["interaction"] == PAPER["interaction"]
    assert summary["subpages"] == PAPER["subpages"]
    assert summary["bot_detection"]["discussed"] \
        == PAPER["bot_detection"]["discussed"]

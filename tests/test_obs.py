"""Unit tests for the telemetry subsystem (tracing, metrics, export)."""

from __future__ import annotations

import json

import pytest

from repro.obs.clock import VirtualClock, WallClock
from repro.obs.export import (
    metrics_to_prometheus,
    snapshot_to_json,
    spans_to_tree_lines,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, coalesce
from repro.obs.tracing import NullTracer, Tracer


class TestVirtualClock:
    def test_advances_one_tick_per_reading(self):
        clock = VirtualClock(tick=0.25)
        assert clock.now() == pytest.approx(0.25)
        assert clock.now() == pytest.approx(0.5)

    def test_peek_does_not_advance(self):
        clock = VirtualClock(tick=1.0)
        clock.now()
        assert clock.peek() == pytest.approx(1.0)
        assert clock.peek() == pytest.approx(1.0)

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(10.0)
        assert clock.peek() == pytest.approx(10.0)

    def test_wall_clock_is_monotonic(self):
        clock = WallClock()
        assert clock.now() <= clock.now()

    def test_wall_clock_peek(self):
        # The scheduler's queue/pool/stage code calls peek() on
        # whichever clock it is given; WallClock must provide it.
        clock = WallClock()
        assert clock.peek() <= clock.now()


class TestThreadSafety:
    """Worker threads share one Telemetry; nothing may corrupt."""

    def test_concurrent_spans_keep_per_thread_trees(self):
        import threading

        tracer = Tracer()
        errors = []

        def work():
            try:
                for _ in range(200):
                    with tracer.span("outer"):
                        with tracer.span("inner"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        spans = tracer.finished_spans()
        assert len(spans) == 4 * 200 * 2
        # A concurrently-ended span must never unwind another thread's
        # in-flight spans: nothing may be marked orphaned, and every
        # trace is exactly one outer root plus one inner child of it.
        assert all(span.status == "ok" for span in spans)
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        for members in by_trace.values():
            names = sorted(span.name for span in members)
            assert names == ["inner", "outer"]
            outer = next(s for s in members if s.name == "outer")
            inner = next(s for s in members if s.name == "inner")
            assert outer.parent_id is None
            assert inner.parent_id == outer.span_id

    def test_concurrent_counter_increments_not_lost(self):
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def work():
            for _ in range(5000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * 5000

    def test_concurrent_get_or_create_returns_one_instrument(self):
        import threading

        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def work():
            handle = registry.counter("shared", label="x")
            with lock:
                seen.append(handle)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(handle is seen[0] for handle in seen)


class TestTracer:
    def test_root_span_has_no_parent(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("visit") as span:
            assert span.parent_id is None
        (finished,) = tracer.finished_spans()
        assert finished.name == "visit"
        assert finished.end_time > finished.start_time

    def test_nesting_propagates_trace_and_parent(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("visit") as root:
            with tracer.span("page_load") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                with tracer.span("fetch") as grandchild:
                    assert grandchild.parent_id == child.span_id
                    assert grandchild.trace_id == root.trace_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("visit") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = tracer.spans_named("a") + tracer.spans_named("b")
        assert a.parent_id == b.parent_id == root.span_id
        assert len(tracer.children_of(root)) == 2

    def test_new_roots_get_new_trace_ids(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.finished_spans()
        assert first.trace_id != second.trace_id

    def test_ids_are_deterministic(self):
        def run():
            tracer = Tracer(clock=VirtualClock())
            with tracer.span("visit", url="https://a.test/"):
                with tracer.span("page_load"):
                    pass
            return tracer.snapshot()

        assert run() == run()

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock=VirtualClock())
        with pytest.raises(ValueError):
            with tracer.span("visit"):
                raise ValueError("boom")
        (span,) = tracer.finished_spans()
        assert span.status == "error:ValueError"
        assert span.end_time is not None

    def test_attributes_survive_to_snapshot(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("visit", url="https://x.test/") as span:
            span.set_attribute("outcome", "completed")
        (entry,) = tracer.snapshot()
        assert entry["attributes"]["url"] == "https://x.test/"
        assert entry["attributes"]["outcome"] == "completed"

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", url="x") as span:
            span.set_attribute("ignored", 1)
            span.set_status("error:nope")
        assert tracer.finished_spans() == []


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("visits").inc()
        registry.counter("visits").inc(2.0)
        assert registry.counter_value("visits") == pytest.approx(3.0)

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("visits").inc(-1.0)

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("records_written", instrument="js").inc()
        registry.counter("records_written", instrument="http").inc(4)
        assert registry.counter_value("records_written",
                                      instrument="js") == 1
        assert registry.counter_value("records_written",
                                      instrument="http") == 4
        assert registry.sum_counter("records_written") == 5

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("recording_integrity")
        gauge.set(1.0)
        gauge.dec(1.0)
        assert registry.gauge_value("recording_integrity") == 0.0
        gauge.inc(0.5)
        assert registry.gauge_value("recording_integrity") == 0.5

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_bucketing(self):
        histogram = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 2, 1, 1]
        assert histogram.cumulative_buckets() == [
            (0.1, 1), (1.0, 3), (10.0, 4), (float("inf"), 5)]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)
        assert histogram.mean == pytest.approx(56.05 / 5)

    def test_histogram_boundary_is_inclusive(self):
        histogram = Histogram("latency", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts == [1, 0, 0]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("latency", buckets=(2.0, 1.0))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("visits").inc()
        registry.histogram("stage_seconds", stage="page_load").observe(0.2)
        snapshot = registry.snapshot()
        kinds = {entry["name"]: entry["kind"] for entry in snapshot}
        assert kinds == {"visits": "counter",
                         "stage_seconds": "histogram"}
        histogram_entry = next(e for e in snapshot
                               if e["kind"] == "histogram")
        assert histogram_entry["labels"] == {"stage": "page_load"}
        assert histogram_entry["count"] == 1

    def test_null_registry_is_inert(self):
        registry = NullMetricsRegistry()
        registry.counter("x").inc()
        registry.gauge("y").set(5.0)
        registry.histogram("z").observe(1.0)
        assert registry.snapshot() == []

    def test_restore_bypasses_delta_hook(self):
        # Resume carry-forward replays totals the *previous* run already
        # journalled; firing the flight-recorder hook for them would
        # double-count every counter in the journal reconciliation.
        first = MetricsRegistry()
        first.counter("visits_completed").inc(392.0)
        first.gauge("queue_depth", state="pending").set(7.0)
        second = MetricsRegistry()
        deltas = []
        second.set_on_delta(lambda inst, value: deltas.append(
            (inst.name, value)))
        second.restore(first.snapshot())
        assert deltas == []
        assert second.counter_value("visits_completed") == 392.0
        assert second.gauge_value("queue_depth", state="pending") == 7.0
        # fresh activity after the restore still reaches the hook
        second.counter("visits_completed").inc()
        assert deltas == [("visits_completed", 1.0)]
        assert second.counter_value("visits_completed") == 393.0


class TestTelemetry:
    def test_stage_records_span_and_histogram(self):
        telemetry = Telemetry()
        with telemetry.stage("page_load"):
            pass
        (span,) = telemetry.tracer.finished_spans()
        assert span.name == "page_load"
        (metric,) = telemetry.metrics.snapshot()
        assert metric["name"] == "stage_seconds"
        assert metric["labels"] == {"stage": "page_load"}
        assert metric["count"] == 1

    def test_disabled_telemetry_is_null(self):
        telemetry = Telemetry.disabled()
        assert not telemetry.enabled
        with telemetry.stage("page_load"):
            telemetry.metrics.counter("x").inc()
        assert telemetry.snapshot() == {"spans": [], "metrics": []}

    def test_coalesce(self):
        assert coalesce(None) is NULL_TELEMETRY
        telemetry = Telemetry()
        assert coalesce(telemetry) is telemetry

    def test_snapshot_round_trips_through_json(self):
        telemetry = Telemetry()
        with telemetry.stage("page_load"):
            pass
        telemetry.metrics.counter("visits").inc()
        snapshot = telemetry.snapshot()
        assert json.loads(snapshot_to_json(snapshot)) == json.loads(
            json.dumps(snapshot, default=str))


class TestExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("visits_attempted").inc(3)
        registry.gauge("recording_integrity").set(1.0)
        registry.histogram("stage_seconds", buckets=(0.1, 1.0),
                           stage="page_load").observe(0.5)
        return registry

    def test_prometheus_counter_and_gauge_lines(self):
        text = metrics_to_prometheus(self._registry().snapshot())
        assert "# TYPE repro_visits_attempted counter" in text
        assert "repro_visits_attempted 3" in text
        assert "# TYPE repro_recording_integrity gauge" in text
        assert "repro_recording_integrity 1" in text

    def test_prometheus_histogram_lines(self):
        text = metrics_to_prometheus(self._registry().snapshot())
        assert ('repro_stage_seconds_bucket'
                '{stage="page_load",le="0.1"} 0') in text
        assert ('repro_stage_seconds_bucket'
                '{stage="page_load",le="1"} 1') in text
        assert ('repro_stage_seconds_bucket'
                '{stage="page_load",le="+Inf"} 1') in text
        assert 'repro_stage_seconds_count{stage="page_load"} 1' in text

    def test_span_tree_rendering(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("visit"):
            with tracer.span("page_load"):
                pass
        lines = spans_to_tree_lines(tracer.snapshot())
        visit_line = next(line for line in lines
                          if line.strip().startswith("visit"))
        child_line = next(line for line in lines if "page_load" in line)
        # Trace header at depth 0, root span at depth 1, child at 2.
        assert visit_line.startswith("  visit")
        assert child_line.startswith("    page_load")


class TestHistogramQuantile:
    from repro.obs.export import histogram_quantile as _hq

    _hq = staticmethod(_hq)

    def test_empty_histogram_returns_zero(self):
        assert self._hq(0.5, [1.0, 2.0], [0, 0, 0]) == 0.0

    def test_interpolates_within_bucket(self):
        # 30 observations spread 10/10/10 over (0,1], (1,2], (2,3]:
        # the median falls halfway through the second bucket.
        assert self._hq(0.5, [1.0, 2.0, 3.0],
                        [10, 10, 10, 0]) == pytest.approx(1.5)

    def test_quantile_in_first_bucket_starts_at_zero(self):
        assert self._hq(0.5, [10.0], [4, 0]) == pytest.approx(5.0)

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        # Nearly everything landed beyond the largest finite bound;
        # there is no upper edge to interpolate toward.
        assert self._hq(0.99, [1.0, 2.0, 3.0], [0, 0, 1, 5]) == 3.0

    def test_matches_exact_bucket_edge(self):
        assert self._hq(1.0, [1.0, 2.0], [5, 5, 0]) == pytest.approx(2.0)


class TestPrometheusQuantilesAndHelp:
    def _labelled_registry(self):
        registry = MetricsRegistry()
        registry.counter("visits_attempted").inc(3)
        for stage, value in (("page_load", 0.5), ("dwell", 1.5)):
            registry.histogram("stage_seconds", buckets=(0.1, 1.0, 2.0),
                               stage=stage).observe(value)
        return registry

    def test_every_family_has_help_and_type(self):
        text = metrics_to_prometheus(self._labelled_registry().snapshot())
        lines = text.splitlines()
        families = {line.split("{")[0].split(" ")[0] for line in lines
                    if line and not line.startswith("#")}
        for family in families:
            base = family
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix):
                    base = family[:-len(suffix)]
            assert any(line.startswith(f"# HELP {base} ")
                       for line in lines), base
            assert any(line.startswith(f"# TYPE {base} ")
                       for line in lines), base

    def test_known_metric_uses_curated_help(self):
        text = metrics_to_prometheus(self._labelled_registry().snapshot())
        assert ("# HELP repro_visits_attempted "
                "Sites the crawl attempted to visit.") in text

    def test_quantile_gauges_exported_with_labels(self):
        text = metrics_to_prometheus(self._labelled_registry().snapshot())
        assert "# TYPE repro_stage_seconds_p50 gauge" in text
        assert "# TYPE repro_stage_seconds_p95 gauge" in text
        assert "# TYPE repro_stage_seconds_p99 gauge" in text
        # One 0.5s observation in (0.1, 1.0]: the median interpolates
        # to 0.55 — PromQL's histogram_quantile() estimate.
        assert 'repro_stage_seconds_p50{stage="page_load"} 0.55' in text
        assert 'repro_stage_seconds_p50{stage="dwell"}' in text

    def test_quantile_family_samples_stay_consecutive(self):
        # Exposition format forbids interleaving families: with two
        # labelled stage_seconds histograms, both _p50 samples must sit
        # together rather than split around _p95/_p99 lines.
        text = metrics_to_prometheus(self._labelled_registry().snapshot())
        family_of = []
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    name = name[:-len(suffix)]
            if family_of and family_of[-1] == name:
                continue
            family_of.append(name)
        assert len(family_of) == len(set(family_of)), family_of

"""Scheduler integration: determinism, parity, crash-resume, dwell.

The acceptance criteria for the scheduled-crawl subsystem:

* a 1-worker scheduled crawl writes a **byte-identical** crawl database
  to the plain sequential path (same storage statements, same order);
* a 4-worker crawl of a couple hundred synthetic sites produces the
  same per-site record counts as the sequential crawl;
* an interrupted crawl resumed with the same queue file finishes the
  remainder without re-visiting (duplicating) completed sites, and the
  queue reconciles to zero pending.
"""

import hashlib

import pytest

from repro.core.lab import make_lab_network
from repro.obs.telemetry import Telemetry
from repro.openwpm import BrowserParams, ManagerParams, TaskManager

SITE_COUNT = 200


def lab_urls(count):
    return [f"https://lab.test/site-{i:05d}" for i in range(count)]


def make_manager(database_path=":memory:", browsers=1, seed=3,
                 crash_probability=0.0, telemetry=None):
    return TaskManager(
        ManagerParams(database_path=database_path, seed=seed,
                      num_browsers=browsers,
                      crash_probability=crash_probability),
        [BrowserParams(browser_id=i, dwell_time=1.0, seed=seed + i)
         for i in range(browsers)],
        make_lab_network(), telemetry=telemetry)


def file_sha256(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def per_site_counts(storage, table):
    return {row["site_url"]: int(row["n"]) for row in storage.query(
        f"SELECT v.site_url AS site_url, COUNT(t.id) AS n "
        f"FROM site_visits v LEFT JOIN {table} t "
        f"ON t.visit_id = v.visit_id GROUP BY v.site_url")}


class TestDeterminism:
    def test_one_worker_db_byte_identical_to_sequential(self, tmp_path):
        """The determinism pin: scheduling must not perturb crawl data.

        Crash injection is on, so the retry/restart machinery runs in
        both paths too.
        """
        urls = lab_urls(40)
        seq_path = str(tmp_path / "sequential.sqlite")
        sched_path = str(tmp_path / "scheduled.sqlite")

        manager = make_manager(seq_path, crash_probability=0.1)
        manager.crawl(urls)
        manager.close()

        manager = make_manager(sched_path, crash_probability=0.1)
        report = manager.crawl_scheduled(urls, workers=1)
        manager.close()

        assert report.completed + report.failed == len(urls)
        assert file_sha256(seq_path) == file_sha256(sched_path)


class TestParallelParity:
    def test_four_workers_match_sequential_record_counts(self):
        urls = lab_urls(SITE_COUNT)

        sequential = make_manager(browsers=1)
        sequential.crawl(urls)

        parallel = make_manager(browsers=4)
        report = parallel.crawl_scheduled(urls, workers=4)

        assert report.completed == SITE_COUNT
        assert report.drained
        for table in ("http_requests", "http_responses",
                      "javascript_cookies"):
            assert per_site_counts(parallel.storage, table) \
                == per_site_counts(sequential.storage, table), table
        visits = parallel.storage.query(
            "SELECT COUNT(*) AS n, COUNT(DISTINCT site_url) AS d "
            "FROM site_visits")[0]
        assert visits["n"] == SITE_COUNT
        assert visits["d"] == SITE_COUNT
        sequential.close()
        parallel.close()

    def test_workers_capped_by_browser_slots(self):
        manager = make_manager(browsers=2)
        with pytest.raises(ValueError):
            manager.crawl_scheduled(lab_urls(4), workers=3)
        manager.close()


class TestCrashResume:
    def test_resume_finishes_without_duplicating_visits(self, tmp_path):
        urls = lab_urls(60)
        db_path = str(tmp_path / "crawl.sqlite")
        queue_path = str(tmp_path / "crawl.queue")

        # First process: crawl part of the list, then "die" (graceful
        # stop plays the part of the kill; the queue file is what the
        # next process sees either way).
        first = make_manager(db_path, browsers=2)
        report = first.crawl_scheduled(urls, workers=2,
                                       queue_path=queue_path,
                                       stop_after_jobs=20)
        first.close()
        assert report.interrupted
        completed_first = report.completed
        assert 0 < completed_first < len(urls)

        # Second process: fresh manager over the same database + queue.
        second = make_manager(db_path, browsers=2)
        resumed = second.crawl_scheduled(urls, workers=2,
                                         queue_path=queue_path,
                                         resume=True)
        assert resumed.drained
        assert resumed.counts["pending"] == 0
        assert resumed.counts["leased"] == 0
        assert resumed.counts["completed"] == len(urls)
        assert resumed.completed == len(urls) - completed_first

        # No site was visited twice (crash injection is off).
        rows = second.storage.query(
            "SELECT COUNT(*) AS n, COUNT(DISTINCT site_url) AS d "
            "FROM site_visits")[0]
        assert rows["n"] == rows["d"] == len(urls)
        second.close()

    def test_resume_reconciles_in_stats_report(self, tmp_path):
        from repro.obs.runner import run_telemetry_crawl
        from repro.obs.stats import build_crawl_report
        from repro.sched import JobQueue

        db_path = str(tmp_path / "crawl.sqlite")
        queue_path = str(tmp_path / "crawl.queue")

        first = run_telemetry_crawl(
            site_count=40, database_path=db_path, browsers=2,
            crash_probability=0.05, workers=2, queue_path=queue_path,
            stop_after_jobs=15)
        first.close()

        second = run_telemetry_crawl(
            site_count=40, database_path=db_path, browsers=2,
            crash_probability=0.05, workers=2, queue_path=queue_path,
            resume=True)
        queue = JobQueue(queue_path)
        try:
            report = build_crawl_report(second.storage, queue=queue)
        finally:
            queue.close()
            second.close()
        assert report["scheduler"] is not None
        assert report["queue"]["drained"]
        assert report["reconciled"], report["reconciliation"]


class TestSchedulerTelemetry:
    def test_gauges_histograms_and_counters_recorded(self):
        telemetry = Telemetry()
        manager = make_manager(browsers=2, telemetry=telemetry)
        manager.crawl_scheduled(lab_urls(10), workers=2)

        metrics = telemetry.metrics
        assert metrics.counter_value("sched_jobs_claimed") == 10
        assert metrics.counter_value("sched_jobs_completed") == 10
        assert metrics.gauge_value("sched_queue_depth",
                                   state="completed") == 10
        assert metrics.gauge_value("sched_queue_depth",
                                   state="pending") == 0
        assert metrics.gauge_value("sched_workers_busy") == 0
        assert metrics.histogram("queue_wait_seconds").count == 10
        assert metrics.histogram("lease_duration_seconds").count == 10
        manager.close()

    def test_stats_report_includes_scheduler_section(self):
        from repro.obs.stats import build_crawl_report, \
            render_crawl_report

        telemetry = Telemetry()
        manager = make_manager(browsers=2, telemetry=telemetry)
        manager.crawl_scheduled(lab_urls(10), workers=2)
        manager.storage.persist_telemetry(telemetry.snapshot())
        report = build_crawl_report(manager.storage)
        assert report["scheduler"]["jobs_completed"] == 10
        assert report["reconciled"], report["reconciliation"]
        text = render_crawl_report(report)
        assert "Scheduler" in text
        assert "queue wait (mean s)" in text
        manager.close()


class TestQueueLossLedger:
    def test_worker_fault_retries_then_writes_failed_visit_row(self):
        """A generic handler fault gets one backed-off re-run (default
        ``max_attempts=2``), and its terminal failure lands in
        ``failed_visits`` so the crawl-loss ledger stays complete."""
        manager = make_manager()

        def exploding_callback(browser, result):
            raise RuntimeError("instrument exploded")

        report = manager.crawl_scheduled(
            lab_urls(1), workers=1, callbacks=[exploding_callback])
        assert report.retried == 1
        assert report.failed == 1
        rows = manager.storage.query("SELECT * FROM failed_visits")
        assert len(rows) == 1
        assert rows[0]["site_url"] == lab_urls(1)[0]
        assert "RuntimeError" in rows[0]["reason"]
        assert manager.failed_sites == lab_urls(1)
        manager.close()

    def test_failure_limit_path_writes_exactly_one_row(self):
        """The failure_limit path already records its own row; the
        queue-side hook must not duplicate it."""
        manager = make_manager(crash_probability=1.0)
        report = manager.crawl_scheduled(lab_urls(1), workers=1)
        assert report.failed == 1
        rows = manager.storage.query("SELECT * FROM failed_visits")
        assert len(rows) == 1
        assert rows[0]["reason"] == "failure_limit"
        manager.close()


class TestParallelTelemetryIntegrity:
    def test_four_workers_produce_clean_trace_trees(self):
        """Regression: a shared span stack let one worker's span end
        unwind another worker's in-flight spans (orphaned statuses,
        mis-parenting) and racing counters could lose increments,
        breaking the stats reconciliation under the default CLI path."""
        telemetry = Telemetry()
        manager = make_manager(browsers=4, telemetry=telemetry,
                               crash_probability=0.05)
        urls = lab_urls(80)
        report = manager.crawl_scheduled(urls, workers=4)
        assert report.drained

        spans = telemetry.tracer.finished_spans()
        assert not [s for s in spans if s.status == "error:orphaned"]
        visit_spans = [s for s in spans if s.name == "visit"]
        assert len(visit_spans) == len(urls)
        # Every visit is a root of its own trace; its stages parent to
        # it, never to another worker's visit.
        for span in visit_spans:
            assert span.parent_id is None
        metrics = telemetry.metrics
        assert metrics.counter_value("sched_jobs_completed") \
            == metrics.counter_value("visits_completed") \
            == report.completed
        manager.close()


class TestDwellTime:
    def test_get_passes_dwell_time_through(self):
        """Regression: ``TaskManager.get`` used to drop ``dwell_time``.

        The browser's virtual clock idles for the dwell, so the applied
        value is visible in how far time advanced during the visit.
        """
        manager = make_manager()
        times = []
        callback = [lambda browser, result:
                    times.append(browser.current_time)]
        manager.get("https://lab.test/a", callbacks=callback)
        baseline = times[0]
        manager.get("https://lab.test/b", callbacks=callback,
                    dwell_time=100.0)
        assert times[1] - baseline >= 100.0
        manager.close()

    def test_default_dwell_still_from_browser_params(self):
        manager = make_manager()
        times = []
        manager.get("https://lab.test/a", callbacks=[
            lambda browser, result: times.append(browser.current_time)])
        # dwell_time=1.0 from BrowserParams: the visit idles ~1 virtual
        # second, nowhere near the 100s override exercised above.
        assert times[0] < 50.0
        manager.close()

"""Standard-library builtins and the Realm.

A :class:`Realm` is one JS global environment: the global object, the
standard prototypes (``Object.prototype`` etc.), constructors, ``Math``,
``JSON``, ``console`` and primitive (string/number) method dispatch.
Every page context and every frame gets its own realm, mirroring how
browsers isolate globals per document — which matters for the iframe
instrumentation-bypass attack (paper Sec. 5.4.1).
"""

from __future__ import annotations

import json as _json
import math
import random
from typing import Any, Callable, Dict, List, Optional

from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.errors import JSError
from repro.jsobject.functions import JSFunction, NativeFunction
from repro.jsobject.objects import JSArray, JSObject
from repro.jsobject.values import NULL, UNDEFINED, format_number, js_truthy


class Realm:
    """One JavaScript global environment with its standard builtins."""

    def __init__(self, rng: Optional[random.Random] = None,
                 global_class_name: str = "Window") -> None:
        self.rng = rng or random.Random(0)
        self.console_log: List[str] = []

        self.object_prototype = JSObject(class_name="Object")
        self.function_prototype = JSObject(proto=self.object_prototype,
                                           class_name="Function")
        self.array_prototype = JSObject(proto=self.object_prototype,
                                        class_name="Array")
        self.error_prototype = JSObject(proto=self.object_prototype,
                                        class_name="Error")
        self.global_object = JSObject(proto=self.object_prototype,
                                      class_name=global_class_name)
        self._install_object_prototype()
        self._install_function_prototype()
        self._install_array_prototype()
        self._install_globals()

    # ------------------------------------------------------------------
    def new_object(self) -> JSObject:
        return JSObject(proto=self.object_prototype)

    def new_array(self, elements: Optional[List[Any]] = None) -> JSArray:
        return JSArray(elements or [], proto=self.array_prototype)

    def native(self, name: str,
               fn: Callable[[Any, Any, List[Any]], Any]) -> NativeFunction:
        return NativeFunction(fn, name=name, proto=self.function_prototype)

    # ------------------------------------------------------------------
    # Object.prototype
    # ------------------------------------------------------------------
    def _install_object_prototype(self) -> None:
        proto = self.object_prototype

        def has_own_property(interp, this, args):
            name = _arg_string(interp, args, 0)
            if isinstance(this, JSObject):
                if isinstance(this, JSArray) and (
                        name == "length" or name.isdigit()):
                    return this.has_property(name) and (
                        name == "length" or int(name) < len(this.elements))
                return this.get_own_descriptor(name) is not None
            return False

        def to_string(interp, this, args):
            if isinstance(this, JSObject):
                return f"[object {this.class_name}]"
            return "[object Undefined]"

        def is_prototype_of(interp, this, args):
            candidate = args[0] if args else UNDEFINED
            if not isinstance(candidate, JSObject) or not isinstance(
                    this, JSObject):
                return False
            proto_walker = candidate.proto
            while proto_walker is not None:
                if proto_walker is this:
                    return True
                proto_walker = proto_walker.proto
            return False

        proto.put("hasOwnProperty", self.native("hasOwnProperty",
                                                has_own_property),
                  enumerable=False)
        proto.put("toString", self.native("toString", to_string),
                  enumerable=False)
        proto.put("isPrototypeOf", self.native("isPrototypeOf",
                                               is_prototype_of),
                  enumerable=False)

    # ------------------------------------------------------------------
    # Function.prototype
    # ------------------------------------------------------------------
    def _install_function_prototype(self) -> None:
        proto = self.function_prototype

        def fn_call(interp, this, args):
            if not isinstance(this, JSFunction):
                raise JSError.type_error("Function.prototype.call on non-function")
            bound_this = args[0] if args else UNDEFINED
            return this.call(interp, bound_this, list(args[1:]))

        def fn_apply(interp, this, args):
            if not isinstance(this, JSFunction):
                raise JSError.type_error("Function.prototype.apply on non-function")
            bound_this = args[0] if args else UNDEFINED
            call_args: List[Any] = []
            if len(args) > 1 and isinstance(args[1], JSArray):
                call_args = list(args[1].elements)
            return this.call(interp, bound_this, call_args)

        def fn_bind(interp, this, args):
            if not isinstance(this, JSFunction):
                raise JSError.type_error("Function.prototype.bind on non-function")
            bound_this = args[0] if args else UNDEFINED
            bound_args = list(args[1:])
            target = this

            def bound(interp2, _this2, args2):
                return target.call(interp2, bound_this, bound_args + args2)

            wrapper = self.native(
                f"bound {target.function_name}".strip(), bound)
            wrapper.masquerade_name = target.function_name
            return wrapper

        def fn_to_string(interp, this, args):
            if isinstance(this, JSFunction):
                return this.to_source_string()
            raise JSError.type_error("toString called on non-function")

        proto.put("call", self.native("call", fn_call), enumerable=False)
        proto.put("apply", self.native("apply", fn_apply), enumerable=False)
        proto.put("bind", self.native("bind", fn_bind), enumerable=False)
        proto.put("toString", self.native("toString", fn_to_string),
                  enumerable=False)

    # ------------------------------------------------------------------
    # Array.prototype
    # ------------------------------------------------------------------
    def _install_array_prototype(self) -> None:
        proto = self.array_prototype

        def expect_array(this) -> JSArray:
            if not isinstance(this, JSArray):
                raise JSError.type_error("Array method on non-array")
            return this

        def push(interp, this, args):
            arr = expect_array(this)
            arr.elements.extend(args)
            return float(len(arr.elements))

        def pop(interp, this, args):
            arr = expect_array(this)
            return arr.elements.pop() if arr.elements else UNDEFINED

        def shift(interp, this, args):
            arr = expect_array(this)
            return arr.elements.pop(0) if arr.elements else UNDEFINED

        def index_of(interp, this, args):
            arr = expect_array(this)
            target = args[0] if args else UNDEFINED
            from repro.jsobject.values import js_strict_equals
            for index, value in enumerate(arr.elements):
                if js_strict_equals(value, target):
                    return float(index)
            return -1.0

        def includes(interp, this, args):
            return index_of(interp, this, args) >= 0

        def join(interp, this, args):
            arr = expect_array(this)
            separator = _arg_string(interp, args, 0) if args else ","
            return separator.join(
                "" if (v is UNDEFINED or v is NULL)
                else (interp.to_string(v) if interp else str(v))
                for v in arr.elements)

        def slice(interp, this, args):
            arr = expect_array(this)
            start = int(args[0]) if args and isinstance(
                args[0], (int, float)) else 0
            end = int(args[1]) if len(args) > 1 and isinstance(
                args[1], (int, float)) else len(arr.elements)
            return self.new_array(arr.elements[start:end])

        def concat(interp, this, args):
            arr = expect_array(this)
            elements = list(arr.elements)
            for arg in args:
                if isinstance(arg, JSArray):
                    elements.extend(arg.elements)
                else:
                    elements.append(arg)
            return self.new_array(elements)

        def for_each(interp, this, args):
            arr = expect_array(this)
            fn = args[0] if args else UNDEFINED
            if not isinstance(fn, JSFunction):
                raise JSError.type_error("forEach callback is not a function")
            for index, value in enumerate(list(arr.elements)):
                fn.call(interp, UNDEFINED, [value, float(index), arr])
            return UNDEFINED

        def array_map(interp, this, args):
            arr = expect_array(this)
            fn = args[0] if args else UNDEFINED
            if not isinstance(fn, JSFunction):
                raise JSError.type_error("map callback is not a function")
            return self.new_array([
                fn.call(interp, UNDEFINED, [value, float(index), arr])
                for index, value in enumerate(list(arr.elements))])

        def array_filter(interp, this, args):
            arr = expect_array(this)
            fn = args[0] if args else UNDEFINED
            if not isinstance(fn, JSFunction):
                raise JSError.type_error("filter callback is not a function")
            return self.new_array([
                value for index, value in enumerate(list(arr.elements))
                if js_truthy(fn.call(interp, UNDEFINED,
                                     [value, float(index), arr]))])

        def array_some(interp, this, args):
            arr = expect_array(this)
            fn = args[0] if args else UNDEFINED
            if not isinstance(fn, JSFunction):
                raise JSError.type_error("some callback is not a function")
            return any(js_truthy(fn.call(interp, UNDEFINED,
                                         [value, float(index), arr]))
                       for index, value in enumerate(list(arr.elements)))

        def array_every(interp, this, args):
            arr = expect_array(this)
            fn = args[0] if args else UNDEFINED
            if not isinstance(fn, JSFunction):
                raise JSError.type_error("every callback is not a function")
            return all(js_truthy(fn.call(interp, UNDEFINED,
                                         [value, float(index), arr]))
                       for index, value in enumerate(list(arr.elements)))

        def array_find(interp, this, args):
            arr = expect_array(this)
            fn = args[0] if args else UNDEFINED
            if not isinstance(fn, JSFunction):
                raise JSError.type_error("find callback is not a function")
            for index, value in enumerate(list(arr.elements)):
                if js_truthy(fn.call(interp, UNDEFINED,
                                     [value, float(index), arr])):
                    return value
            return UNDEFINED

        def array_reduce(interp, this, args):
            arr = expect_array(this)
            fn = args[0] if args else UNDEFINED
            if not isinstance(fn, JSFunction):
                raise JSError.type_error(
                    "reduce callback is not a function")
            elements = list(arr.elements)
            if len(args) > 1:
                accumulator = args[1]
                start = 0
            else:
                if not elements:
                    raise JSError.type_error(
                        "reduce of empty array with no initial value")
                accumulator = elements[0]
                start = 1
            for index in range(start, len(elements)):
                accumulator = fn.call(
                    interp, UNDEFINED,
                    [accumulator, elements[index], float(index), arr])
            return accumulator

        def array_reverse(interp, this, args):
            arr = expect_array(this)
            arr.elements.reverse()
            return arr

        def array_sort(interp, this, args):
            arr = expect_array(this)
            comparator = args[0] if args else UNDEFINED
            if isinstance(comparator, JSFunction):
                import functools

                def compare(a, b):
                    result = comparator.call(interp, UNDEFINED, [a, b])
                    try:
                        value = float(result)
                    except (TypeError, ValueError):
                        value = 0.0
                    return -1 if value < 0 else (1 if value > 0 else 0)

                arr.elements.sort(key=functools.cmp_to_key(compare))
            else:
                # Default sort: by string representation (JS semantics).
                arr.elements.sort(
                    key=lambda v: interp.to_string(v) if interp else str(v))
            return arr

        for name, fn in [("push", push), ("pop", pop), ("shift", shift),
                         ("indexOf", index_of), ("includes", includes),
                         ("join", join), ("slice", slice),
                         ("concat", concat), ("forEach", for_each),
                         ("map", array_map), ("filter", array_filter),
                         ("some", array_some), ("every", array_every),
                         ("find", array_find), ("reduce", array_reduce),
                         ("reverse", array_reverse), ("sort", array_sort)]:
            proto.put(name, self.native(name, fn), enumerable=False)

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------
    def _install_globals(self) -> None:
        g = self.global_object
        g.put("undefined", UNDEFINED, writable=False, enumerable=False)
        g.put("NaN", math.nan, writable=False, enumerable=False)
        g.put("Infinity", math.inf, writable=False, enumerable=False)

        g.put("Object", self._make_object_constructor(), enumerable=False)
        g.put("Array", self._make_array_constructor(), enumerable=False)
        for kind in ("Error", "TypeError", "RangeError", "ReferenceError",
                     "SyntaxError"):
            g.put(kind, self._make_error_constructor(kind), enumerable=False)
        g.put("Math", self._make_math(), enumerable=False)
        g.put("JSON", self._make_json(), enumerable=False)
        g.put("console", self._make_console(), enumerable=False)
        g.put("String", self._make_string_constructor(), enumerable=False)
        g.put("Number", self._make_number_constructor(), enumerable=False)
        g.put("Boolean", self.native(
            "Boolean", lambda i, t, a: js_truthy(a[0]) if a else False),
            enumerable=False)

        def parse_int(interp, this, args):
            text = _arg_string(interp, args, 0).strip()
            base = int(args[1]) if len(args) > 1 and isinstance(
                args[1], (int, float)) else 10
            negative = text.startswith("-")
            if text.startswith(("+", "-")):
                text = text[1:]
            if base == 16 and text.lower().startswith("0x"):
                text = text[2:]
            digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:base]
            end = 0
            for char in text.lower():
                if char not in digits:
                    break
                end += 1
            if end == 0:
                return math.nan
            value = float(int(text[:end], base))
            return -value if negative else value

        def parse_float(interp, this, args):
            text = _arg_string(interp, args, 0).strip()
            end = len(text)
            while end > 0:
                try:
                    return float(text[:end])
                except ValueError:
                    end -= 1
            return math.nan

        g.put("parseInt", self.native("parseInt", parse_int),
              enumerable=False)
        g.put("parseFloat", self.native("parseFloat", parse_float),
              enumerable=False)
        g.put("isNaN", self.native(
            "isNaN",
            lambda i, t, a: math.isnan(i.to_number(a[0]) if i else 0.0)
            if a else True), enumerable=False)

    def _make_object_constructor(self) -> NativeFunction:
        def object_call(interp, this, args):
            if args and isinstance(args[0], JSObject):
                return args[0]
            return self.new_object()

        constructor = NativeFunction(
            object_call, name="Object", proto=self.function_prototype,
            constructor=lambda interp, args: object_call(interp, None, args))
        constructor.put("prototype", self.object_prototype, writable=False,
                        enumerable=False)

        def keys(interp, this, args):
            obj = args[0] if args else UNDEFINED
            if not isinstance(obj, JSObject):
                return self.new_array([])
            if isinstance(obj, JSArray):
                names = [str(i) for i in range(len(obj.elements))]
                names += [n for n, d in obj.properties.items()
                          if d.enumerable]
                return self.new_array(names)
            return self.new_array([
                name for name, desc in obj.properties.items()
                if desc.enumerable])

        def get_own_property_names(interp, this, args):
            obj = args[0] if args else UNDEFINED
            if not isinstance(obj, JSObject):
                return self.new_array([])
            return self.new_array(list(obj.own_keys()))

        def define_property(interp, this, args):
            obj = args[0] if args else UNDEFINED
            if not isinstance(obj, JSObject):
                raise JSError.type_error(
                    "Object.defineProperty called on non-object")
            name = _arg_string(interp, args, 1)
            attributes = args[2] if len(args) > 2 else UNDEFINED
            if not isinstance(attributes, JSObject):
                raise JSError.type_error("property descriptor must be object")
            desc = PropertyDescriptor(
                enumerable=js_truthy(attributes.get("enumerable", interp)),
                configurable=js_truthy(
                    attributes.get("configurable", interp)),
            )
            getter = attributes.get("get", interp)
            setter = attributes.get("set", interp)
            if isinstance(getter, JSFunction) or isinstance(
                    setter, JSFunction):
                desc.get = getter if isinstance(getter, JSFunction) else None
                desc.set = setter if isinstance(setter, JSFunction) else None
            else:
                desc.value = attributes.get("value", interp)
                desc.writable = js_truthy(attributes.get("writable", interp))
            try:
                obj.define_property(name, desc)
            except TypeError as exc:
                raise JSError.type_error(str(exc)) from exc
            return obj

        def get_own_property_descriptor(interp, this, args):
            obj = args[0] if args else UNDEFINED
            if not isinstance(obj, JSObject):
                return UNDEFINED
            name = _arg_string(interp, args, 1)
            desc = obj.get_own_descriptor(name)
            if desc is None:
                return UNDEFINED
            result = self.new_object()
            if desc.is_accessor:
                result.put("get", desc.get if desc.get else UNDEFINED)
                result.put("set", desc.set if desc.set else UNDEFINED)
            else:
                result.put("value", desc.value)
                result.put("writable", desc.writable)
            result.put("enumerable", desc.enumerable)
            result.put("configurable", desc.configurable)
            return result

        def get_prototype_of(interp, this, args):
            obj = args[0] if args else UNDEFINED
            if isinstance(obj, JSObject):
                return obj.proto if obj.proto is not None else NULL
            return NULL

        def create(interp, this, args):
            proto_arg = args[0] if args else UNDEFINED
            proto = proto_arg if isinstance(proto_arg, JSObject) else None
            return JSObject(proto=proto)

        def freeze(interp, this, args):
            obj = args[0] if args else UNDEFINED
            if isinstance(obj, JSObject):
                obj.extensible = False
                for desc in obj.properties.values():
                    desc.writable = False
                    desc.configurable = False
            return obj

        for name, fn in [("keys", keys),
                         ("getOwnPropertyNames", get_own_property_names),
                         ("defineProperty", define_property),
                         ("getOwnPropertyDescriptor",
                          get_own_property_descriptor),
                         ("getPrototypeOf", get_prototype_of),
                         ("create", create),
                         ("freeze", freeze)]:
            constructor.put(name, self.native(name, fn), enumerable=False)
        return constructor

    def _make_array_constructor(self) -> NativeFunction:
        def array_call(interp, this, args):
            if len(args) == 1 and isinstance(args[0], (int, float)) \
                    and not isinstance(args[0], bool):
                return self.new_array([UNDEFINED] * int(args[0]))
            return self.new_array(list(args))

        constructor = NativeFunction(
            array_call, name="Array", proto=self.function_prototype,
            constructor=lambda interp, args: array_call(interp, None, args))
        constructor.put("prototype", self.array_prototype, writable=False,
                        enumerable=False)
        constructor.put("isArray", self.native(
            "isArray", lambda i, t, a: bool(a) and isinstance(a[0], JSArray)),
            enumerable=False)

        def array_from(interp, this, args):
            source = args[0] if args else UNDEFINED
            if isinstance(source, JSArray):
                return self.new_array(list(source.elements))
            if isinstance(source, str):
                return self.new_array(list(source))
            if isinstance(source, JSObject):
                length = source.get("length", interp)
                if isinstance(length, (int, float)):
                    return self.new_array([
                        source.get(str(i), interp)
                        for i in range(int(length))])
            return self.new_array([])

        constructor.put("from", self.native("from", array_from),
                        enumerable=False)
        return constructor

    def _make_error_constructor(self, kind: str) -> NativeFunction:
        def construct(interp, args):
            message = ""
            if args and args[0] is not UNDEFINED:
                message = interp.to_string(args[0]) if interp else str(args[0])
            if interp is not None:
                error = interp.make_error(kind, message)
            else:
                from repro.jsobject.errors import make_error_object
                error = make_error_object(kind, message)
            error.proto = self.error_prototype
            return error

        constructor = NativeFunction(
            lambda interp, this, args: construct(interp, args),
            name=kind, proto=self.function_prototype,
            constructor=construct)
        constructor.put("prototype", self.error_prototype, writable=False,
                        enumerable=False)
        return constructor

    def _make_math(self) -> JSObject:
        math_object = self.new_object()
        math_object.class_name = "Math"

        def one_arg(fn):
            return lambda interp, this, args: (
                fn(interp.to_number(args[0]) if interp else float(args[0]))
                if args else math.nan)

        math_object.put("floor", self.native(
            "floor", one_arg(lambda x: float(math.floor(x))
                             if not math.isnan(x) and not math.isinf(x)
                             else x)), enumerable=False)
        math_object.put("ceil", self.native(
            "ceil", one_arg(lambda x: float(math.ceil(x))
                            if not math.isnan(x) and not math.isinf(x)
                            else x)), enumerable=False)
        math_object.put("round", self.native(
            "round", one_arg(lambda x: float(math.floor(x + 0.5))
                             if not math.isnan(x) and not math.isinf(x)
                             else x)), enumerable=False)
        math_object.put("abs", self.native("abs", one_arg(abs)),
                        enumerable=False)
        math_object.put("sqrt", self.native(
            "sqrt", one_arg(lambda x: math.sqrt(x) if x >= 0 else math.nan)),
            enumerable=False)
        math_object.put("random", self.native(
            "random", lambda interp, this, args: self.rng.random()),
            enumerable=False)
        math_object.put("max", self.native(
            "max", lambda interp, this, args: max(
                (float(a) for a in args), default=-math.inf)),
            enumerable=False)
        math_object.put("min", self.native(
            "min", lambda interp, this, args: min(
                (float(a) for a in args), default=math.inf)),
            enumerable=False)
        math_object.put("pow", self.native(
            "pow", lambda interp, this, args: float(args[0]) ** float(args[1])
            if len(args) > 1 else math.nan), enumerable=False)
        math_object.put("PI", math.pi, writable=False, enumerable=False)
        return math_object

    def _make_json(self) -> JSObject:
        json_object = self.new_object()
        json_object.class_name = "JSON"

        def stringify(interp, this, args):
            value = args[0] if args else UNDEFINED
            if value is UNDEFINED:
                return UNDEFINED
            return _json.dumps(js_to_python(value, interp),
                               separators=(",", ":"))

        def parse(interp, this, args):
            text = _arg_string(interp, args, 0)
            try:
                data = _json.loads(text)
            except ValueError as exc:
                raise JSError.syntax_error(
                    f"JSON.parse: {exc}") from exc
            return python_to_js(data, self)

        json_object.put("stringify", self.native("stringify", stringify),
                        enumerable=False)
        json_object.put("parse", self.native("parse", parse),
                        enumerable=False)
        return json_object

    def _make_console(self) -> JSObject:
        console = self.new_object()
        console.class_name = "Console"

        def log(interp, this, args):
            rendered = " ".join(
                interp.to_string(a) if interp else str(a) for a in args)
            self.console_log.append(rendered)
            return UNDEFINED

        for name in ("log", "warn", "error", "info", "debug"):
            console.put(name, self.native(name, log), enumerable=False)
        return console

    def _make_string_constructor(self) -> NativeFunction:
        def string_call(interp, this, args):
            if not args:
                return ""
            return interp.to_string(args[0]) if interp else str(args[0])

        constructor = NativeFunction(
            string_call, name="String", proto=self.function_prototype,
            constructor=lambda interp, args: string_call(interp, None, args))
        constructor.put("fromCharCode", self.native(
            "fromCharCode",
            lambda interp, this, args: "".join(
                chr(int(a)) for a in args
                if isinstance(a, (int, float)))), enumerable=False)
        return constructor

    def _make_number_constructor(self) -> NativeFunction:
        def number_call(interp, this, args):
            if not args:
                return 0.0
            return interp.to_number(args[0]) if interp else float(args[0])

        constructor = NativeFunction(
            number_call, name="Number", proto=self.function_prototype,
            constructor=lambda interp, args: number_call(interp, None, args))
        constructor.put("isInteger", self.native(
            "isInteger", lambda i, t, a: bool(a) and isinstance(
                a[0], (int, float)) and not isinstance(a[0], bool)
            and float(a[0]).is_integer()), enumerable=False)
        constructor.put("MAX_SAFE_INTEGER", float(2**53 - 1),
                        writable=False, enumerable=False)
        return constructor

    # ------------------------------------------------------------------
    # Primitive member dispatch (auto-boxing)
    # ------------------------------------------------------------------
    def get_primitive_member(self, value: Any, name: str,
                             interp: Any) -> Any:
        # Exact-type dispatch: engine values are always exact str/float/
        # bool (the lexer and coercions never produce subclasses), and
        # this is the hottest builtins path under the compiled backend
        # (every `s.length` / `s.charCodeAt(...)` on a primitive lands
        # here).
        kind = type(value)
        if kind is str:
            return self._string_member(value, name, interp)
        if kind is bool:
            if name == "toString":
                return self.native(
                    "toString",
                    lambda i, t, a, v=value: "true" if v else "false")
            return UNDEFINED
        if kind is float or kind is int:
            return self._number_member(float(value), name)
        return UNDEFINED

    def _string_member(self, value: str, name: str, interp: Any) -> Any:
        if name == "length":
            return float(len(value))
        if name.isdigit():
            index = int(name)
            return value[index] if index < len(value) else UNDEFINED
        methods = _STRING_METHODS.get(name)
        if methods is None:
            return UNDEFINED
        return NativeFunction(
            lambda i, t, a, v=value, fn=methods: fn(self, i, v, a),
            name=name, proto=self.function_prototype)

    def _number_member(self, value: float, name: str) -> Any:
        if name == "toString":
            return self.native(
                "toString", lambda i, t, a, v=value: _number_to_string(v, a))
        if name == "toFixed":
            return self.native(
                "toFixed",
                lambda i, t, a, v=value: f"{v:.{int(a[0]) if a else 0}f}")
        return UNDEFINED


def _number_to_string(value: float, args: List[Any]) -> str:
    if args and isinstance(args[0], (int, float)):
        base = int(args[0])
        if base != 10:
            integer = int(value)
            if integer == 0:
                return "0"
            digits = "0123456789abcdefghijklmnopqrstuvwxyz"
            negative = integer < 0
            integer = abs(integer)
            out = []
            while integer:
                out.append(digits[integer % base])
                integer //= base
            return ("-" if negative else "") + "".join(reversed(out))
    return format_number(value)


def _arg_string(interp: Any, args: List[Any], index: int) -> str:
    if index >= len(args):
        return "undefined"
    value = args[index]
    if interp is not None:
        return interp.to_string(value)
    from repro.jsobject.values import to_js_string
    return to_js_string(value)


# String methods: fn(realm, interp, subject, args) -> value
def _sm_index_of(realm, interp, subject, args):
    needle = _arg_string(interp, args, 0)
    start = int(args[1]) if len(args) > 1 and isinstance(
        args[1], (int, float)) else 0
    return float(subject.find(needle, start))


def _sm_includes(realm, interp, subject, args):
    return _arg_string(interp, args, 0) in subject


def _sm_slice(realm, interp, subject, args):
    start = int(args[0]) if args and isinstance(args[0], (int, float)) else 0
    end = int(args[1]) if len(args) > 1 and isinstance(
        args[1], (int, float)) else len(subject)
    return subject[slice(*_normalise_range(start, end, len(subject)))]


def _normalise_range(start: int, end: int, length: int):
    if start < 0:
        start = max(0, length + start)
    if end < 0:
        end = max(0, length + end)
    return start, end


def _sm_substring(realm, interp, subject, args):
    start = int(args[0]) if args and isinstance(args[0], (int, float)) else 0
    end = int(args[1]) if len(args) > 1 and isinstance(
        args[1], (int, float)) else len(subject)
    start = max(0, min(start, len(subject)))
    end = max(0, min(end, len(subject)))
    if start > end:
        start, end = end, start
    return subject[start:end]


def _sm_char_at(realm, interp, subject, args):
    index = int(args[0]) if args and isinstance(args[0], (int, float)) else 0
    return subject[index] if 0 <= index < len(subject) else ""


def _sm_char_code_at(realm, interp, subject, args):
    index = int(args[0]) if args and isinstance(args[0], (int, float)) else 0
    return float(ord(subject[index])) if 0 <= index < len(subject) \
        else math.nan


def _sm_split(realm, interp, subject, args):
    if not args or args[0] is UNDEFINED:
        return realm.new_array([subject])
    separator = _arg_string(interp, args, 0)
    if separator == "":
        return realm.new_array(list(subject))
    return realm.new_array(subject.split(separator))


def _sm_replace(realm, interp, subject, args):
    pattern = _arg_string(interp, args, 0)
    replacement = _arg_string(interp, args, 1)
    return subject.replace(pattern, replacement, 1)


def _sm_replace_all(realm, interp, subject, args):
    pattern = _arg_string(interp, args, 0)
    replacement = _arg_string(interp, args, 1)
    return subject.replace(pattern, replacement)


_STRING_METHODS: Dict[str, Callable] = {
    "indexOf": _sm_index_of,
    "includes": _sm_includes,
    "slice": _sm_slice,
    "substring": _sm_substring,
    "charAt": _sm_char_at,
    "charCodeAt": _sm_char_code_at,
    "split": _sm_split,
    "replace": _sm_replace,
    "replaceAll": _sm_replace_all,
    "toLowerCase": lambda realm, interp, s, a: s.lower(),
    "toUpperCase": lambda realm, interp, s, a: s.upper(),
    "trim": lambda realm, interp, s, a: s.strip(),
    "startsWith": lambda realm, interp, s, a: s.startswith(
        _arg_string(interp, a, 0)),
    "endsWith": lambda realm, interp, s, a: s.endswith(
        _arg_string(interp, a, 0)),
    "concat": lambda realm, interp, s, a: s + "".join(
        _arg_string(interp, a, i) for i in range(len(a))),
    "repeat": lambda realm, interp, s, a: s * int(a[0]) if a else "",
    "toString": lambda realm, interp, s, a: s,
    "padStart": lambda realm, interp, s, a: s.rjust(
        int(a[0]) if a else 0,
        _arg_string(interp, a, 1) if len(a) > 1 else " "),
}


# ---------------------------------------------------------------------------
# Python <-> JS data conversion (used by JSON and by host-side tooling)
# ---------------------------------------------------------------------------
def js_to_python(value: Any, interp: Any = None) -> Any:
    """Convert a JS value tree into plain Python data (JSON-shaped)."""
    if value is UNDEFINED or value is NULL:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return int(value) if value.is_integer() and abs(value) < 2**53 \
            else value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, JSArray):
        return [js_to_python(v, interp) for v in value.elements]
    if isinstance(value, JSFunction):
        return None
    if isinstance(value, JSObject):
        return {name: js_to_python(value.get(name, interp), interp)
                for name, desc in value.properties.items()
                if desc.enumerable}
    raise TypeError(f"not a JS value: {value!r}")


def python_to_js(data: Any, realm: Realm) -> Any:
    """Convert plain Python data into JS values in *realm*."""
    if data is None:
        return NULL
    if isinstance(data, bool):
        return data
    if isinstance(data, (int, float)):
        return float(data)
    if isinstance(data, str):
        return data
    if isinstance(data, (list, tuple)):
        return realm.new_array([python_to_js(item, realm) for item in data])
    if isinstance(data, dict):
        obj = realm.new_object()
        for key, value in data.items():
            obj.put(str(key), python_to_js(value, realm))
        return obj
    raise TypeError(f"cannot convert {data!r} to a JS value")

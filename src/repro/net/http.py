"""HTTP request/response messages and WebExtension resource types."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.url import URL


class ResourceType:
    """WebRequest resource types (the grouping used in Table 8)."""

    MAIN_FRAME = "main_frame"
    SUB_FRAME = "sub_frame"
    SCRIPT = "script"
    IMAGE = "image"
    IMAGESET = "imageset"
    STYLESHEET = "stylesheet"
    FONT = "font"
    MEDIA = "media"
    XHR = "xmlhttprequest"
    BEACON = "beacon"
    WEBSOCKET = "websocket"
    CSP_REPORT = "csp_report"
    OBJECT = "object"
    OTHER = "other"

    ALL = (
        CSP_REPORT, MEDIA, BEACON, WEBSOCKET, XHR, IMAGESET, FONT, OBJECT,
        MAIN_FRAME, IMAGE, SCRIPT, SUB_FRAME, OTHER, STYLESHEET,
    )


_request_ids = itertools.count(1)


@dataclass
class HttpRequest:
    """An outgoing request, as seen by the browser's network layer."""

    url: URL
    resource_type: str = ResourceType.OTHER
    method: str = "GET"
    headers: Dict[str, str] = field(default_factory=dict)
    body: str = ""
    #: URL of the top-level document that caused this request.
    top_frame_url: Optional[URL] = None
    #: URL of the frame issuing the request (top frame or iframe).
    frame_url: Optional[URL] = None
    #: URL of the script that triggered the request, if any.
    initiator_script: Optional[str] = None
    #: Cookie header value attached by the cookie jar.
    cookie_header: str = ""
    request_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def host(self) -> str:
        return self.url.host

    def is_third_party(self) -> bool:
        """Third-party relative to the top frame (eTLD+1 comparison)."""
        from repro.net.url import same_site

        if self.top_frame_url is None:
            return False
        return not same_site(self.url.host, self.top_frame_url.host)


@dataclass
class HttpResponse:
    """A server response."""

    status: int = 200
    content_type: str = "text/html"
    headers: Dict[str, str] = field(default_factory=dict)
    body: str = ""
    #: ``Set-Cookie`` payloads (one per cookie).
    set_cookies: List["SetCookie"] = field(default_factory=list)
    #: Redirect target for 3xx responses.
    location: Optional[str] = None
    #: Host-side payload: a page specification for main_frame/sub_frame
    #: responses (the structured equivalent of the HTML body).
    page: object = None
    #: Host-side payload: script source for script responses.
    script: object = None

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308) \
            and self.location is not None

    @classmethod
    def not_found(cls) -> "HttpResponse":
        return cls(status=404, content_type="text/plain", body="not found")

    @classmethod
    def redirect(cls, location: str, status: int = 302) -> "HttpResponse":
        return cls(status=status, location=location)


@dataclass
class SetCookie:
    """A cookie delivered by a response (server-side view)."""

    name: str
    value: str
    domain: str = ""
    path: str = "/"
    #: Lifetime in seconds; None means session cookie.
    max_age: Optional[int] = None
    http_only: bool = False
    secure: bool = False
    same_site: str = "Lax"

    @property
    def is_session(self) -> bool:
        return self.max_age is None

    def header_value(self) -> str:
        parts = [f"{self.name}={self.value}", f"Path={self.path}"]
        if self.domain:
            parts.append(f"Domain={self.domain}")
        if self.max_age is not None:
            parts.append(f"Max-Age={self.max_age}")
        if self.http_only:
            parts.append("HttpOnly")
        if self.secure:
            parts.append("Secure")
        parts.append(f"SameSite={self.same_site}")
        return "; ".join(parts)

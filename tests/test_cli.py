"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, json.loads(captured.out)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.os == "ubuntu" and args.mode == "regular"

    def test_scan_arguments(self):
        args = build_parser().parse_args(
            ["scan", "--sites", "100", "--front-only"])
        assert args.sites == 100 and args.front_only


class TestCommands:
    def test_survey(self, capsys):
        code, out = run_cli(capsys, ["survey"])
        assert code == 0
        assert out["table1"]["total"] == 72
        assert out["table14"]["outdated_days"] == 540

    def test_audit_regular(self, capsys):
        code, out = run_cli(capsys, ["audit", "--mode", "regular"])
        assert code == 0
        assert out["detected"] is True
        assert out["tampered_properties"] == 252

    def test_audit_without_instrument(self, capsys):
        code, out = run_cli(capsys, ["audit", "--no-instrument"])
        assert code == 0
        assert out["tampered_properties"] == 0
        assert out["detected"] is True  # webdriver still gives it away

    def test_scan_small(self, capsys):
        code, out = run_cli(capsys, ["scan", "--sites", "40",
                                     "--front-only", "--seed", "3"])
        assert code == 0
        assert out["sites"] == 40
        assert "table5" in out and "table11" in out

    def test_attack(self, capsys):
        code, out = run_cli(capsys, ["attack"])
        assert code == 0
        assert out["block-recording"]["vs_wpm"] is True
        assert out["block-recording"]["vs_wpm_hide"] is False
        assert out["sql-injection"]["database_corrupted"] is False

    def test_compare_tiny(self, capsys):
        code, out = run_cli(capsys, ["compare", "--sites", "60",
                                     "--repetitions", "1"])
        assert code == 0
        assert out["detector_sites"] > 0
        assert 0.0 <= out["cookie_wilcoxon_p"] <= 1.0


class TestCrawlCommand:
    def test_crawl_in_memory_drains(self, capsys):
        code, out = run_cli(capsys, ["crawl", "--sites", "20",
                                     "--workers", "2", "--json"])
        assert code == 0
        assert out["drained"] is True
        assert out["completed"] + out["failed"] == 20
        assert out["queue"] == ":memory:"

    def test_crawl_resume_needs_file_queue(self, capsys):
        code = main(["crawl", "--sites", "5", "--resume"])
        captured = capsys.readouterr()
        assert code == 2
        assert "file-backed queue" in captured.err

    def test_crawl_interrupt_then_resume(self, tmp_path, capsys):
        db = str(tmp_path / "crawl.sqlite")
        code, out = run_cli(capsys, [
            "crawl", "--sites", "30", "--workers", "2", "--db", db,
            "--stop-after", "10", "--crash-probability", "0",
            "--json"])
        assert code == 1  # not drained
        assert out["interrupted"] is True
        assert out["queue"] == f"{db}.queue"

        code, out = run_cli(capsys, [
            "crawl", "--sites", "30", "--workers", "2", "--db", db,
            "--crash-probability", "0", "--resume", "--json"])
        assert code == 0
        assert out["resumed"] is True
        assert out["drained"] is True
        assert out["queue_counts"]["completed"] == 30

    def test_stats_reads_crawl_queue(self, tmp_path, capsys):
        db = str(tmp_path / "crawl.sqlite")
        assert run_cli(capsys, ["crawl", "--sites", "15",
                                "--workers", "2", "--db", db,
                                "--json"])[0] == 0
        code, out = run_cli(capsys, ["stats", "--db", db,
                                     "--queue", f"{db}.queue",
                                     "--json"])
        assert code == 0
        assert out["scheduler"]["jobs_completed"] \
            + out["scheduler"]["jobs_failed"] == 15
        assert out["queue"]["drained"] is True
        assert out["reconciled"] is True


class TestObservabilityCommands:
    @pytest.fixture(scope="class")
    def journalled_db(self, tmp_path_factory):
        import contextlib
        import io

        db = str(tmp_path_factory.mktemp("obs") / "crawl.sqlite")
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(["crawl", "--web", "tranco", "--sites", "8",
                         "--workers", "2", "--db", db, "--journal",
                         "--profile", "--crash-probability", "0",
                         "--json"])
        assert code == 0
        out = json.loads(buffer.getvalue())
        assert out["journal"] == db + ".journal"
        assert out["hot_scripts"], "profiled crawl surfaced no scripts"
        return db

    def test_crawl_journal_needs_durable_db(self, capsys):
        code = main(["crawl", "--sites", "3", "--journal"])
        captured = capsys.readouterr()
        assert code == 2
        assert "journal" in captured.err

    def test_stats_autodetects_journal(self, journalled_db, capsys):
        code, out = run_cli(capsys, ["stats", "--db", journalled_db,
                                     "--json"])
        assert code == 0
        assert out["schema_version"] == 3
        assert out["journal"]["directory"] == journalled_db + ".journal"
        assert out["journal"]["events"] > 0
        journal_checks = [c for c in out["reconciliation"]
                          if c["check"].startswith("journal")]
        assert journal_checks and all(c["ok"] for c in journal_checks)
        assert out["reconciled"] is True

    def test_stats_output_writes_report_file(self, journalled_db,
                                             tmp_path, capsys):
        path = tmp_path / "report.json"
        code, out = run_cli(capsys, ["stats", "--db", journalled_db,
                                     "--output", str(path), "--json"])
        assert code == 0
        assert json.loads(path.read_text()) == out

    def test_trace_exports_chrome_trace(self, journalled_db, tmp_path,
                                        capsys):
        path = tmp_path / "trace.json"
        code = main(["trace", journalled_db, "--output", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "trace events" in captured.out
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} <= {"M", "X", "i"}
        assert all({"ph", "pid", "tid", "name"} <= set(e)
                   for e in trace["traceEvents"])

    def test_trace_accepts_journal_directory(self, journalled_db,
                                             capsys):
        code = main(["trace", journalled_db + ".journal"])
        captured = capsys.readouterr()
        assert code == 0
        assert json.loads(captured.out)["traceEvents"]

    def test_trace_rejects_missing_source(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "nope")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no crawl database" in captured.err

    def test_profile_ranks_scripts(self, journalled_db, capsys):
        code, out = run_cli(capsys, ["profile", journalled_db, "--json"])
        assert code == 0
        ops = [row["ops"] for row in out["scripts"]]
        assert ops == sorted(ops, reverse=True) and ops
        assert all(len(row["script_hash"]) == 64
                   for row in out["scripts"])
        assert out["functions"]

    def test_profile_errors_without_journal(self, tmp_path, capsys):
        code = main(["profile", str(tmp_path / "nope")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no crawl database" in captured.err

    def test_profile_errors_on_db_without_journal(self, tmp_path,
                                                  capsys):
        db = str(tmp_path / "plain.db")
        assert main(["crawl", "--sites", "2", "--workers", "1",
                     "--db", db, "--json"]) == 0
        capsys.readouterr()
        code = main(["profile", db])
        captured = capsys.readouterr()
        assert code == 2
        assert "no journal sidecar" in captured.err

    def test_tail_renders_events(self, journalled_db, capsys):
        code = main(["tail", journalled_db, "--max-events", "5",
                     "--type", "visit_complete"])
        captured = capsys.readouterr()
        assert code == 0
        lines = [line for line in captured.out.splitlines() if line]
        assert 0 < len(lines) <= 5
        assert all("visit_complete" in line for line in lines)


class TestServeCommand:
    @pytest.fixture(scope="class")
    def crawl_db(self, tmp_path_factory):
        import contextlib
        import io

        db = str(tmp_path_factory.mktemp("serve") / "crawl.sqlite")
        with contextlib.redirect_stdout(io.StringIO()):
            assert main(["crawl", "--sites", "10", "--workers", "2",
                         "--db", db, "--crash-probability", "0",
                         "--json"]) == 0
        return db

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "x.db"])
        assert args.port == 0 and args.host == "127.0.0.1"
        assert args.cache_capacity == 512 and args.cache_ttl == 30.0
        assert args.extra == []

    def test_parser_accepts_fanout_paths(self):
        args = build_parser().parse_args(["serve", "a.db", "b.db",
                                          "c.db"])
        assert args.db == "a.db"
        assert args.extra == ["b.db", "c.db"]

    def test_serve_rejects_missing_db(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "nope.db")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no crawl database" in captured.err

    def test_build_needs_db_argument(self, capsys):
        code = main(["serve", "build"])
        captured = capsys.readouterr()
        assert code == 2
        assert "needs exactly one database path" in captured.err

    def test_rejects_missing_fanout_member(self, crawl_db, capsys):
        # Extra positionals are fan-out members now; each must exist.
        code = main(["serve", crawl_db, "whatever"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no crawl database at 'whatever'" in captured.err

    def test_build_then_verify_roundtrip(self, crawl_db, capsys):
        code, out = run_cli(capsys, ["serve", "build", crawl_db])
        assert code == 0
        assert out["generation"] > 0
        assert out["sites"] > 0
        assert out["schema_version"] >= 1

        code, out = run_cli(capsys, ["serve", "verify", crawl_db])
        assert code == 0
        assert out["ok"] is True
        assert out["state"] == "fresh"
        assert out["mismatches"] == []

    def test_verify_flags_tampered_rollups(self, crawl_db, tmp_path,
                                           capsys):
        import shutil
        import sqlite3

        connection = sqlite3.connect(crawl_db)
        connection.execute("PRAGMA wal_checkpoint(FULL)")
        connection.close()
        copy = str(tmp_path / "tampered.sqlite")
        shutil.copy(crawl_db, copy)
        connection = sqlite3.connect(copy)
        connection.execute(
            "UPDATE rollups_totals SET value = value + 1 "
            "WHERE name = 'site_visits'")
        connection.commit()
        connection.close()

        code, out = run_cli(capsys, ["serve", "verify", copy])
        assert code == 1
        assert out["ok"] is False
        assert any(m["section"] == "totals" for m in out["mismatches"])

    def test_serve_port_zero_end_to_end(self, crawl_db):
        import os
        import signal
        import subprocess
        import sys

        import repro
        from repro.serve import json_get

        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", crawl_db,
             "--port", "0"], env=env, stdout=subprocess.PIPE, text=True)
        try:
            line = proc.stdout.readline().strip()
            assert " at http://127.0.0.1:" in line
            base = line.split(" at ")[-1]
            status, payload = json_get(base + "/healthz")
            assert status == 200 and payload["rollups"] == "fresh"
            status, payload = json_get(base + "/aggregates/totals")
            assert status == 200
            assert payload["totals"]["site_visits"] > 0
            status, payload = json_get(base + "/nope")
            assert status == 404
        finally:
            proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=30) == 0


class TestHelpSnapshot:
    """The CLI surface is a contract; pin its --help text."""

    def test_help_matches_golden(self, monkeypatch):
        import os
        import pathlib

        monkeypatch.setenv("COLUMNS", "80")
        text = build_parser().format_help()
        # Python <3.10 renders the section as "optional arguments:".
        text = text.replace("optional arguments:", "options:")
        golden = pathlib.Path(__file__).parent / "golden" \
            / "cli_help.txt"
        if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
            golden.write_text(text, encoding="utf-8")
            pytest.skip("golden file regenerated")
        assert golden.is_file(), \
            "missing golden file; regenerate with REPRO_UPDATE_GOLDEN=1"
        assert text == golden.read_text(encoding="utf-8")

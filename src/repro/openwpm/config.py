"""Configuration dataclasses (OpenWPM's ManagerParams / BrowserParams)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


@dataclass
class BrowserParams:
    """Per-browser configuration.

    ``display_mode`` maps to the run modes of Sec. 2 (regular /
    headless / xvfb / docker). ``stealth`` switches the JavaScript
    instrumentation and fingerprint hiding to the paper's hardened
    WPM_hide variant; ``window_size``/``window_position`` are the
    settings file the hardening introduces (Sec. 6.1.5).
    """

    browser_id: int = 0
    os_name: str = "ubuntu"
    display_mode: str = "regular"  # regular | headless | xvfb | docker
    http_instrument: bool = True
    js_instrument: bool = True
    cookie_instrument: bool = True
    #: Response-body archiving: 'all', 'script' (JS files only), or None.
    save_content: Optional[str] = "script"
    #: Enable the hardened (WPM_hide) instrumentation + stealth overrides.
    stealth: bool = False
    window_size: Optional[Tuple[int, int]] = None
    window_position: Optional[Tuple[int, int]] = None
    #: Dwell time on each page after load, seconds (virtual time).
    dwell_time: float = 60.0
    #: Interaction driver run on each page after load: None (OpenWPM's
    #: default — no interaction, like 55 of the 72 surveyed studies),
    #: 'selenium' (framework-style events), or 'human' (HLISA-style).
    interaction: Optional[str] = None
    seed: int = 0


@dataclass
class ManagerParams:
    """Framework-level configuration."""

    num_browsers: int = 1
    #: SQLite path; ':memory:' runs fully in-memory.
    database_path: str = ":memory:"
    #: Give up on a site after this many consecutive browser failures.
    failure_limit: int = 3
    #: Probability that a visit crashes the browser (fault injection for
    #: the recovery machinery; 0 disables). Compatibility shim: this is
    #: folded into ``fault_plan`` as a ``crash`` rule at ``visit.start``
    #: drawing from the manager RNG, so legacy crawls stay bit-identical.
    crash_probability: float = 0.0
    #: A :class:`repro.faults.FaultPlan` injected across the crawl stack
    #: (task manager, network, storage, worker pool); ``None`` disables.
    fault_plan: Optional[Any] = None
    #: Watchdog: default per-stage visit deadline in virtual seconds
    #: (``None`` disables the watchdog unless ``stage_deadlines`` is set).
    stage_deadline_seconds: Optional[float] = None
    #: Watchdog: per-stage overrides, e.g. ``{"page_load": 30.0}``.
    stage_deadlines: Optional[Dict[str, float]] = None
    #: Circuit breaker: quarantine a site after this many failed
    #: attempts (crashes / watchdog aborts) across browser restarts.
    quarantine_after: Optional[int] = None
    #: Crash-loop detection: cool a browser slot down once it restarts
    #: this many times within ``crash_loop_window_seconds``.
    crash_loop_threshold: Optional[int] = None
    crash_loop_window_seconds: float = 10.0
    crash_loop_cooldown_seconds: float = 30.0
    seed: int = 0

"""JS objects with prototype chains and descriptor semantics."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.values import UNDEFINED


class JSObject:
    """A JavaScript object: named properties plus a prototype link.

    Property reads and writes follow ECMAScript semantics: accessor
    descriptors invoke their getter/setter (found anywhere along the
    prototype chain), data writes shadow inherited data properties, and
    non-writable properties silently swallow writes (non-strict mode,
    matching browser page scripts).
    """

    def __init__(self, proto: Optional["JSObject"] = None,
                 class_name: str = "Object") -> None:
        self.properties: Dict[str, PropertyDescriptor] = {}
        self.proto: Optional[JSObject] = proto
        self.class_name = class_name
        self.extensible = True

    # ------------------------------------------------------------------
    # Raw descriptor-level access (never triggers accessors)
    # ------------------------------------------------------------------
    def get_own_descriptor(self, name: str) -> Optional[PropertyDescriptor]:
        """Return the own descriptor for *name*, or None."""
        return self.properties.get(name)

    def lookup(self, name: str) -> Tuple[Optional["JSObject"],
                                         Optional[PropertyDescriptor]]:
        """Walk the prototype chain; return ``(holder, descriptor)``."""
        obj: Optional[JSObject] = self
        while obj is not None:
            desc = obj.get_own_descriptor(name)
            if desc is not None:
                return obj, desc
            obj = obj.proto
        return None, None

    def define_property(self, name: str, desc: PropertyDescriptor) -> None:
        """Define or redefine an own property (``Object.defineProperty``).

        Raises :class:`TypeError` when redefining a non-configurable
        property or adding to a non-extensible object, mirroring JS.
        """
        existing = self.properties.get(name)
        if existing is not None and not existing.configurable:
            raise TypeError(
                f"can't redefine non-configurable property {name!r}")
        if existing is None and not self.extensible:
            raise TypeError(
                f"can't define property {name!r}: object is not extensible")
        self.properties[name] = desc

    def delete_property(self, name: str) -> bool:
        """Delete an own property; returns False for non-configurable ones."""
        desc = self.properties.get(name)
        if desc is None:
            return True
        if not desc.configurable:
            return False
        del self.properties[name]
        return True

    def has_property(self, name: str) -> bool:
        """The JS ``in`` operator: own or inherited."""
        return self.lookup(name)[1] is not None

    def own_keys(self) -> List[str]:
        """Own property names in insertion order."""
        return list(self.properties.keys())

    def enumerable_keys(self) -> List[str]:
        """Keys visited by ``for..in``: enumerable, own then inherited."""
        seen: Dict[str, None] = {}
        shadowed: Dict[str, None] = {}
        obj: Optional[JSObject] = self
        while obj is not None:
            for name, desc in obj.properties.items():
                if name in shadowed:
                    continue
                shadowed[name] = None
                if desc.enumerable:
                    seen[name] = None
            obj = obj.proto
        return list(seen.keys())

    # ------------------------------------------------------------------
    # Value-level access (triggers accessors)
    # ------------------------------------------------------------------
    def get(self, name: str, interp: Any = None,
            this: Optional["JSObject"] = None) -> Any:
        """Read a property value; accessor getters run with ``this``."""
        receiver = this if this is not None else self
        _, desc = self.lookup(name)
        if desc is None:
            return UNDEFINED
        if desc.is_accessor:
            if desc.get is None:
                return UNDEFINED
            return desc.get.call(interp, receiver, [])
        return desc.value

    def set(self, name: str, value: Any, interp: Any = None,
            this: Optional["JSObject"] = None) -> bool:
        """Write a property value following ECMAScript [[Set]].

        Returns True when the write took effect. Non-writable data
        properties and getter-only accessors swallow the write (returning
        False) rather than raising, as in non-strict page scripts.
        """
        receiver = this if this is not None else self
        holder, desc = self.lookup(name)
        if desc is not None and desc.is_accessor:
            if desc.set is None:
                return False
            desc.set.call(interp, receiver, [value])
            return True
        if desc is not None and holder is self:
            if not desc.writable:
                return False
            desc.value = value
            return True
        if desc is not None and not desc.writable:
            return False  # inherited non-writable data property
        if not self.extensible:
            return False
        self.properties[name] = PropertyDescriptor.data(value)
        return True

    # ------------------------------------------------------------------
    # Convenience for host (Python) code
    # ------------------------------------------------------------------
    def put(self, name: str, value: Any, writable: bool = True,
            enumerable: bool = True, configurable: bool = True) -> None:
        """Host-side helper: install a data property unconditionally."""
        self.properties[name] = PropertyDescriptor.data(
            value, writable=writable, enumerable=enumerable,
            configurable=configurable)

    def prototype_chain(self) -> Iterator["JSObject"]:
        """Yield the object and each of its prototypes, bottom-up."""
        obj: Optional[JSObject] = self
        while obj is not None:
            yield obj
            obj = obj.proto

    def __repr__(self) -> str:
        return f"<JSObject {self.class_name} props={len(self.properties)}>"


class JSArray(JSObject):
    """A JS array: integer-indexed elements plus a live ``length``."""

    def __init__(self, elements: Optional[List[Any]] = None,
                 proto: Optional[JSObject] = None) -> None:
        super().__init__(proto=proto, class_name="Array")
        self.elements: List[Any] = list(elements or [])

    @staticmethod
    def _index_of(name: str) -> Optional[int]:
        if name.isdigit():
            return int(name)
        return None

    def get(self, name: str, interp: Any = None,
            this: Optional[JSObject] = None) -> Any:
        if name == "length":
            return float(len(self.elements))
        index = self._index_of(name)
        if index is not None:
            if 0 <= index < len(self.elements):
                return self.elements[index]
            return UNDEFINED
        return super().get(name, interp, this)

    def set(self, name: str, value: Any, interp: Any = None,
            this: Optional[JSObject] = None) -> bool:
        if name == "length":
            new_len = int(value)
            if new_len < len(self.elements):
                del self.elements[new_len:]
            else:
                self.elements.extend(
                    [UNDEFINED] * (new_len - len(self.elements)))
            return True
        index = self._index_of(name)
        if index is not None:
            if index >= len(self.elements):
                self.elements.extend(
                    [UNDEFINED] * (index + 1 - len(self.elements)))
            self.elements[index] = value
            return True
        return super().set(name, value, interp, this)

    def has_property(self, name: str) -> bool:
        if name == "length":
            return True
        index = self._index_of(name)
        if index is not None:
            return 0 <= index < len(self.elements)
        return super().has_property(name)

    def enumerable_keys(self) -> List[str]:
        keys = [str(i) for i in range(len(self.elements))]
        keys.extend(super().enumerable_keys())
        return keys

    def own_keys(self) -> List[str]:
        keys = [str(i) for i in range(len(self.elements))]
        keys.extend(super().own_keys())
        keys.append("length")
        return keys

    def __repr__(self) -> str:
        return f"<JSArray len={len(self.elements)}>"

"""The validated OpenWPM detector (paper Sec. 3.3).

Implements the four test strategies over the measured fingerprint
surface:

1. presence of a DOM property,
2. absence of a DOM property,
3. a native function having been overwritten,
4. comparing a DOM property with an expected value.

Rules derived from non-unique properties (the ~200 WebGL parameters
shared with other browsers, machine-dependent screen resolutions in
regular mode) are excluded, as the paper's validation pass does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core.fingerprint.probes import ProbeResults, run_probes


@dataclass(frozen=True)
class DetectionRule:
    """One check of the detector."""

    strategy: str  # 'presence' | 'absence' | 'overwritten' | 'value'
    probe_key: str
    expected: Any
    description: str
    #: Strong rules alone identify OpenWPM; weak rules only corroborate.
    strong: bool = True


#: The compiled rule set (from the Sec. 3.1 surface, after validation).
DEFAULT_RULES: List[DetectionRule] = [
    DetectionRule("value", "webdriver", True,
                  "navigator.webdriver is true (WebDriver automation)"),
    DetectionRule("presence", "hasGetInstrumentJS", True,
                  "window.getInstrumentJS exists (JS instrument residue)"),
    DetectionRule("presence", "hasJsInstruments", True,
                  "window.jsInstruments exists (legacy instrument)"),
    DetectionRule("presence", "hasInstrumentFingerprintingApis", True,
                  "window.instrumentFingerprintingApis exists (legacy)"),
    DetectionRule("overwritten", "userAgentGetterNative", False,
                  "navigator.userAgent getter is not native code"),
    DetectionRule("overwritten", "fillRectNative", False,
                  "CanvasRenderingContext2D.fillRect is not native code"),
    DetectionRule("value", "screenProtoPolluted", True,
                  "Screen prototype polluted with inherited properties"),
    DetectionRule("value", "instrumentInStack", True,
                  "instrumentation frames visible in error stack traces"),
    DetectionRule("value", "languagesExtraProps", 43,
                  "navigator.languages carries 43 extra properties "
                  "(headless)"),
    DetectionRule("absence", "webglVendor", None,
                  "WebGL missing entirely (headless scraping)"),
    DetectionRule("value", "webglVendor", "VMware, Inc.",
                  "WebGL vendor reveals virtualisation (Docker)"),
    DetectionRule("value", "webglVendor", "Mesa/X.org",
                  "WebGL vendor reveals Xvfb software rendering"),
    DetectionRule("value", "timezoneOffset", 0,
                  "timezone offset is 0 (containerised environment)",
                  strong=False),
    DetectionRule("value", "fontCount", 1,
                  "font enumeration finds a single font (Docker)",
                  strong=False),
    # OpenWPM's fixed window geometry: 1366x683 viewport in every mode.
    DetectionRule("value", "innerWidth", 1366,
                  "window inner width is OpenWPM's fixed 1366",
                  strong=False),
    DetectionRule("value", "innerHeight", 683,
                  "window inner height is OpenWPM's fixed 683",
                  strong=False),
    DetectionRule("value", "availTop", 0,
                  "screen.availTop is 0 (no desktop UI present)",
                  strong=False),
]


@dataclass
class DetectionReport:
    """The detector's verdict on one client."""

    client_name: str
    matched: List[DetectionRule] = field(default_factory=list)
    probes: Optional[ProbeResults] = None

    @property
    def strong_matches(self) -> List[DetectionRule]:
        return [rule for rule in self.matched if rule.strong]

    @property
    def weak_matches(self) -> List[DetectionRule]:
        return [rule for rule in self.matched if not rule.strong]

    @property
    def is_openwpm(self) -> bool:
        """Any strong indicator, or a pile-up of weak ones."""
        return bool(self.strong_matches) or len(self.weak_matches) >= 3

    def matched_descriptions(self) -> List[str]:
        return [rule.description for rule in self.matched]


class OpenWPMDetector:
    """Runs the rule set against a live window (via the probe script)."""

    def __init__(self, rules: Optional[List[DetectionRule]] = None) -> None:
        self.rules = rules if rules is not None else list(DEFAULT_RULES)

    def test_window(self, window: Any) -> DetectionReport:
        probes = run_probes(window)
        return self.test_probes(probes)

    def test_probes(self, probes: ProbeResults) -> DetectionReport:
        report = DetectionReport(client_name=probes.client_name,
                                 probes=probes)
        for rule in self.rules:
            if self._rule_matches(rule, probes):
                report.matched.append(rule)
        return report

    @staticmethod
    def _rule_matches(rule: DetectionRule, probes: ProbeResults) -> bool:
        value = probes.get(rule.probe_key)
        if rule.strategy == "presence":
            return bool(value)
        if rule.strategy == "absence":
            return value is None
        if rule.strategy == "overwritten":
            # Probe reports whether the function is still native.
            return value is False
        if rule.strategy == "value":
            if isinstance(rule.expected, str) and isinstance(value, str):
                return value.startswith(rule.expected)
            return value == rule.expected
        raise ValueError(f"unknown strategy {rule.strategy!r}")

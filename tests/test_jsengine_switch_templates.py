"""Tests for switch statements and template-literal interpolation."""

import pytest

from repro.jsengine.parser import ParseError, parse
from repro.jsobject.errors import JSError


class TestSwitch:
    def test_matching_case(self, run):
        assert run("""
            var out = "";
            switch (2) {
                case 1: out = "one"; break;
                case 2: out = "two"; break;
                case 3: out = "three"; break;
            }
            out
        """) == "two"

    def test_fall_through(self, run):
        assert run("""
            var out = [];
            switch ("b") {
                case "a": out.push("A");
                case "b": out.push("B");
                case "c": out.push("C"); break;
                case "d": out.push("D");
            }
            out.join("")
        """) == "BC"

    def test_default_clause(self, run):
        assert run("""
            var out = "";
            switch (42) { case 1: out = "x"; break;
                          default: out = "default"; }
            out
        """) == "default"

    def test_default_falls_through_to_later_cases(self, run):
        assert run("""
            var out = [];
            switch (99) {
                case 1: out.push("1");
                default: out.push("d");
                case 2: out.push("2");
            }
            out.join(",")
        """) == "d,2"

    def test_no_match_no_default(self, run):
        assert run("""
            var out = "untouched";
            switch (9) { case 1: out = "x"; }
            out
        """) == "untouched"

    def test_strict_matching(self, run):
        assert run("""
            var out = "none";
            switch ("1") { case 1: out = "number"; break; }
            out
        """) == "none"

    def test_break_only_exits_switch_not_loop(self, run):
        assert run("""
            var total = 0;
            for (var i = 0; i < 3; i++) {
                switch (i) { case 0: break; case 1: total += 10; break; }
                total += 1;
            }
            total
        """) == 13.0

    def test_multiple_defaults_rejected(self):
        with pytest.raises(ParseError):
            parse("switch (x) { default: 1; default: 2; }")

    def test_case_expressions_evaluated(self, run):
        assert run("""
            var out = "";
            var key = 4;
            switch (key) { case 2 + 2: out = "four"; break; }
            out
        """) == "four"


class TestTemplateLiterals:
    def test_plain_template(self, run):
        assert run("`just text`") == "just text"

    def test_single_interpolation(self, run):
        assert run("var x = 7; `x is ${x}`") == "x is 7"

    def test_expression_interpolation(self, run):
        assert run("`sum: ${1 + 2 * 3}`") == "sum: 7"

    def test_multiple_holes(self, run):
        assert run("var a = 'A', b = 'B'; `${a}-${b}!`") == "A-B!"

    def test_adjacent_holes(self, run):
        assert run("`${1}${2}${3}`") == "123"

    def test_object_member_in_hole(self, run):
        assert run("var o = {n: 'neo'}; `hi ${o.n}`") == "hi neo"

    def test_conditional_in_hole(self, run):
        assert run("`${ 2 > 1 ? 'yes' : 'no' }`") == "yes"

    def test_function_call_in_hole(self, run):
        assert run("""
            function double(x) { return x * 2; }
            `got ${double(21)}`
        """) == "got 42"

    def test_nested_template(self, run):
        assert run("`a${ `b${1}c` }d`") == "ab1cd"

    def test_object_literal_braces_in_hole(self, run):
        assert run("`v=${ ({k: 9}).k }`") == "v=9"

    def test_tostring_coercion(self, run):
        assert run("`arr: ${[1, 2]}; nil: ${null}; u: ${undefined}`") \
            == "arr: 1,2; nil: null; u: undefined"

    def test_escapes_inside_template(self, run):
        assert run(r"`tab\there`") == "tab\there"

"""Ablation: behavioural bot detection vs interaction style.

The paper's scan covers fingerprint-based detectors and names
behavioural detection (mouse tracking) as the uncovered channel
(Sec. 4.1.3, [17]/[37]). This ablation closes the loop: a
mouse-tracking collector script scores three interaction styles —
none, framework-default (Selenium), and HLISA-style human-like — and
shows that fingerprint hardening alone does not beat behavioural
detection; interaction realism does.
"""

import random

from conftest import report


def _score(style: str):
    from repro.browser.interaction import (
        BEHAVIOUR_COLLECTOR_SCRIPT,
        HumanLikeInteraction,
        SeleniumInteraction,
        extract_behaviour_track,
        score_pointer_track,
    )
    from repro.browser.profiles import openwpm_profile
    from repro.core.hardening import StealthJSInstrument, StealthSettings
    from repro.core.lab import make_window
    from repro.openwpm import BrowserParams, OpenWPMExtension

    # A fingerprint-hardened client in all three cases.
    settings = StealthSettings.plausible()
    extension = OpenWPMExtension(BrowserParams(stealth=True),
                                 js_instrument=StealthJSInstrument())
    _, window = make_window(
        openwpm_profile("ubuntu", "regular",
                        window_size=settings.window_size,
                        window_position=settings.window_position),
        extension=extension)
    window.run_script(BEHAVIOUR_COLLECTOR_SCRIPT,
                      script_url="https://site.test/bm.js")

    if style == "selenium":
        SeleniumInteraction(random.Random(3)).click(window, "body")
    elif style == "human":
        driver = HumanLikeInteraction(random.Random(3))
        driver.click(window, "body")
        driver.scroll(window, 600)
    track = extract_behaviour_track(window)
    verdict = score_pointer_track(track)
    return len(track), verdict


def test_benchmark_interaction_ablation(benchmark):
    def run_all():
        return {style: _score(style)
                for style in ("none", "selenium", "human")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["(all clients are fingerprint-hardened WPM_hide; only the "
             "interaction style varies)", "",
             "| interaction | events observed | behavioural verdict | "
             "reasons |", "|---|---|---|---|"]
    for style, (events, verdict) in results.items():
        lines.append(f"| {style} | {events} | "
                     f"{'BOT' if verdict.is_bot else 'human'} | "
                     f"{'; '.join(verdict.reasons) or '-'} |")
    report("ablation_interaction",
           "Ablation - behavioural detection vs interaction style",
           lines)

    # Default framework interaction is flagged despite the hardened
    # fingerprint; HLISA-style interaction passes.
    assert results["selenium"][1].is_bot is True
    assert results["human"][1].is_bot is False
    assert results["none"][1].is_bot is False  # nothing to score

"""A minimal HTML fragment parser.

Covers the tag vocabulary the synthetic web emits (scripts, iframes,
images, stylesheets, simple containers and anchors). Used for
``document.write``/``innerHTML`` and for turning a page body into DOM
content.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List

_TAG_RE = re.compile(
    r"<(script|iframe|img|div|span|a|link|p|h1|h2|form|input|button)\b"
    r"([^>]*)>"
    r"(?:(.*?)</\1\s*>)?",
    re.DOTALL | re.IGNORECASE,
)
_ATTR_RE = re.compile(
    r"([a-zA-Z][a-zA-Z0-9_-]*)\s*=\s*(\"([^\"]*)\"|'([^']*)'|([^\s>]+))")

#: Tags that never carry a closing tag in the corpus.
_VOID_TAGS = frozenset({"img", "link", "input"})


@dataclass
class ParsedTag:
    """One parsed element: tag name, attributes, and inline text."""

    tag: str
    attributes: Dict[str, str] = field(default_factory=dict)
    text: str = ""


def parse_html_fragment(html: str) -> List[ParsedTag]:
    """Extract the supported tags from *html*, in document order.

    Nested markup inside container tags is flattened: the synthetic
    corpus only nests scripts/iframes one level deep inside containers,
    which this recovers by re-scanning container bodies.
    """
    tags: List[ParsedTag] = []
    for match in _TAG_RE.finditer(html):
        tag = match.group(1).lower()
        attr_text = match.group(2) or ""
        body = match.group(3) or ""
        attributes = {
            m.group(1).lower(): (m.group(3) or m.group(4) or m.group(5) or "")
            for m in _ATTR_RE.finditer(attr_text)
        }
        if tag in ("div", "span", "p", "form") and _TAG_RE.search(body):
            tags.append(ParsedTag(tag=tag, attributes=attributes))
            tags.extend(parse_html_fragment(body))
            continue
        text = "" if tag in _VOID_TAGS else body
        tags.append(ParsedTag(tag=tag, attributes=attributes, text=text))
    return tags


def render_attributes(attributes: Dict[str, str]) -> str:
    """Serialise an attribute dict back to HTML."""
    if not attributes:
        return ""
    return " " + " ".join(
        f'{name}="{value}"' for name, value in attributes.items())

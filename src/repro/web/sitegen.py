"""Per-site configuration generator.

Assigns every Tranco site its behaviours — detector placement and
disguise form, first-party vendor, third-party providers, OpenWPM-
specific probes, CSP deployment, tracker/ad load — from probabilities
calibrated to the paper's 100K-site marginals:

* combined front-page detector rate ~14% (Table 11: 13,989/100K),
  split static-only/dynamic-only/both per Table 5 and Fig. 4;
* subpage-only detectors lifting the union to ~18.7% (Fig. 3);
* static false positives (~16.9% of sites carry a loose 'webdriver'
  token) and dynamic 'inconclusive' iterators (~2.4%);
* first-party vendor deployment per Table 12; third-party hosting
  shares per Table 7; OpenWPM-specific providers per Table 6;
* category skews behind Fig. 5 (news → third-party; shopping/finance/
  travel → first-party) and a rank gradient behind Fig. 3.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.web.providers import (
    FIRST_PARTY_VENDORS,
    LONG_TAIL_SHARE,
    OPENWPM_DETECTOR_PROVIDERS,
    THIRD_PARTY_DETECTORS,
    TRACKER_PROVIDERS,
    long_tail_detector_domains,
)
from repro.web.tranco import TrancoSite

# --- Calibrated per-site probabilities (rates out of 1.0) -----------------
#: Front-page detector found by both methods / static only / dynamic only.
P_FRONT_BOTH = 0.1016
P_FRONT_STATIC_ONLY = 0.0180   # lazy code, never executed
P_FRONT_DYNAMIC_ONLY = 0.0203  # concat-obfuscated
#: Subpage-only detectors (site clean on the front page).
P_SUB_BOTH = 0.0372
P_SUB_STATIC_ONLY = 0.0016
P_SUB_DYNAMIC_ONLY = 0.0100
#: Loose-pattern static false positive ('webdriver' as a UA token).
P_DECOY = 0.1686
#: Property-iterating fingerprinter (honey-property 'inconclusive').
P_ITERATOR = 0.0238
#: Fraction of detector sites with a first-party vendor deployment.
P_FIRST_PARTY_GIVEN_DETECTOR = 0.2067
#: CSP that blocks inline script injection (Sec. 6.3.1: 113/1,487).
P_CSP_BLOCKING = 0.076
#: CSP misconfiguration producing a report on every client (~188/1,487).
P_CSP_INTRINSIC = 0.12

_FORMS_BOTH = ("plain", "minified", "hex")

#: Mean of the rank-weight x category-bias multiplier over the site
#: population (measured empirically at 100K sites); dividing by it keeps
#: the detector marginals on target despite the Fig. 3/5 skews.
_BIAS_NORMALISER = 1.21


@dataclass
class SiteConfig:
    """Everything one site serves, derived deterministically from seed."""

    site: TrancoSite
    #: Detector on the front page and its disguise form (None = clean).
    front_detector_form: Optional[str] = None
    #: Detector appearing only on subpages.
    sub_detector_form: Optional[str] = None
    #: Which subpage (1-based) carries the subpage detector.
    sub_detector_page: int = 1
    #: Third-party detector provider domains included (front or sub).
    third_party_detectors: List[str] = field(default_factory=list)
    first_party_vendor: Optional[str] = None
    first_party_path: str = ""
    #: OpenWPM-residue probing providers included on this site.
    openwpm_providers: List[str] = field(default_factory=list)
    has_decoy: bool = False
    has_iterator: bool = False
    csp_blocking: bool = False
    csp_intrinsic_violation: bool = False
    trackers: List[str] = field(default_factory=list)
    n_images: int = 6
    n_widget_iframes: int = 1
    has_ad_iframe: bool = True
    has_media: bool = False
    has_websocket: bool = False
    has_object: bool = False
    subpage_count: int = 4
    #: Index of the DOM-probe variant (scripts that create an iframe and
    #: immediately call APIs through contentWindow — the unobserved
    #: channel of Fig. 6); None = no such script.
    dom_probe_variant: Optional[int] = None

    @property
    def domain(self) -> str:
        return self.site.domain

    @property
    def has_detector(self) -> bool:
        return self.front_detector_form is not None \
            or self.sub_detector_form is not None

    @property
    def detector_on_front(self) -> bool:
        return self.front_detector_form is not None

    def detector_channels(self, where: str = "any") -> Tuple[bool, bool]:
        """(found_by_static, found_by_dynamic) ground truth."""
        forms = []
        if where in ("any", "front") and self.front_detector_form:
            forms.append(self.front_detector_form)
        if where in ("any", "sub") and self.sub_detector_form:
            forms.append(self.sub_detector_form)
        static = any(f in ("plain", "minified", "hex", "lazy")
                     for f in forms)
        dynamic = any(f in ("plain", "minified", "hex", "obfuscated")
                      for f in forms)
        if self.first_party_vendor and (
                where != "sub"):  # vendors deploy on the front page
            static = True
            dynamic = True
        return static, dynamic


def _rank_weight(rank: int, total: int) -> float:
    """Detector prevalence declines with rank (Fig. 3 gradient)."""
    position = rank / max(total, 1)
    return 1.4 - 0.8 * position  # 1.4 at the very top, 0.6 at the tail


def _category_bias(categories: tuple) -> Tuple[float, float]:
    """(third-party bias, first-party bias) from Fig. 5 skews."""
    third, first = 1.0, 1.0
    for category in categories:
        if category == "News":
            third *= 2.0
            first *= 0.5
        elif category in ("Technology", "Business"):
            third *= 1.2
        elif category == "Shopping":
            first *= 3.0
            third *= 0.7
        elif category in ("Finance", "Travel"):
            first *= 2.5
        elif category in ("Government", "Education"):
            third *= 0.5
            first *= 0.6
    return third, first


class SiteConfigGenerator:
    """Draws a :class:`SiteConfig` for every Tranco site."""

    def __init__(self, seed: int = 7) -> None:
        self.seed = seed
        self._long_tail = long_tail_detector_domains()
        self._tp_both = [d for d in THIRD_PARTY_DETECTORS
                         if d.script_form == "plain"]
        self._tp_obfuscated = [d for d in THIRD_PARTY_DETECTORS
                               if d.script_form == "obfuscated"]
        self._tp_lazy = [d for d in THIRD_PARTY_DETECTORS
                         if d.script_form == "lazy"]

    # ------------------------------------------------------------------
    def generate(self, sites: List[TrancoSite]) -> List[SiteConfig]:
        total = len(sites)
        return [self._config_for(site, total) for site in sites]

    def _config_for(self, site: TrancoSite, total: int) -> SiteConfig:
        rng = random.Random(
            hashlib.sha256(f"{self.seed}:{site.domain}".encode()).digest())
        config = SiteConfig(site=site)
        weight = _rank_weight(site.rank, total)
        third_bias, first_bias = _category_bias(site.categories)

        # --- detector placement -------------------------------------
        roll = rng.random()
        # The category skew raises the population mean; renormalise so
        # the overall detector rate stays at the calibrated marginals.
        scale = weight * third_bias / _BIAS_NORMALISER
        if roll < P_FRONT_BOTH * scale:
            config.front_detector_form = rng.choice(_FORMS_BOTH)
        elif roll < (P_FRONT_BOTH + P_FRONT_STATIC_ONLY) * scale:
            config.front_detector_form = "lazy"
        elif roll < (P_FRONT_BOTH + P_FRONT_STATIC_ONLY
                     + P_FRONT_DYNAMIC_ONLY) * scale:
            config.front_detector_form = "obfuscated"
        else:
            sub_roll = rng.random()
            if sub_roll < P_SUB_BOTH * scale:
                config.sub_detector_form = rng.choice(_FORMS_BOTH)
            elif sub_roll < (P_SUB_BOTH + P_SUB_STATIC_ONLY) * scale:
                config.sub_detector_form = "lazy"
            elif sub_roll < (P_SUB_BOTH + P_SUB_STATIC_ONLY
                             + P_SUB_DYNAMIC_ONLY) * scale:
                config.sub_detector_form = "obfuscated"

        if config.has_detector:
            self._assign_providers(config, rng, first_bias)

        # --- OpenWPM-specific detectors (independent, Table 6) ------
        for provider in OPENWPM_DETECTOR_PROVIDERS:
            if rng.random() < provider.sites_per_100k / 100_000.0:
                config.openwpm_providers.append(provider.domain)

        # --- decoys and iterators ------------------------------------
        config.has_decoy = rng.random() < P_DECOY
        config.has_iterator = rng.random() < P_ITERATOR

        # --- CSP ------------------------------------------------------
        config.csp_blocking = rng.random() < P_CSP_BLOCKING
        config.csp_intrinsic_violation = rng.random() < P_CSP_INTRINSIC

        # --- page furniture -------------------------------------------
        config.trackers = [p.domain for p in TRACKER_PROVIDERS
                           if rng.random() < 0.45]
        config.n_images = 4 + rng.randrange(5)
        config.n_widget_iframes = rng.randrange(3) \
            if not config.csp_blocking else 7
        config.has_ad_iframe = rng.random() < 0.6 and bool(config.trackers)
        config.has_media = rng.random() < 0.04
        config.has_websocket = rng.random() < 0.02
        config.has_object = rng.random() < 0.01
        config.subpage_count = 3 + rng.randrange(4)
        # Deep-only detectors sit on one specific subpage (mostly among
        # the first links a crawler would take).
        config.sub_detector_page = 1 + rng.choices(
            range(3), weights=[60, 25, 15], k=1)[0]
        if rng.random() < 0.30:
            config.dom_probe_variant = rng.randrange(5)
        return config

    # ------------------------------------------------------------------
    def _assign_providers(self, config: SiteConfig, rng: random.Random,
                          first_bias: float) -> None:
        form = config.front_detector_form or config.sub_detector_form
        if rng.random() < min(0.95, P_FIRST_PARTY_GIVEN_DETECTOR
                              * first_bias):
            vendor = rng.choices(
                FIRST_PARTY_VENDORS,
                weights=[v.sites_per_100k for v in FIRST_PARTY_VENDORS],
                k=1)[0]
            config.first_party_vendor = vendor.name
            token = hashlib.sha256(
                f"fp:{config.domain}".encode()).hexdigest()
            config.first_party_path = (vendor.path_template
                                       .replace("{hash}", token[:16])
                                       .replace("{hash32}", token[:32])
                                       .replace("{hash8}", token[:8]))
            tp_count = rng.choices([0, 1, 2], weights=[55, 35, 10], k=1)[0]
        else:
            tp_count = rng.choices([1, 2, 3], weights=[88, 10, 2], k=1)[0]

        compatible = self._compatible_providers(form)
        for _ in range(tp_count):
            config.third_party_detectors.append(
                self._pick_provider(compatible, rng))

    def _compatible_providers(self, form: Optional[str]):
        if form == "obfuscated":
            return self._tp_obfuscated
        if form == "lazy":
            return self._tp_lazy
        return self._tp_both

    def _pick_provider(self, compatible, rng: random.Random) -> str:
        # Long tail takes its share; the rest goes to the named
        # providers compatible with the required disguise form.
        if rng.random() < LONG_TAIL_SHARE:
            return rng.choice(self._long_tail)
        weights = [p.inclusion_share for p in compatible]
        return rng.choices(compatible, weights=weights, k=1)[0].domain

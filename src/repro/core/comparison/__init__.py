"""WPM vs WPM_hide paired measurement (paper Sec. 6.3)."""

from repro.core.comparison.blocklists import BlocklistMatcher
from repro.core.comparison.cookies import (
    classify_tracking_cookies,
    cookie_identity,
)
from repro.core.comparison.stats import paired_wilcoxon
from repro.core.comparison.experiment import (
    ClientRunData,
    PairedCrawl,
    PairedCrawlResult,
)

__all__ = [
    "BlocklistMatcher",
    "classify_tracking_cookies",
    "cookie_identity",
    "paired_wilcoxon",
    "PairedCrawl",
    "PairedCrawlResult",
    "ClientRunData",
]

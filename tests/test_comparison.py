"""Tests for the paired WPM vs WPM_hide experiment (paper Sec. 6.3)."""

import pytest

from repro.core.comparison import (
    BlocklistMatcher,
    classify_tracking_cookies,
    paired_wilcoxon,
)
from repro.core.comparison.cookies import (
    count_tracking_per_run,
    ratcliff_obershelp,
)
from repro.openwpm.instruments.cookie_instrument import CookieRecord


def cookie(name="uid", value="abcdef123456", host="tracker.test",
           lifetime=365 * 86400.0, is_session=False, first_party="site.test"):
    return CookieRecord(change="added", host=host, name=name, value=value,
                        is_session=is_session, is_http_only=False,
                        lifetime=lifetime, first_party=first_party,
                        via_javascript=False)


class TestBlocklists:
    def test_ad_domain_matches_easylist(self):
        matcher = BlocklistMatcher()
        assert matcher.matches_easylist(
            "https://adclick-syndicate.com/pixel")

    def test_analytics_matches_easyprivacy(self):
        matcher = BlocklistMatcher()
        assert matcher.matches_easyprivacy("https://pixelmetrics.net/fp")

    def test_benign_domain_matches_nothing(self):
        matcher = BlocklistMatcher()
        assert not matcher.matches_any("https://jslib-cdn.example/lib.js")

    def test_subdomains_match_by_etld(self):
        matcher = BlocklistMatcher(easylist=["ads.example"],
                                   easyprivacy=[])
        assert matcher.matches_easylist("https://cdn.ads.example/x")

    def test_count(self):
        matcher = BlocklistMatcher(easylist=["a.test"],
                                   easyprivacy=["b.test"])
        counts = matcher.count([
            "https://a.test/1", "https://b.test/2", "https://c.test/3"])
        assert counts == {"easylist": 1, "easyprivacy": 1, "any": 2,
                          "total": 3}


class TestTrackingCookieClassification:
    """The Englehardt/Chen criteria, one by one."""

    def _runs(self, values, **kwargs):
        return [[cookie(value=v, **kwargs)] for v in values]

    def test_qualifying_cookie(self):
        runs = self._runs(["aaaa1111bbbb", "cccc2222dddd", "eeee3333ffff"])
        assert len(classify_tracking_cookies(runs)) == 1

    def test_session_cookie_excluded(self):
        runs = self._runs(["aaaa1111bbbb", "cccc2222dddd"],
                          is_session=True, lifetime=None)
        assert classify_tracking_cookies(runs) == set()

    def test_short_value_excluded(self):
        runs = self._runs(["ab1", "cd2"])
        assert classify_tracking_cookies(runs) == set()

    def test_short_lifetime_excluded(self):
        runs = self._runs(["aaaa1111bbbb", "cccc2222dddd"],
                          lifetime=7 * 86400.0)
        assert classify_tracking_cookies(runs) == set()

    def test_not_always_set_excluded(self):
        runs = [[cookie(value="aaaa1111bbbb")], []]
        assert classify_tracking_cookies(runs) == set()

    def test_similar_values_excluded(self):
        runs = self._runs(["constant-value-1", "constant-value-2"])
        assert classify_tracking_cookies(runs) == set()

    def test_count_per_run(self):
        runs = self._runs(["aaaa1111bbbb", "cccc2222dddd"])
        tracking = classify_tracking_cookies(runs)
        assert count_tracking_per_run(runs, tracking) == [1, 1]

    def test_ratcliff_obershelp_bounds(self):
        assert ratcliff_obershelp("abc", "abc") == 1.0
        assert ratcliff_obershelp("abc", "xyz") == 0.0
        assert 0.0 < ratcliff_obershelp("abcdef", "abcxyz") < 1.0


class TestWilcoxon:
    def test_identical_samples_not_significant(self):
        result = paired_wilcoxon([1, 2, 3], [1, 2, 3])
        assert result.p_value == 1.0
        assert not result.significant

    def test_consistent_difference_significant(self):
        a = list(range(30))
        b = [x + 2 for x in a]
        result = paired_wilcoxon(a, b)
        assert result.significant

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            paired_wilcoxon([1], [1, 2])


class TestPairedCrawlShape:
    """Directional checks against the paper (Tables 8-10, Fig. 6)."""

    def test_csp_reports_collapse_for_hardened(self, paired_result):
        assert paired_result.csp_report_reduction(0) < -50.0

    def test_hardened_sees_more_total_traffic_by_r3(self, paired_result):
        rows = {r["resource_type"]: r for r in paired_result.table8(2)}
        assert rows["total"]["diff_pct"] > 0

    def test_equal_main_frames(self, paired_result):
        rows = {r["resource_type"]: r for r in paired_result.table8(0)}
        assert rows["main_frame"]["wpm"] == rows["main_frame"]["wpm_hide"]

    def test_ad_traffic_gap_grows_across_runs(self, paired_result):
        diffs = [row["easylist_diff_pct"]
                 for row in paired_result.table9()]
        assert diffs[-1] >= diffs[0]
        assert diffs[-1] > 0

    def test_cookie_table_directions(self, paired_result):
        rows = paired_result.table10()
        for row in rows:
            assert row["first_party_diff_pct"] >= 0
            assert row["tracking_diff_pct"] > 0
        # tracking cookies are hit much harder than cookies overall
        assert rows[0]["tracking_diff_pct"] \
            > rows[0]["first_party_diff_pct"]

    def test_third_party_gap_grows_across_runs(self, paired_result):
        rows = paired_result.table10()
        assert rows[-1]["third_party_diff_pct"] \
            >= rows[0]["third_party_diff_pct"]

    def test_cookie_difference_significant(self, paired_result):
        assert paired_result.cookie_significance(0).p_value < 0.05

    def test_fig6_availleft_undercovered(self, paired_result):
        rows = {r["symbol"]: r for r in paired_result.fig6(0)}
        avail_left = rows.get("Screen.availLeft")
        screen_top = rows.get("Screen.top")
        assert avail_left is not None and screen_top is not None
        # Screen.availLeft is mostly called through fresh iframes, so
        # vanilla coverage is much lower than for Screen.top (Fig. 6).
        assert avail_left["coverage"] < screen_top["coverage"]

    def test_fig6_coverage_bounded(self, paired_result):
        for row in paired_result.fig6(0):
            assert 0.0 <= row["coverage"] <= 1.0

    def test_vanilla_fails_hooks_on_csp_sites(self, paired_result):
        assert paired_result.wpm_runs[0].failed_hook_sites >= 0
        assert paired_result.hide_runs[0].failed_hook_sites == 0

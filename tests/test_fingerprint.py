"""Tests for the fingerprint-surface analysis (paper Sec. 3)."""

import pytest

from repro.browser.profiles import (
    chrome_profile,
    consumer_profiles,
    openwpm_profile,
    safari_profile,
    stock_firefox_profile,
)
from repro.core.fingerprint import (
    OpenWPMDetector,
    capture_template,
    diff_templates,
    run_probes,
)
from repro.core.fingerprint.surface import summarise_setup
from repro.core.lab import make_window
from repro.openwpm import BrowserParams, OpenWPMExtension


@pytest.fixture(scope="module")
def baselines():
    out = {}
    for os_name in ("ubuntu", "macos"):
        _, window = make_window(stock_firefox_profile(os_name))
        out[os_name] = capture_template(window)
    return out


def surface_for(os_name, mode, instrumented=True, baselines=None):
    extension = OpenWPMExtension(BrowserParams(
        os_name=os_name, display_mode=mode)) if instrumented else None
    _, window = make_window(openwpm_profile(os_name, mode),
                            extension=extension)
    template = capture_template(window)
    surface = diff_templates(baselines[os_name], template)
    probes = run_probes(window)
    return surface, probes


class TestTemplates:
    def test_template_is_deterministic(self, stock_window):
        a = capture_template(stock_window)
        b = capture_template(stock_window)
        assert a.properties == b.properties

    def test_identical_profiles_diff_empty(self):
        _, w1 = make_window(stock_firefox_profile("ubuntu"))
        _, w2 = make_window(stock_firefox_profile("ubuntu"))
        assert len(diff_templates(capture_template(w1),
                                  capture_template(w2))) == 0

    def test_template_covers_webgl_interface(self, stock_window):
        template = capture_template(stock_window)
        assert any("WebGLRenderingContext" in path
                   for path in template.properties)

    def test_template_size_reasonable(self, stock_window):
        assert len(capture_template(stock_window)) > 2000


class TestTable2:
    """The headline fingerprint-surface numbers."""

    @pytest.mark.parametrize("os_name,mode,webgl,langs", [
        ("ubuntu", "regular", 0, 0),
        ("ubuntu", "headless", 2061, 43),
        ("ubuntu", "xvfb", 18, 0),
        ("ubuntu", "docker", 27, 0),
        ("macos", "regular", 0, 0),
        ("macos", "headless", 2037, 43),
    ])
    def test_mode_rows(self, baselines, os_name, mode, webgl, langs):
        surface, probes = surface_for(os_name, mode, instrumented=False,
                                      baselines=baselines)
        summary = summarise_setup(f"{os_name}/{mode}", surface,
                                  probes.values)
        assert summary.webdriver is True
        assert summary.screen_dimensions > 0
        assert summary.screen_position > 0
        assert summary.webgl_deviations == webgl
        assert summary.language_additions == langs

    def test_instrumentation_tampering_counts(self, baselines):
        for os_name, expected in (("ubuntu", 252), ("macos", 253)):
            surface, probes = surface_for(os_name, "regular",
                                          baselines=baselines)
            summary = summarise_setup(os_name, surface, probes.values)
            assert summary.tampering == expected
            assert summary.custom_functions == 1

    def test_uninstrumented_adds_nothing(self, baselines):
        surface, probes = surface_for("ubuntu", "regular",
                                      instrumented=False,
                                      baselines=baselines)
        summary = summarise_setup("plain", surface, probes.values)
        assert summary.tampering == 0
        assert summary.custom_functions == 0

    def test_docker_font_and_timezone_flags(self, baselines):
        surface, probes = surface_for("ubuntu", "docker",
                                      instrumented=False,
                                      baselines=baselines)
        summary = summarise_setup("docker", surface, probes.values)
        assert summary.font_enumeration is True
        assert summary.timezone_zero is True


class TestProbes:
    def test_probe_values_regular_mode(self, openwpm_window):
        probes = run_probes(openwpm_window)
        assert probes["webdriver"] is True
        assert probes["availTop"] == 27
        assert probes["webglVendor"] == "AMD"
        assert probes["hasGetInstrumentJS"] is False  # not instrumented

    def test_probe_detects_instrumentation(self, instrumented_window):
        probes = run_probes(instrumented_window)
        assert probes["hasGetInstrumentJS"] is True
        assert probes["userAgentGetterNative"] is False
        assert probes["fillRectNative"] is False
        assert probes["screenProtoPolluted"] is True
        assert probes["instrumentInStack"] is True

    def test_probe_headless(self):
        _, window = make_window(openwpm_profile("ubuntu", "headless"))
        probes = run_probes(window)
        assert probes["webglVendor"] is None
        assert probes["languagesExtraProps"] == 43
        assert probes["availTop"] == 0

    def test_probe_on_stock_firefox_is_clean(self, stock_window):
        probes = run_probes(stock_window)
        assert probes["webdriver"] is False
        assert probes["userAgentGetterNative"] is True
        assert probes["screenProtoPolluted"] is False
        assert probes["instrumentInStack"] is False


class TestDetectorValidation:
    """Sec. 3.3: 100% identification, zero false positives."""

    @pytest.mark.parametrize("os_name,mode", [
        ("ubuntu", "regular"), ("ubuntu", "headless"),
        ("ubuntu", "xvfb"), ("ubuntu", "docker"),
        ("macos", "regular"), ("macos", "headless"),
    ])
    def test_detects_every_openwpm_mode(self, os_name, mode):
        extension = OpenWPMExtension(BrowserParams(os_name=os_name,
                                                   display_mode=mode))
        _, window = make_window(openwpm_profile(os_name, mode),
                                extension=extension)
        report = OpenWPMDetector().test_window(window)
        assert report.is_openwpm
        assert report.strong_matches

    def test_no_false_positives_on_consumer_fleet(self):
        detector = OpenWPMDetector()
        for profile in consumer_profiles():
            _, window = make_window(profile)
            report = detector.test_window(window)
            assert not report.is_openwpm, profile.name

    def test_report_lists_matched_descriptions(self, instrumented_window):
        report = OpenWPMDetector().test_window(instrumented_window)
        descriptions = report.matched_descriptions()
        assert any("webdriver" in d for d in descriptions)
        assert any("getInstrumentJS" in d for d in descriptions)

    def test_uninstrumented_still_detected_via_webdriver(
            self, openwpm_window):
        report = OpenWPMDetector().test_window(openwpm_window)
        assert report.is_openwpm

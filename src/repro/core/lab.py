"""Lab harness: spin up isolated windows/browsers for experiments.

Used by the fingerprint measurements (Sec. 3), the attack PoCs (Sec. 5),
and the test suite: one blank 'lab' site, one browser per profile.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.browser.browser import Browser, VisitResult
from repro.browser.profiles import BrowserProfile
from repro.net.http import HttpResponse
from repro.net.network import FunctionServer, Network
from repro.net.page import PageSpec, ScriptItem

LAB_URL = "https://lab.test/"


def make_lab_network(pages: Optional[dict] = None,
                     csp_header: str = "") -> Network:
    """A network serving a blank lab page (plus optional extra pages).

    ``pages`` maps URL path -> PageSpec for additional lab documents.
    """
    network = Network()
    extra = pages or {}

    def serve(request, client, net):
        page = extra.get(request.url.path)
        if page is None:
            page = PageSpec(url=str(request.url), title="lab",
                            csp_header=csp_header)
        return HttpResponse(page=page, body=page.to_html())

    network.register_domain("lab.test", FunctionServer(serve))
    return network


def make_window(profile: BrowserProfile, extension: Any = None,
                network: Optional[Network] = None, seed: int = 0,
                wait: float = 1.0) -> Tuple[Browser, Any]:
    """Visit the blank lab page with *profile*; return (browser, window)."""
    network = network or make_lab_network()
    browser = Browser(profile, network, client_id=f"lab-{profile.name}",
                      extension=extension, seed=seed)
    result = browser.visit(LAB_URL, wait=wait)
    if not result.success or result.top_window is None:
        raise RuntimeError(f"lab page failed to load for {profile.name}")
    return browser, result.top_window


def visit_with_scripts(profile: BrowserProfile, scripts: List[str],
                       extension: Any = None, seed: int = 0,
                       csp_header: str = "", wait: float = 60.0
                       ) -> Tuple[Browser, VisitResult]:
    """Visit a lab page that runs the given inline scripts in order."""
    page = PageSpec(url=LAB_URL, title="lab", csp_header=csp_header,
                    items=[ScriptItem(source=source) for source in scripts])
    network = make_lab_network(pages={"/": page})
    browser = Browser(profile, network, client_id=f"lab-{profile.name}",
                      extension=extension, seed=seed)
    result = browser.visit(LAB_URL, wait=wait)
    return browser, result

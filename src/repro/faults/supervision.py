"""Crawl supervision: visit deadlines, circuit breaker, crash-loop cooldown.

The defensive half of :mod:`repro.faults`. Fault injection proves the
crawl stack *can* hang, crash-loop, or burn a whole run on one hostile
site; these classes are what the task manager deploys against that:

* :class:`Watchdog` — per-stage visit deadlines on the virtual clock.
  A stage that overruns raises :class:`VisitDeadlineExceeded`; the task
  manager aborts the visit (discarding its partial rows) and restarts
  the browser slot instead of hanging forever.
* :class:`CircuitBreaker` — a per-site failure counter. A site that
  keeps killing browsers across N restarts is quarantined: recorded in
  the ``quarantined_sites`` table, skipped thereafter, surfaced by
  ``repro stats``.
* :class:`CrashLoopDetector` — a browser slot that restarts repeatedly
  within a short window gets an exponentially growing cooldown instead
  of hot-looping relaunches.

All three are thread-safe (shared across pool workers) and purely
clock-driven — they never touch wall time, so supervised crawls stay
deterministic.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional


class VisitDeadlineExceeded(RuntimeError):
    """A visit stage overran its deadline (the visit is hung)."""

    def __init__(self, url: str, stage: str, elapsed: float,
                 deadline: float) -> None:
        super().__init__(
            f"visit stage {stage!r} for {url!r} ran {elapsed:.3f}s "
            f"(virtual) against a {deadline:.3f}s deadline")
        self.url = url
        self.stage = stage
        self.elapsed = elapsed
        self.deadline = deadline


class Watchdog:
    """Per-stage visit deadlines measured on the virtual clock.

    ``start()`` samples the clock (without ticking it — an armed
    watchdog over a healthy crawl is byte-identical to no watchdog);
    ``check(stage, started, url)`` raises when the elapsed virtual time
    exceeds the stage's deadline. ``stage_deadlines`` overrides the
    default per stage name.
    """

    def __init__(self, clock: Any,
                 default_deadline: Optional[float] = None,
                 stage_deadlines: Optional[Dict[str, float]] = None
                 ) -> None:
        self.clock = clock
        self.default_deadline = default_deadline
        self.stage_deadlines = dict(stage_deadlines or {})
        #: Flight-recorder hook ``fn(exc: VisitDeadlineExceeded)``
        #: fired just before the deadline exception propagates.
        self.on_abort: Optional[Any] = None

    def deadline_for(self, stage: str) -> Optional[float]:
        return self.stage_deadlines.get(stage, self.default_deadline)

    def start(self) -> float:
        return self.clock.peek()

    def check(self, stage: str, started: float, url: str = "") -> None:
        deadline = self.deadline_for(stage)
        if deadline is None:
            return
        elapsed = self.clock.peek() - started
        if elapsed > deadline:
            exc = VisitDeadlineExceeded(url, stage, elapsed, deadline)
            if self.on_abort is not None:
                self.on_abort(exc)
            raise exc


class CircuitBreaker:
    """Quarantine sites that keep failing across browser restarts."""

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}
        self._open: Dict[str, bool] = {}

    def record_failure(self, site_url: str) -> bool:
        """Count one failure; True when this call *newly* opens the
        breaker (the caller records the quarantine exactly once)."""
        with self._lock:
            if self._open.get(site_url):
                return False
            count = self._failures.get(site_url, 0) + 1
            self._failures[site_url] = count
            if count >= self.threshold:
                self._open[site_url] = True
                return True
            return False

    def is_open(self, site_url: str) -> bool:
        with self._lock:
            return bool(self._open.get(site_url))

    def force_open(self, site_url: str) -> None:
        """Mark a site quarantined without counting (resume path)."""
        with self._lock:
            self._open[site_url] = True
            self._failures[site_url] = max(
                self._failures.get(site_url, 0), self.threshold)

    def reset(self, site_url: str) -> None:
        """Close the breaker and forget a site's failures (the site
        turned out fine — e.g. a stale quarantine was retracted)."""
        with self._lock:
            self._open.pop(site_url, None)
            self._failures.pop(site_url, None)

    def failures(self, site_url: str) -> int:
        with self._lock:
            return self._failures.get(site_url, 0)

    def open_sites(self) -> List[str]:
        with self._lock:
            return sorted(site for site, is_open in self._open.items()
                          if is_open)


class CrashLoopDetector:
    """Cool down a browser slot that restarts repeatedly.

    ``on_restart(browser_id, now)`` returns how many (virtual) seconds
    the slot should cool down: 0.0 while restarts are sparse, then
    ``cooldown * 2**(streak-1)`` (capped) once ``threshold`` restarts
    land inside ``window`` seconds. The window resets after each
    triggered cooldown so a genuinely recovered slot starts clean.
    """

    def __init__(self, threshold: int, window_seconds: float = 10.0,
                 cooldown_seconds: float = 30.0,
                 max_backoff_factor: float = 8.0) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.window_seconds = window_seconds
        self.cooldown_seconds = cooldown_seconds
        self.max_backoff_factor = max_backoff_factor
        self._lock = threading.Lock()
        self._restarts: Dict[int, List[float]] = {}
        self._streaks: Dict[int, int] = {}

    def on_restart(self, browser_id: int, now: float) -> float:
        with self._lock:
            times = self._restarts.setdefault(browser_id, [])
            times.append(now)
            while times and now - times[0] > self.window_seconds:
                times.pop(0)
            if len(times) < self.threshold:
                return 0.0
            streak = self._streaks.get(browser_id, 0) + 1
            self._streaks[browser_id] = streak
            times.clear()
            return min(
                self.cooldown_seconds * 2.0 ** (streak - 1),
                self.cooldown_seconds * self.max_backoff_factor)

"""Multi-database shard fan-out for the serve layer.

``repro serve <db1> <db2> ...`` answers the same JSON payloads as a
single-database server by merging each shard's ``rollups_*`` aggregates
at query time. Every rollup is a counter, so the merge is summation —
with two deliberate exceptions that keep the answers byte-identical to
serving the union database:

* ``totals.content`` counts the *union* of content hashes, because the
  canonical ``content`` table is hash-deduplicated: a script stored by
  two shards is one row in the merged database, not two;
* a ``/corpus/<hash>`` ``stored`` block comes from the first shard (in
  argument order) holding the body — all shards store identical bytes
  for one hash, so the choice only has to be deterministic.

The shards' rollup generations compose into a **vector generation**
(one component per database, in argument order) used for response-cache
keys and ``ETag`` values: any shard advancing invalidates exactly like
a single generation bump would.

Sites are expected to be disjoint across shards (each site was crawled
into exactly one database). Overlap does not crash — counters still
sum — but per-site verdict cards then describe the *combined* rows,
which no single-database crawl would have produced.
"""

from __future__ import annotations

import sqlite3
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serve.aggregates import _one, _ranked
from repro.serve.rollups import (
    ROLLUP_SCHEMA_VERSION,
    generation,
    rollups_state,
)

Connections = Sequence[sqlite3.Connection]


def vector_generation(connections: Connections) -> Tuple[int, ...]:
    """One generation component per shard, in argument order."""
    return tuple(generation(conn) for conn in connections)


def fanout_state(connections: Connections) -> str:
    """``fresh`` iff every shard's rollups are fresh, else the first
    non-fresh shard's state (the degradation the caller must fix)."""
    for conn in connections:
        state = rollups_state(conn)
        if state != "fresh":
            return state
    return "fresh"


def _sum_counts(connections: Connections, sql: str,
                key_width: int) -> Counter:
    counts: Counter = Counter()
    for conn in connections:
        for row in conn.execute(sql):
            counts[tuple(row[:key_width])] += int(row[key_width])
    return counts


# ----------------------------------------------------------------------
# Aggregate endpoints (same payload shapes as repro.serve.aggregates)
# ----------------------------------------------------------------------
def totals_fanout(connections: Connections) -> Dict[str, Any]:
    totals = {name: 0 for name in (
        "site_visits", "http_requests", "http_responses",
        "javascript", "javascript_cookies", "content",
        "crash_history", "failed_visits", "quarantined_sites")}
    for conn in connections:
        for name, value in conn.execute(
                "SELECT name, value FROM rollups_totals"):
            if name in totals:
                totals[str(name)] += int(value)
    hashes = set()
    for conn in connections:
        hashes.update(str(row[0]) for row in conn.execute(
            "SELECT content_hash FROM content"))
    totals["content"] = len(hashes)
    visits: Counter = Counter()
    for conn in connections:
        for site, count in conn.execute(
                "SELECT site_url, visits FROM rollups_sites"):
            visits[str(site)] += int(count)
    return {"totals": {name: int(count)
                       for name, count in sorted(totals.items())},
            "distinct_sites_visited":
                sum(1 for count in visits.values() if count > 0)}


def symbols_fanout(connections: Connections) -> Dict[str, Any]:
    counts = _sum_counts(connections, "SELECT symbol, operation, count "
                                      "FROM rollups_symbols", 2)
    return {"symbols": _ranked(
        [(str(s), str(o), n) for (s, o), n in counts.items()],
        ("symbol", "operation"))}


def resources_fanout(connections: Connections) -> Dict[str, Any]:
    counts = _sum_counts(
        connections, "SELECT resource_type, is_third_party, count "
                     "FROM rollups_resources", 2)
    return {"resources": _ranked(
        [(str(r), int(t), n) for (r, t), n in counts.items()],
        ("resource_type", "is_third_party"))}


def cookies_fanout(connections: Connections) -> Dict[str, Any]:
    counts = _sum_counts(connections, "SELECT host, count "
                                      "FROM rollups_cookie_hosts", 1)
    return {"hosts": _ranked([(str(h), n) for (h,), n
                              in counts.items()], ("host",))}


def crashes_fanout(connections: Connections) -> Dict[str, Any]:
    counts = _sum_counts(connections, "SELECT action, count "
                                      "FROM rollups_crashes", 1)
    return {"crashes": _ranked([(str(a), n) for (a,), n
                                in counts.items()], ("action",))}


def drop_reasons_fanout(connections: Connections) -> Dict[str, Any]:
    counts = _sum_counts(connections, "SELECT reason, count "
                                      "FROM rollups_drop_reasons", 1)
    return {"drop_reasons": _ranked(
        [(str(r), n) for (r,), n in counts.items()], ("reason",))}


FANOUT_BUILDERS = {
    "totals": totals_fanout,
    "symbols": symbols_fanout,
    "resources": resources_fanout,
    "cookies": cookies_fanout,
    "crashes": crashes_fanout,
    "drop_reasons": drop_reasons_fanout,
}


# ----------------------------------------------------------------------
# Per-site verdicts / corpus lookups / health
# ----------------------------------------------------------------------
def sites_fanout(connections: Connections) -> Dict[str, Any]:
    urls = set()
    for conn in connections:
        urls.update(str(row[0]) for row in conn.execute(
            "SELECT site_url FROM rollups_sites"))
    ordered = sorted(urls)
    return {"sites": ordered, "count": len(ordered)}


_SITE_COUNTER_NAMES = ("visits", "js_rows", "http_rows",
                       "response_rows", "cookie_rows",
                       "third_party_requests", "webdriver_probes",
                       "crashes", "failed", "quarantined")


def site_fanout(connections: Connections,
                site_url: str) -> Optional[Dict[str, Any]]:
    counters: Optional[Dict[str, int]] = None
    scripts: Counter = Counter()
    for conn in connections:
        row = conn.execute(
            "SELECT " + ", ".join(_SITE_COUNTER_NAMES)
            + " FROM rollups_sites WHERE site_url = ?",
            (site_url,)).fetchone()
        if row is not None:
            if counters is None:
                counters = {name: 0 for name in _SITE_COUNTER_NAMES}
            for name, value in zip(_SITE_COUNTER_NAMES, row):
                counters[name] += int(value)
        for digest, refs in conn.execute(
                "SELECT content_hash, refs FROM rollups_script_sites "
                "WHERE site_url = ?", (site_url,)):
            scripts[str(digest)] += int(refs)
    if counters is None:
        return None
    return {
        "site_url": site_url,
        "counters": counters,
        "verdicts": {
            "visited": counters["visits"] > 0,
            "crashed": counters["crashes"] > 0,
            "failed": counters["failed"] > 0,
            "quarantined": counters["quarantined"] > 0,
            "probed_webdriver": counters["webdriver_probes"] > 0,
        },
        "scripts": _ranked([(digest, n)
                            for digest, n in scripts.items()],
                           ("content_hash",)),
    }


def script_fanout(connections: Connections,
                  content_hash: str) -> Optional[Dict[str, Any]]:
    refs = 0
    sites: Counter = Counter()
    stored = None
    for conn in connections:
        row = conn.execute(
            "SELECT refs FROM rollups_scripts WHERE content_hash = ?",
            (content_hash,)).fetchone()
        if row is not None:
            refs += int(row[0])
        for url, count in conn.execute(
                "SELECT site_url, refs FROM rollups_script_sites "
                "WHERE content_hash = ?", (content_hash,)):
            sites[str(url)] += int(count)
        if stored is None:
            stored = conn.execute(
                "SELECT url, content_type, length(content) "
                "FROM content WHERE content_hash = ?",
                (content_hash,)).fetchone()
    if refs == 0 and stored is None:
        return None
    payload: Dict[str, Any] = {
        "content_hash": content_hash,
        "refs": refs,
        "sites": _ranked([(url, n) for url, n in sites.items()],
                         ("site_url",)),
        "stored": stored is not None,
    }
    if stored is not None:
        payload["url"] = stored[0]
        payload["content_type"] = stored[1]
        payload["size"] = int(stored[2] or 0)
    return payload


def healthz_fanout(connections: Connections,
                   database_paths: List[str]) -> Dict[str, Any]:
    state = fanout_state(connections)
    sites = 0
    if state != "absent":
        for conn in connections:
            if rollups_state(conn) != "absent":
                sites += _one(conn,
                              "SELECT COUNT(*) FROM rollups_sites")
    return {
        "status": "ok" if state == "fresh" else "degraded",
        "rollups": state,
        "schema_version": ROLLUP_SCHEMA_VERSION,
        "generation": list(vector_generation(connections)),
        "sites": sites,
        "database": list(database_paths),
    }

"""Tests for the static/dynamic scan pipeline (paper Sec. 4)."""

import pytest

from repro.core.scan.classify import (
    VisitEvidence,
    classify_site,
    identify_first_party_vendor,
)
from repro.core.scan.static_analysis import (
    PATTERNS,
    deobfuscate,
    evaluate_pattern_false_positives,
    scan_script,
)
from repro.web import detector_scripts as corpus


class TestDeobfuscation:
    def test_hex_escapes_decoded(self):
        assert "webdriver" in deobfuscate(
            r'navigator["\x77\x65\x62\x64\x72\x69\x76\x65\x72"]')

    def test_unicode_escapes_decoded(self):
        assert "web" in deobfuscate(r"'web'")

    def test_comments_removed(self):
        cleaned = deobfuscate("a(); // navigator.webdriver\nb();")
        assert "webdriver" not in cleaned

    def test_block_comments_removed(self):
        assert "secret" not in deobfuscate("/* secret */ code();")


class TestPatterns:
    """Table 13: which patterns catch what, and which false-positive."""

    def test_plain_detector_matches_strict(self):
        hit = scan_script(corpus.selenium_detector("p.test", "plain"))
        assert hit.strict_match

    def test_minified_detector_matches_strict(self):
        hit = scan_script(corpus.selenium_detector("p.test", "minified"))
        assert hit.strict_match

    def test_hex_detector_caught_after_deobfuscation(self):
        hit = scan_script(corpus.selenium_detector("p.test", "hex"))
        assert hit.strict_match
        assert "navigator-bracket-webdriver" in hit.matched

    def test_concat_obfuscation_evades_static(self):
        hit = scan_script(corpus.selenium_detector("p.test", "obfuscated"))
        assert not hit.strict_match
        assert not hit.any_match

    def test_lazy_detector_visible_statically(self):
        hit = scan_script(corpus.selenium_detector("p.test", "lazy"))
        assert hit.strict_match

    def test_decoy_matches_loose_only(self):
        hit = scan_script(corpus.DECOY_UA_SCRIPT)
        assert hit.any_match
        assert not hit.strict_match

    def test_openwpm_patterns(self):
        hit = scan_script(corpus.openwpm_detector(
            "cheqzone.com", ("jsInstruments",), obfuscated=False))
        assert hit.openwpm_match

    def test_obfuscated_openwpm_probe_evades_static(self):
        hit = scan_script(corpus.openwpm_detector(
            "google.com", ("getInstrumentJS",), obfuscated=True))
        assert not hit.openwpm_match

    def test_false_positive_evaluation(self):
        scripts = [
            (corpus.selenium_detector("p.test", "plain"), True),
            (corpus.DECOY_UA_SCRIPT, False),
            (corpus.BENIGN_LIBRARY, False),
        ]
        stats = evaluate_pattern_false_positives(scripts)
        assert stats["loose-webdriver"]["false_positives"] == 1
        assert stats["navigator-dot-webdriver"]["false_positives"] == 0
        strict = {p.name for p in PATTERNS if p.strict}
        for name in strict:
            assert stats[name]["false_positives"] == 0


class TestClassification:
    def _evidence(self, **kwargs):
        defaults = {"page_url": "https://www.site.test/"}
        defaults.update(kwargs)
        return VisitEvidence(**defaults)

    def test_static_only_site(self):
        evidence = self._evidence(scripts=[
            ("https://p.test/tag.js",
             corpus.selenium_detector("p.test", "lazy"))])
        result = classify_site("site.test", [evidence])
        assert result.static_clean and not result.dynamic_identified

    def test_dynamic_only_site(self):
        evidence = self._evidence(
            scripts=[("https://p.test/tag.js",
                      corpus.selenium_detector("p.test", "obfuscated"))],
            webdriver_accessors={"https://p.test/tag.js?form=obfuscated"})
        result = classify_site("site.test", [evidence])
        assert result.dynamic_clean and not result.static_clean

    def test_iterator_is_inconclusive(self):
        evidence = self._evidence(
            webdriver_accessors={"https://fp.test/fp.js"},
            honey_hits={"https://fp.test/fp.js": {"h1", "h2", "h3"}})
        result = classify_site("site.test", [evidence])
        assert result.dynamic_identified
        assert not result.dynamic_clean
        assert "https://fp.test/fp.js" in result.iterator_scripts

    def test_iterator_plus_static_strict_is_conclusive(self):
        url = "https://fp.test/fp.js"
        evidence = self._evidence(
            scripts=[(url, corpus.selenium_detector("fp.test", "plain"))],
            webdriver_accessors={url},
            honey_hits={url: {"h1", "h2"}})
        result = classify_site("site.test", [evidence])
        assert result.dynamic_clean

    def test_first_vs_third_party_attribution(self):
        evidence = self._evidence(
            webdriver_accessors={
                "https://www.site.test/akam/11/abcdef1234567890",
                "https://yandex.ru/tag.js?form=plain"})
        result = classify_site("site.test", [evidence])
        assert result.has_first_party
        assert "yandex.ru" in result.third_party_hosts

    def test_residue_access_marks_openwpm_probe(self):
        evidence = self._evidence(residue_accessors={
            "https://cheqzone.com/owpm.js": {"jsInstruments"}})
        result = classify_site("site.test", [evidence])
        assert result.probes_openwpm
        assert "cheqzone.com" in result.openwpm_probes["jsInstruments"]

    @pytest.mark.parametrize("url,vendor", [
        ("https://s.test/akam/11/0f3acd", "Akamai"),
        ("https://s.test/_Incapsula_Resource?SWJIYLWA=x", "Incapsula"),
        ("https://s.test/cdn-cgi/bm/cv/2172558837/api.js", "Cloudflare"),
        ("https://s.test/0a1b2c3d/init.js", "PerimeterX"),
        ("https://s.test/assets/" + "a" * 32, "Unknown"),
        ("https://s.test/js/bot-check-x.js", None),
    ])
    def test_vendor_signatures_table12(self, url, vendor):
        assert identify_first_party_vendor(url) == vendor


class TestPipelineAgainstGroundTruth:
    """End-to-end scan over the session world (150 sites + subpages)."""

    def test_dynamic_matches_ground_truth_closely(self, small_world,
                                                  scan_dataset):
        truth = small_world.ground_truth.dynamic_detectable()
        found = {d for d, c in scan_dataset.combined.items()
                 if c.dynamic_clean}
        # CSP-blocking sites legitimately suppress the vanilla JS
        # instrument, so a small deficit is expected.
        missed = truth - found
        assert len(missed) <= len(
            small_world.ground_truth.csp_blocking_sites()) + 1
        assert not (found - truth -
                    small_world.ground_truth.openwpm_probe_sites())

    def test_static_matches_ground_truth(self, small_world, scan_dataset):
        truth = small_world.ground_truth.static_detectable()
        found = {d for d, c in scan_dataset.combined.items()
                 if c.static_clean}
        assert found == truth

    def test_loose_static_includes_decoys(self, small_world, scan_dataset):
        decoys = small_world.ground_truth.decoy_sites()
        loose = {d for d, c in scan_dataset.combined.items()
                 if c.static_identified and not c.static_clean}
        assert decoys & loose

    def test_union_exceeds_each_method(self, scan_dataset):
        table5 = scan_dataset.table5()
        assert table5["clean"]["union"] >= table5["clean"]["static"]
        assert table5["clean"]["union"] >= table5["clean"]["dynamic"]

    def test_subpage_scanning_increases_detection(self, scan_dataset):
        front = sum(c.clean_union
                    for c in scan_dataset.front_only.values())
        combined = sum(c.clean_union
                       for c in scan_dataset.combined.values())
        assert combined > front

    def test_fig4_partition_consistent(self, scan_dataset):
        fig4 = scan_dataset.fig4()
        assert fig4["static_only"] + fig4["both"] == fig4["static_total"]
        assert fig4["dynamic_only"] + fig4["both"] == fig4["dynamic_total"]
        assert fig4["union"] == fig4["static_only"] + fig4["dynamic_only"] \
            + fig4["both"]

    def test_iterators_found_when_planted(self, small_world, scan_dataset):
        planted = small_world.ground_truth.iterator_sites()
        if not planted:
            pytest.skip("no iterator sites in this seed")
        found_iterators = {
            d for d, c in scan_dataset.combined.items()
            if c.iterator_scripts}
        assert planted & found_iterators

    def test_table7_counts_providers(self, scan_dataset, small_world):
        table7 = dict((host, count) for host, count, _
                      in scan_dataset.table7(100))
        truth = small_world.ground_truth.third_party_inclusions()
        for host, count in truth.items():
            assert table7.get(host, 0) <= count  # never overcounts

    def test_unique_scripts_collected(self, scan_dataset):
        assert len(scan_dataset.unique_scripts) > 10

    def test_subpage_selection_respects_etld(self, small_world,
                                             scan_dataset):
        # Off-site links are planted on every front page; subpage visits
        # must all stay on-site: 3 per site at most.
        assert scan_dataset.subpage_visits \
            <= scan_dataset.visited_sites * 3


class TestScanResultStore:
    """The sidecar that makes scan resume return complete datasets."""

    def _evidence(self):
        return VisitEvidence(
            page_url="https://www.a.test/",
            scripts=[("https://cdn.test/bot.js", "navigator.webdriver")],
            webdriver_accessors={"https://cdn.test/bot.js"},
            residue_accessors={"https://cdn.test/bot.js": {"icon_x"}},
            honey_hits={"https://cdn.test/iter.js": {"h1", "h2"}})

    def test_round_trip_preserves_evidence(self):
        from repro.core.scan.results_store import ScanResultStore

        store = ScanResultStore()
        store.save("a.test", [self._evidence()])
        loaded = store.load_all()["a.test"]
        assert len(loaded) == 1
        restored = loaded[0]
        original = self._evidence()
        assert restored.page_url == original.page_url
        assert restored.scripts == original.scripts
        assert restored.webdriver_accessors == original.webdriver_accessors
        assert restored.residue_accessors == original.residue_accessors
        assert restored.honey_hits == original.honey_hits
        # Classification is a pure function of evidence, so persisted
        # evidence reproduces the verdict exactly.
        assert classify_site("a.test", loaded).dynamic_identified \
            == classify_site("a.test", [original]).dynamic_identified
        store.close()

    def test_save_is_replace(self):
        from repro.core.scan.results_store import ScanResultStore

        store = ScanResultStore()
        store.save("a.test", [self._evidence()])
        store.save("a.test", [self._evidence(), self._evidence()])
        assert len(store.load_all()["a.test"]) == 2
        assert store.domains() == ["a.test"]
        store.close()

    def test_persists_across_reopen(self, tmp_path):
        from repro.core.scan.results_store import (
            ScanResultStore,
            store_path_for,
        )

        path = store_path_for(str(tmp_path / "scan.queue"))
        store = ScanResultStore(path)
        store.save("a.test", [self._evidence()])
        store.close()
        reopened = ScanResultStore(path)
        assert reopened.domains() == ["a.test"]
        reopened.close()

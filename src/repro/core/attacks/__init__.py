"""Attacks on OpenWPM's data recording (paper Sec. 5).

Each attack is a genuine JavaScript payload (the paper's Listings 2-4)
plus a harness that runs it in a lab page against an instrumented
browser and reports whether the attack succeeded.
"""

from repro.core.attacks.dispatcher import (
    AttackOutcome,
    BLOCK_RECORDING_ATTACK,
    GRAB_ID_SNIPPET,
    run_block_recording_attack,
    run_fake_injection_attack,
)
from repro.core.attacks.csp_attack import run_csp_blocking_attack
from repro.core.attacks.iframe_bypass import (
    IFRAME_BYPASS_ATTACK,
    run_iframe_bypass_attack,
)
from repro.core.attacks.silent_js import (
    SILENT_DELIVERY_ATTACK,
    run_silent_delivery_attack,
)
from repro.core.attacks.sql_injection import run_sql_injection_probe

__all__ = [
    "AttackOutcome",
    "GRAB_ID_SNIPPET",
    "BLOCK_RECORDING_ATTACK",
    "run_block_recording_attack",
    "run_fake_injection_attack",
    "run_csp_blocking_attack",
    "IFRAME_BYPASS_ATTACK",
    "run_iframe_bypass_attack",
    "SILENT_DELIVERY_ATTACK",
    "run_silent_delivery_attack",
    "run_sql_injection_probe",
]

"""The synthetic web.

A deterministic, seedable stand-in for the Tranco Top-100K web the paper
scans: ranked sites with categories, a third-party ecosystem (ad/tracker
networks, bot-detection providers, CDNs), genuine JavaScript detector
scripts in several disguise levels, first-party detection vendors
(Akamai/Incapsula/Cloudflare/PerimeterX), OpenWPM-specific detectors
(CHEQ, reCAPTCHA, adzouk), CSP deployments, and cloaking behaviour
driven by actual client-side detection plus server-side
re-identification.

Every planted behaviour is recorded in a :class:`GroundTruth` so the
scan pipeline's precision/recall can be validated, and the marginal
rates are calibrated to the paper's published counts (Tables 5-7,
11-12, Figs 3-5).
"""

from repro.web.tranco import TrancoList, TrancoSite
from repro.web.world import GroundTruth, SyntheticWeb, build_world

__all__ = [
    "TrancoList",
    "TrancoSite",
    "SyntheticWeb",
    "GroundTruth",
    "build_world",
]

"""Unit tests for URL parsing and eTLD+1 handling."""

import pytest

from repro.net.url import URL, etld_plus_one, same_site, split_registrable


class TestURLParsing:
    def test_absolute(self):
        url = URL.parse("https://www.example.com/a/b?q=1#frag")
        assert url.scheme == "https"
        assert url.host == "www.example.com"
        assert url.path == "/a/b"
        assert url.query == "q=1"
        assert url.fragment == "frag"

    def test_defaults(self):
        url = URL.parse("https://example.com")
        assert url.path == "/"
        assert url.query == ""

    def test_port(self):
        url = URL.parse("http://example.com:8080/x")
        assert url.port == 8080
        assert url.origin == "http://example.com:8080"

    def test_case_normalisation(self):
        url = URL.parse("HTTPS://Example.COM/Path")
        assert url.scheme == "https"
        assert url.host == "example.com"
        assert url.path == "/Path"  # path case preserved

    def test_relative_path_against_base(self):
        base = URL.parse("https://example.com/dir/page.html")
        assert str(URL.parse("other.html", base=base)) \
            == "https://example.com/dir/other.html"

    def test_root_relative(self):
        base = URL.parse("https://example.com/dir/page.html")
        assert str(URL.parse("/top.html", base=base)) \
            == "https://example.com/top.html"

    def test_protocol_relative(self):
        base = URL.parse("https://example.com/")
        assert URL.parse("//cdn.example.com/x.js", base=base).host \
            == "cdn.example.com"

    def test_relative_without_base_raises(self):
        with pytest.raises(ValueError):
            URL.parse("/no-base")

    def test_filename_and_extension(self):
        url = URL.parse("https://x.test/static/app.min.js")
        assert url.filename == "app.min.js"
        assert url.extension == "js"

    def test_no_extension(self):
        assert URL.parse("https://x.test/cheat").extension == ""

    def test_str_roundtrip(self):
        text = "https://a.b.example.org/path/x?k=v#f"
        assert str(URL.parse(text)) == text

    def test_sibling(self):
        url = URL.parse("https://x.test/a/b")
        assert str(url.sibling("/csp")) == "https://x.test/csp"


class TestETLDPlusOne:
    @pytest.mark.parametrize("host,expected", [
        ("example.com", "example.com"),
        ("www.example.com", "example.com"),
        ("a.b.c.example.com", "example.com"),
        ("shop.example.co.uk", "example.co.uk"),
        ("example.co.uk", "example.co.uk"),
        ("single", "single"),
        ("192.168.0.1", "192.168.0.1"),
    ])
    def test_registrable(self, host, expected):
        assert etld_plus_one(host) == expected

    def test_same_site_subdomains(self):
        assert same_site("www.example.com", "cdn.example.com")

    def test_different_sites(self):
        assert not same_site("example.com", "example.org")

    def test_multi_label_suffix_not_same_site(self):
        assert not same_site("a.co.uk", "b.co.uk")

    def test_split_registrable(self):
        assert split_registrable("www.shop.example.com") \
            == ("www.shop", "example.com")
        assert split_registrable("example.com") == ("", "example.com")

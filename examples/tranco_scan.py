#!/usr/bin/env python3
"""Scan a synthetic Tranco list for bot detectors (paper Sec. 4).

Combined static + dynamic analysis with honey properties, front pages
plus up to three same-site subpages; prints the Table 5/6/7/11/12
summaries against the planted ground truth.

    python examples/tranco_scan.py [--sites 500] [--no-subpages]
"""

import argparse

from repro.core.scan import ScanPipeline
from repro.web import build_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=500,
                        help="number of ranked sites to generate/scan")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-subpages", action="store_true",
                        help="front pages only")
    args = parser.parse_args()

    print(f"Building synthetic web ({args.sites} sites, "
          f"seed {args.seed})...")
    web = build_world(site_count=args.sites, seed=args.seed)
    pipeline = ScanPipeline(web)
    print("Scanning (this interprets every delivered script)...")
    dataset = pipeline.run(visit_subpages=not args.no_subpages)

    n = dataset.visited_sites
    table5 = dataset.table5()
    print(f"\n== Table 5: sites with Selenium detectors "
          f"(of {n}; paper rates in parens) ==")
    print(f"  identified  static {table5['identified']['static']:>5} "
          f"({table5['identified']['static'] / n:.1%} vs 32.7%)")
    print(f"  identified dynamic {table5['identified']['dynamic']:>5} "
          f"({table5['identified']['dynamic'] / n:.1%} vs 19.1%)")
    print(f"  clean       static {table5['clean']['static']:>5} "
          f"({table5['clean']['static'] / n:.1%} vs 15.8%)")
    print(f"  clean      dynamic {table5['clean']['dynamic']:>5} "
          f"({table5['clean']['dynamic'] / n:.1%} vs 16.8%)")
    print(f"  clean        union {table5['clean']['union']:>5} "
          f"({table5['clean']['union'] / n:.1%} vs 18.7%)")

    table11 = dataset.table11()
    print(f"\n== Table 11: front pages probing webdriver ==")
    print(f"  static {table11['static_rate']:.1%} (paper 12.0%), "
          f"dynamic {table11['dynamic_rate']:.1%} (12.2%), "
          f"combined {table11['combined_rate']:.1%} (14.0%)")

    print("\n== Table 7: top third-party detector hosts ==")
    for host, count, share in dataset.table7(8):
        print(f"  {host:<26} {count:>4}  ({share:.1%})")

    print("\n== Table 12: first-party vendors ==")
    for vendor, count in sorted(dataset.table12().items(),
                                key=lambda kv: -kv[1]):
        print(f"  {vendor:<12} {count}")

    table6 = dataset.table6()
    print(f"\n== Table 6: OpenWPM-specific probes "
          f"({dataset.openwpm_probe_site_count()} sites) ==")
    for provider, stats in table6.items():
        print(f"  {provider:<26} {stats}")

    truth = web.ground_truth
    print("\n== vs planted ground truth ==")
    print(f"  planted detector sites: {len(truth.detector_sites())}; "
          f"clean-union found: {table5['clean']['union']}")
    print(f"  planted decoys (static FPs): {len(truth.decoy_sites())}; "
          f"loose-only static hits: "
          f"{table5['identified']['static'] - table5['clean']['static']}")


if __name__ == "__main__":
    main()

"""Tree-walking interpreter for the JS subset.

The interpreter executes page scripts against a *realm* (a global object
plus the standard builtins, see :mod:`repro.jsengine.builtins`). It
maintains a JS call stack so thrown errors carry realistic stack traces —
the channel the paper uses to detect OpenWPM's wrapper functions
(Sec. 3.1.4) and that the hardened instrumentation sanitises (Sec. 6.1.3).
"""

from __future__ import annotations

import hashlib
import math
import os
import sys
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.jsengine import ast_nodes as ast
from repro.jsengine.parser import parse
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.errors import JSError, StackFrame, make_error_object
from repro.jsobject.functions import JSFunction
from repro.jsobject.objects import JSArray, JSObject
from repro.jsobject.values import (
    NULL,
    UNDEFINED,
    format_number,
    js_equals,
    js_strict_equals,
    js_truthy,
    js_typeof,
    to_number,
)


# Each JS stack frame consumes a few dozen Python frames; give the
# tree-walker headroom so the JS-level recursion guard fires first.
if sys.getrecursionlimit() < 20_000:
    sys.setrecursionlimit(20_000)

def source_digest(source: str) -> str:
    """sha256 of the source text; the same formula as the script corpus
    (`repro.corpus.script_hash`), so the scan pipeline's content hashes
    address this cache directly."""
    return hashlib.sha256(
        source.encode("utf-8", "surrogatepass")).hexdigest()


class _ASTCache:
    """Process-wide LRU parse cache keyed by content hash.

    Keys are sha256 digests (64 bytes each) rather than full source
    texts, so the key side no longer pins large script bodies in RAM,
    and eviction is LRU instead of the old "silently stop caching at
    2048 entries". Compiled closure trees attach to the cached
    ``Program`` nodes, so evicting an entry releases both the AST and
    its compiled form together.
    """

    def __init__(self, max_entries: int = 2048) -> None:
        self._programs: "OrderedDict[str, ast.Program]" = OrderedDict()
        self._max = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, source: str) -> "ast.Program":
        digest = source_digest(source)
        with self._lock:
            program = self._programs.get(digest)
            if program is not None:
                self._programs.move_to_end(digest)
                self.hits += 1
                return program
            self.misses += 1
        program = parse(source)  # outside the lock; SyntaxError propagates
        with self._lock:
            existing = self._programs.get(digest)
            if existing is not None:
                # Raced with another thread: keep the first copy (it may
                # already carry a compiled tree).
                return existing
            self._programs[digest] = program
            while len(self._programs) > self._max:
                self._programs.popitem(last=False)
                self.evictions += 1
        return program

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "entries": len(self._programs)}

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self.hits = self.misses = self.evictions = 0


#: Process-wide parse cache (content hash -> immutable Program AST).
_AST_CACHE = _ASTCache()


def parse_cached(source: str):
    """Parse with the process-wide AST cache (ASTs are never mutated)."""
    return _AST_CACHE.get(source)


def ast_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters of the process-wide AST cache."""
    return _AST_CACHE.stats()


def clear_ast_cache() -> None:
    """Drop all cached (and compiled) programs; for tests/benchmarks."""
    _AST_CACHE.clear()


def export_cache_metrics(metrics: Any) -> None:
    """Publish AST-cache counters through a metrics registry
    (:class:`repro.obs.metrics.MetricsRegistry`)."""
    stats = _AST_CACHE.stats()
    metrics.gauge("jsengine_ast_cache_hits").set(float(stats["hits"]))
    metrics.gauge("jsengine_ast_cache_misses").set(float(stats["misses"]))
    metrics.gauge("jsengine_ast_cache_evictions").set(
        float(stats["evictions"]))
    metrics.gauge("jsengine_ast_cache_entries").set(float(stats["entries"]))


def _env_compile_enabled() -> bool:
    return os.environ.get("REPRO_JS_COMPILE", "on").lower() \
        not in ("off", "0", "false", "no")


#: Execution backend switch. ``REPRO_JS_COMPILE=off`` keeps the
#: tree-walking interpreter as the reference implementation; the default
#: runs programs through the closure-compilation backend
#: (:mod:`repro.jsengine.compiler`). Both backends are pinned to
#: identical observable behaviour by the differential test battery.
_JS_COMPILE = _env_compile_enabled()


#: Engine-wide profiler hook (a
#: :class:`repro.obs.profiler.ScriptProfiler`, or ``None``). Installed
#: via :func:`repro.obs.profiler.install_profiler`; interpreters
#: capture it at construction, so the disabled cost is one ``is not
#: None`` branch per frame push/pop. Both backends route frames through
#: ``push_frame``/``pop_frame``, so one hook point profiles both.
_PROFILER: Optional[Any] = None


def compile_enabled() -> bool:
    return _JS_COMPILE


def set_compile_enabled(enabled: Optional[bool]) -> bool:
    """Switch backends at runtime (tests/benchmarks); ``None`` re-reads
    the ``REPRO_JS_COMPILE`` environment variable. Returns the previous
    setting."""
    global _JS_COMPILE
    previous = _JS_COMPILE
    _JS_COMPILE = _env_compile_enabled() if enabled is None else bool(enabled)
    return previous


def warm_compile_cache(source: str) -> str:
    """Parse *source* into the AST cache and (when the compiled backend
    is active) compile it, so a later ``run()`` of the same content hash
    pays neither cost. Returns the digest. Used by the corpus store to
    pre-compile known script bodies."""
    program = _AST_CACHE.get(source)
    if _JS_COMPILE:
        from repro.jsengine.compiler import compile_program
        compile_program(program)
    return source_digest(source)


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value
        super().__init__()


class ExecutionBudgetExceeded(RuntimeError):
    """Raised when a script exceeds the interpreter's operation budget."""


class Scope:
    """A lexical scope with a parent link (closures share scopes).

    ``function_scope`` marks function/global scopes: ``var``
    declarations hoist to the nearest one, while ``let``/``const`` bind
    to the block scope they appear in.
    """

    __slots__ = ("variables", "parent", "constants", "function_scope")

    def __init__(self, parent: Optional["Scope"] = None,
                 function_scope: bool = False) -> None:
        self.variables: Dict[str, Any] = {}
        # Lazily allocated: most scopes never declare a const, and loop
        # bodies allocate one scope per iteration.
        self.constants: Optional[set] = None
        self.parent = parent
        self.function_scope = function_scope

    def declare(self, name: str, value: Any, kind: str = "var") -> None:
        target = self.nearest_function_scope() if kind == "var" else self
        target.variables[name] = value
        if kind == "const":
            if target.constants is None:
                target.constants = set()
            target.constants.add(name)

    def nearest_function_scope(self) -> "Scope":
        scope: Scope = self
        while not scope.function_scope and scope.parent is not None:
            scope = scope.parent
        return scope

    def resolve(self, name: str) -> Optional["Scope"]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.variables:
                return scope
            scope = scope.parent
        return None


class Frame:
    """A mutable call-stack frame; snapshotted into StackFrame on capture."""

    __slots__ = ("function_name", "script_url", "line", "column")

    def __init__(self, function_name: str, script_url: str,
                 line: int = 0, column: int = 0) -> None:
        self.function_name = function_name
        self.script_url = script_url
        self.line = line
        self.column = column

    def snapshot(self) -> StackFrame:
        return StackFrame(self.function_name, self.script_url,
                          self.line, self.column)


class ScriptFunction(JSFunction):
    """A function defined by interpreted JavaScript.

    ``toString`` returns the original source slice — which is how the
    paper's Listing 1 detects that OpenWPM replaced a native builtin with
    a script-level wrapper.
    """

    def __init__(self, node: ast.FunctionExpression, closure: Scope,
                 interp: "Interpreter",
                 captured_this: Any = None,
                 lightweight: bool = False) -> None:
        proto = interp.realm.function_prototype if interp.realm else None
        super().__init__(name=node.name, proto=proto)
        self.node = node
        self.closure = closure
        self.home_interpreter = interp
        self.script_url = interp.current_script_url
        self.is_arrow = node.is_arrow
        self.captured_this = captured_this
        # ``lightweight`` skips the own prototype/name/length properties;
        # used for the thousands of instrumentation wrappers, which are
        # never constructed and never introspected through those props.
        if lightweight:
            return
        if not node.is_arrow:
            prototype = JSObject(
                proto=interp.realm.object_prototype if interp.realm else None)
            prototype.put("constructor", self, enumerable=False)
            self.put("prototype", prototype, enumerable=False)
        self.put("name", node.name, writable=False, enumerable=False)
        self.put("length", float(len(node.params)), writable=False,
                 enumerable=False)

    def call(self, interp: Any, this: Any, args: List[Any]) -> Any:
        # A function executes in its *home* realm regardless of which
        # realm calls it (ECMAScript realm semantics). A parent frame
        # calling into an iframe's wrapped API must resolve `document`
        # etc. against the iframe's globals.
        interp = self.home_interpreter or interp
        if _JS_COMPILE:
            # Compiled bodies cache on the (shared, immutable) AST node:
            # the instrumentation wrapper templates are four process-wide
            # nodes, so the thousands of wrappers compile exactly once.
            plan = getattr(self.node, "_compiled_plan", None)
            if plan is None:
                from repro.jsengine.compiler import compile_function
                plan = compile_function(self.node)
            return plan.call(self, interp, this, args)
        scope = Scope(parent=self.closure, function_scope=True)
        for index, param in enumerate(self.node.params):
            scope.declare(param, args[index] if index < len(args)
                          else UNDEFINED)
        arguments = JSArray(list(args),
                            proto=interp.realm.array_prototype
                            if interp.realm else None)
        if not self.is_arrow:
            scope.declare("arguments", arguments)
        effective_this = self.captured_this if self.is_arrow else this
        frame = Frame(self.function_name or "<anonymous>", self.script_url,
                      self.node.line, self.node.column)
        interp.push_frame(frame)
        previous_this = interp.current_this
        interp.current_this = effective_this
        try:
            interp.hoist(self.node.body, scope)
            for statement in self.node.body:
                interp.execute(statement, scope)
        except _Return as ret:
            return ret.value
        finally:
            interp.current_this = previous_this
            interp.pop_frame()
        return UNDEFINED

    def construct(self, interp: Any, args: List[Any]) -> Any:
        interp = interp or self.home_interpreter
        prototype = self.get("prototype", interp)
        if not isinstance(prototype, JSObject):
            prototype = interp.realm.object_prototype if interp.realm else None
        instance = JSObject(proto=prototype)
        result = self.call(interp, instance, args)
        return result if isinstance(result, JSObject) else instance

    def to_source_string(self) -> str:
        return self.node.source


class Interpreter:
    """Executes scripts against a realm/global object.

    One interpreter instance corresponds to one JS execution context
    (e.g. a page's main world). A browser creates one per window/frame.
    """

    #: default per-run operation budget (a single script's visit count)
    DEFAULT_BUDGET = 5_000_000

    def __init__(self, realm: Any = None,
                 budget: int = DEFAULT_BUDGET) -> None:
        # realm is a repro.jsengine.builtins.Realm (kept duck-typed to
        # avoid an import cycle).
        self.realm = realm
        self.global_object: Optional[JSObject] = (
            realm.global_object if realm else None)
        self.budget = budget
        # Countdown budget: decremented once per executed node, reset to
        # ``budget`` at every program start; the error materializes only
        # on expiry.
        self._ops_left = budget
        # Per-interpreter profiler capture (see module-level _PROFILER).
        self.profiler = _PROFILER
        self._profile_hash: Optional[str] = None
        self.call_stack: List[Frame] = []
        self.current_script_url = "<host>"
        self.current_this: Any = self.global_object
        #: Engine-level access hook: ``fn(kind, obj, name, payload)``
        #: with kind in {'get', 'set', 'call'}. Invoked for member
        #: accesses *below* the page's object layer — the debugger-API
        #: instrumentation channel the paper recommends (Sec. 8): no
        #: page-visible descriptor is touched.
        self.access_hook: Optional[Any] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, source: str, script_url: str = "inline") -> Any:
        """Parse and execute *source*; returns the last statement's value.

        Parsed programs are cached process-wide keyed by content hash
        (the synthetic web serves identical scripts to thousands of
        sites); the AST is never mutated, so sharing across realms is
        safe. With the compiled backend active the closure tree is also
        cached on the program, so each unique script compiles once.

        Syntax errors and uncaught JS throws propagate as
        :class:`repro.jsobject.errors.JSError`.
        """
        try:
            program = _AST_CACHE.get(source)
        except SyntaxError as exc:
            raise JSError.syntax_error(str(exc)) from exc
        if self.profiler is not None:
            # The content hash the profiler attributes this program
            # run's ops to — same formula as the corpus store, so hot
            # scripts join it directly. Computed only when profiling.
            self._profile_hash = source_digest(source)
        return self.run_program(program, script_url)

    def run_program(self, program: ast.Program,
                    script_url: str = "inline") -> Any:
        if _JS_COMPILE:
            unit = getattr(program, "_compiled_unit", None)
            if unit is None:
                from repro.jsengine.compiler import compile_program
                unit = compile_program(program)
            return unit.run(self, script_url)
        previous_url = self.current_script_url
        self.current_script_url = script_url
        self._ops_left = self.budget
        scope = Scope(function_scope=True)
        frame = Frame("<global>", script_url)
        self.push_frame(frame)
        previous_this = self.current_this
        self.current_this = self.global_object
        result: Any = UNDEFINED
        try:
            self.hoist(program.body, scope)
            for statement in program.body:
                result = self.execute(statement, scope)
        finally:
            self.current_this = previous_this
            self.pop_frame()
            self.current_script_url = previous_url
        return result

    def run_program_in_scope(self, program: ast.Program, scope: Scope,
                             script_url: str, this: Any,
                             frame_name: str = "<instrument>") -> Scope:
        """Execute *program* against a caller-provided top-level scope.

        Used by the extension layer (instrument injection) which needs
        the script's scope afterwards to plant host helpers. The budget
        countdown is deliberately *not* reset — this path rides on the
        current script's budget, exactly like the historical
        hoist+execute loop it replaces.
        """
        previous_url = self.current_script_url
        self.current_script_url = script_url
        self.push_frame(Frame(frame_name, script_url))
        previous_this = self.current_this
        self.current_this = this
        try:
            if _JS_COMPILE:
                unit = getattr(program, "_compiled_unit", None)
                if unit is None:
                    from repro.jsengine.compiler import compile_program
                    unit = compile_program(program)
                unit.run_in_scope(self, scope)
            else:
                self.hoist(program.body, scope)
                for statement in program.body:
                    self.execute(statement, scope)
        finally:
            self.current_this = previous_this
            self.pop_frame()
            self.current_script_url = previous_url
        return scope

    @property
    def ops_used(self) -> int:
        """Operations consumed since the current program started."""
        return self.budget - self._ops_left

    def call_function(self, fn: JSFunction, this: Any = None,
                      args: Optional[List[Any]] = None) -> Any:
        """Host-side helper to invoke a JS function."""
        return fn.call(self, this if this is not None else UNDEFINED,
                       args or [])

    # ------------------------------------------------------------------
    # Stack management
    # ------------------------------------------------------------------
    def push_frame(self, frame: Frame) -> None:
        if len(self.call_stack) > 200:
            raise JSError(self.make_error(
                "InternalError", "too much recursion"))
        self.call_stack.append(frame)
        if self.profiler is not None:
            self.profiler.on_push(self, frame)

    def pop_frame(self) -> None:
        frame = self.call_stack.pop()
        if self.profiler is not None:
            self.profiler.on_pop(self, frame)

    def capture_stack(self) -> List[StackFrame]:
        """Snapshot the call stack, innermost frame first."""
        return [frame.snapshot() for frame in reversed(self.call_stack)]

    def make_error(self, kind: str, message: str) -> JSObject:
        """Build an Error object carrying the current stack."""
        frames = self.capture_stack()
        script_url = frames[0].script_url if frames else self.current_script_url
        line = frames[0].line if frames else 0
        column = frames[0].column if frames else 0
        error = make_error_object(kind, message, frames, script_url,
                                  line, column)
        if self.realm is not None:
            error.proto = self.realm.error_prototype
        return error

    def throw(self, kind: str, message: str) -> None:
        raise JSError(self.make_error(kind, message))

    def _tick(self, node: ast.Node) -> None:
        self._ops_left -= 1
        if self._ops_left < 0:
            self._budget_error()
        if self.call_stack:
            frame = self.call_stack[-1]
            frame.line = node.line
            frame.column = node.column

    def _budget_error(self) -> None:
        raise ExecutionBudgetExceeded(
            f"script exceeded {self.budget} operations")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def hoist(self, body: List[ast.Node], scope: Scope) -> None:
        """Hoist function declarations (and var names) to scope top."""
        for statement in body:
            if isinstance(statement, ast.FunctionDeclaration):
                fn = ScriptFunction(statement.function, scope, self)
                scope.declare(statement.function.name, fn)
            elif isinstance(statement, ast.VariableDeclaration) \
                    and statement.kind == "var":
                for name, _ in statement.declarations:
                    if scope.resolve(name) is None:
                        scope.declare(name, UNDEFINED)

    def execute(self, node: ast.Node, scope: Scope) -> Any:
        self._tick(node)
        method = getattr(self, "_exec_" + type(node).__name__, None)
        if method is None:
            raise NotImplementedError(
                f"no executor for {type(node).__name__}")
        return method(node, scope)

    def _exec_ExpressionStatement(self, node: ast.ExpressionStatement,
                                  scope: Scope) -> Any:
        return self.evaluate(node.expression, scope)

    def _exec_VariableDeclaration(self, node: ast.VariableDeclaration,
                                  scope: Scope) -> Any:
        for name, init in node.declarations:
            value = self.evaluate(init, scope) if init is not None \
                else UNDEFINED
            scope.declare(name, value, node.kind)
        return UNDEFINED

    def _exec_FunctionDeclaration(self, node: ast.FunctionDeclaration,
                                  scope: Scope) -> Any:
        # Already hoisted; re-declare so later re-execution rebinds.
        fn = ScriptFunction(node.function, scope, self)
        scope.declare(node.function.name, fn)
        return UNDEFINED

    def _exec_BlockStatement(self, node: ast.BlockStatement,
                             scope: Scope) -> Any:
        inner = Scope(parent=scope)
        self.hoist(node.body, inner)
        result: Any = UNDEFINED
        for statement in node.body:
            result = self.execute(statement, inner)
        return result

    def _exec_IfStatement(self, node: ast.IfStatement, scope: Scope) -> Any:
        if js_truthy(self.evaluate(node.test, scope)):
            return self.execute(node.consequent, scope)
        if node.alternate is not None:
            return self.execute(node.alternate, scope)
        return UNDEFINED

    def _exec_WhileStatement(self, node: ast.WhileStatement,
                             scope: Scope) -> Any:
        while js_truthy(self.evaluate(node.test, scope)):
            try:
                self.execute(node.body, scope)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _exec_DoWhileStatement(self, node: ast.DoWhileStatement,
                               scope: Scope) -> Any:
        while True:
            try:
                self.execute(node.body, scope)
            except _Break:
                break
            except _Continue:
                pass
            if not js_truthy(self.evaluate(node.test, scope)):
                break
        return UNDEFINED

    def _exec_ForStatement(self, node: ast.ForStatement, scope: Scope) -> Any:
        loop_scope = Scope(parent=scope)
        if node.init is not None:
            self.execute(node.init, loop_scope)
        while node.test is None or js_truthy(
                self.evaluate(node.test, loop_scope)):
            try:
                self.execute(node.body, loop_scope)
            except _Break:
                break
            except _Continue:
                pass
            if node.update is not None:
                self.evaluate(node.update, loop_scope)
        return UNDEFINED

    def _exec_ForInStatement(self, node: ast.ForInStatement,
                             scope: Scope) -> Any:
        loop_scope = Scope(parent=scope)
        target = self.evaluate(node.object, loop_scope)
        if node.kind:
            loop_scope.declare(node.name, UNDEFINED, node.kind)
        if node.of:
            items = self._iterate_values(target)
        else:
            items = self._iterate_keys(target)
        for item in items:
            self._assign_identifier(node.name, item, loop_scope)
            try:
                self.execute(node.body, loop_scope)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _iterate_keys(self, target: Any) -> List[Any]:
        if isinstance(target, JSObject):
            return list(target.enumerable_keys())
        if isinstance(target, str):
            return [str(i) for i in range(len(target))]
        return []

    def _iterate_values(self, target: Any) -> List[Any]:
        if isinstance(target, JSArray):
            return list(target.elements)
        if isinstance(target, str):
            return list(target)
        if isinstance(target, JSObject):
            return [target.get(key, self)
                    for key in target.enumerable_keys()]
        self.throw("TypeError", "value is not iterable")

    def _exec_ReturnStatement(self, node: ast.ReturnStatement,
                              scope: Scope) -> Any:
        value = self.evaluate(node.argument, scope) \
            if node.argument is not None else UNDEFINED
        raise _Return(value)

    def _exec_BreakStatement(self, node: ast.BreakStatement,
                             scope: Scope) -> Any:
        raise _Break()

    def _exec_ContinueStatement(self, node: ast.ContinueStatement,
                                scope: Scope) -> Any:
        raise _Continue()

    def _exec_ThrowStatement(self, node: ast.ThrowStatement,
                             scope: Scope) -> Any:
        raise JSError(self.evaluate(node.argument, scope))

    def _exec_TryStatement(self, node: ast.TryStatement, scope: Scope) -> Any:
        try:
            self.execute(node.block, scope)
        except JSError as exc:
            if node.catch_block is not None:
                catch_scope = Scope(parent=scope)
                if node.catch_param:
                    catch_scope.declare(node.catch_param, exc.value)
                self._exec_BlockStatement(node.catch_block, catch_scope)
        finally:
            if node.finally_block is not None:
                self.execute(node.finally_block, scope)
        return UNDEFINED

    def _exec_SwitchStatement(self, node: ast.SwitchStatement,
                              scope: Scope) -> Any:
        discriminant = self.evaluate(node.discriminant, scope)
        switch_scope = Scope(parent=scope)
        start_index: Optional[int] = None
        default_index: Optional[int] = None
        for index, case in enumerate(node.cases):
            if case.test is None:
                default_index = index
                continue
            if js_strict_equals(discriminant,
                                self.evaluate(case.test, switch_scope)):
                start_index = index
                break
        if start_index is None:
            start_index = default_index
        if start_index is None:
            return UNDEFINED
        try:
            # Fall through from the matched case until break.
            for case in node.cases[start_index:]:
                for statement in case.body:
                    self.execute(statement, switch_scope)
        except _Break:
            pass
        return UNDEFINED

    def _exec_EmptyStatement(self, node: ast.EmptyStatement,
                             scope: Scope) -> Any:
        return UNDEFINED

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def evaluate(self, node: ast.Node, scope: Scope) -> Any:
        self._tick(node)
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is None:
            raise NotImplementedError(
                f"no evaluator for {type(node).__name__}")
        return method(node, scope)

    def _eval_NumberLiteral(self, node: ast.NumberLiteral,
                            scope: Scope) -> Any:
        return node.value

    def _eval_StringLiteral(self, node: ast.StringLiteral,
                            scope: Scope) -> Any:
        return node.value

    def _eval_BooleanLiteral(self, node: ast.BooleanLiteral,
                             scope: Scope) -> Any:
        return node.value

    def _eval_NullLiteral(self, node: ast.NullLiteral, scope: Scope) -> Any:
        return NULL

    def _eval_UndefinedLiteral(self, node: ast.UndefinedLiteral,
                               scope: Scope) -> Any:
        return UNDEFINED

    def _eval_ThisExpression(self, node: ast.ThisExpression,
                             scope: Scope) -> Any:
        if self.current_this is UNDEFINED or self.current_this is None:
            return self.global_object if self.global_object is not None \
                else UNDEFINED
        return self.current_this

    def _eval_Identifier(self, node: ast.Identifier, scope: Scope) -> Any:
        holder = scope.resolve(node.name)
        if holder is not None:
            return holder.variables[node.name]
        if self.global_object is not None \
                and self.global_object.has_property(node.name):
            return self.global_object.get(node.name, self)
        self.throw("ReferenceError", f"{node.name} is not defined")

    def _eval_ArrayLiteral(self, node: ast.ArrayLiteral, scope: Scope) -> Any:
        elements = [self.evaluate(element, scope)
                    for element in node.elements]
        return JSArray(elements, proto=self.realm.array_prototype
                       if self.realm else None)

    def _eval_ObjectLiteral(self, node: ast.ObjectLiteral,
                            scope: Scope) -> Any:
        obj = JSObject(proto=self.realm.object_prototype
                       if self.realm else None)
        for key, value_node in node.entries:
            obj.put(key, self.evaluate(value_node, scope))
        for key, kind, fn_node in node.accessors:
            fn = ScriptFunction(fn_node, scope, self)
            existing = obj.get_own_descriptor(key)
            if existing is not None and existing.is_accessor:
                descriptor = existing
            else:
                descriptor = PropertyDescriptor.accessor()
                obj.properties[key] = descriptor
            if kind == "get":
                descriptor.get = fn
            else:
                descriptor.set = fn
        return obj

    def _eval_FunctionExpression(self, node: ast.FunctionExpression,
                                 scope: Scope) -> Any:
        captured = self.current_this if node.is_arrow else None
        return ScriptFunction(node, scope, self, captured_this=captured)

    def _eval_MemberExpression(self, node: ast.MemberExpression,
                               scope: Scope) -> Any:
        obj = self.evaluate(node.object, scope)
        name = self._member_name(node, scope)
        return self.get_member(obj, name)

    def _member_name(self, node: ast.MemberExpression, scope: Scope) -> str:
        if node.computed:
            return self.to_string(self.evaluate(node.property, scope))
        return node.property

    def get_member(self, obj: Any, name: str) -> Any:
        """Property read with primitive auto-boxing."""
        if obj is UNDEFINED or obj is NULL:
            self.throw("TypeError",
                       f"can't access property {name!r} of "
                       f"{'undefined' if obj is UNDEFINED else 'null'}")
        if isinstance(obj, JSObject):
            value = obj.get(name, self)
            if self.access_hook is not None:
                self.access_hook("get", obj, name, value)
            return value
        if self.realm is not None:
            return self.realm.get_primitive_member(obj, name, self)
        return UNDEFINED

    def set_member(self, obj: Any, name: str, value: Any) -> None:
        if obj is UNDEFINED or obj is NULL:
            self.throw("TypeError",
                       f"can't set property {name!r} of "
                       f"{'undefined' if obj is UNDEFINED else 'null'}")
        if isinstance(obj, JSObject):
            if self.access_hook is not None:
                self.access_hook("set", obj, name, value)
            obj.set(name, value, self)

    def _eval_CallExpression(self, node: ast.CallExpression,
                             scope: Scope) -> Any:
        if isinstance(node.callee, ast.MemberExpression):
            this = self.evaluate(node.callee.object, scope)
            name = self._member_name(node.callee, scope)
            fn = self.get_member(this, name)
            if not isinstance(fn, JSFunction):
                self.throw("TypeError", f"{name} is not a function")
            args = [self.evaluate(arg, scope) for arg in node.arguments]
            if self.access_hook is not None and isinstance(this, JSObject):
                self.access_hook("call", this, name, args)
            return fn.call(self, this, args)
        fn = self.evaluate(node.callee, scope)
        if not isinstance(fn, JSFunction):
            name = getattr(node.callee, "name", "expression")
            self.throw("TypeError", f"{name} is not a function")
        args = [self.evaluate(arg, scope) for arg in node.arguments]
        return fn.call(self, UNDEFINED, args)

    def _eval_NewExpression(self, node: ast.NewExpression,
                            scope: Scope) -> Any:
        constructor = self.evaluate(node.callee, scope)
        if not isinstance(constructor, JSFunction):
            self.throw("TypeError", "not a constructor")
        args = [self.evaluate(arg, scope) for arg in node.arguments]
        try:
            return constructor.construct(self, args)
        except NotImplementedError:
            self.throw("TypeError",
                       f"{constructor.function_name or 'value'} "
                       "is not a constructor")

    def _eval_UnaryExpression(self, node: ast.UnaryExpression,
                              scope: Scope) -> Any:
        op = node.op
        if op == "typeof":
            # typeof never throws on unresolved identifiers.
            if isinstance(node.operand, ast.Identifier):
                name = node.operand.name
                if scope.resolve(name) is None and (
                        self.global_object is None
                        or not self.global_object.has_property(name)):
                    return "undefined"
            return js_typeof(self.evaluate(node.operand, scope))
        if op == "delete":
            if isinstance(node.operand, ast.MemberExpression):
                obj = self.evaluate(node.operand.object, scope)
                name = self._member_name(node.operand, scope)
                if isinstance(obj, JSObject):
                    return obj.delete_property(name)
                return True
            return False
        value = self.evaluate(node.operand, scope)
        if op == "void":
            return UNDEFINED
        if op == "!":
            return not js_truthy(value)
        if op == "-":
            return -self.to_number(value)
        if op == "+":
            return self.to_number(value)
        if op == "~":
            return float(~_to_int32(self.to_number(value)))
        raise NotImplementedError(f"unary operator {op}")

    def _eval_UpdateExpression(self, node: ast.UpdateExpression,
                               scope: Scope) -> Any:
        old = self.to_number(self._read_target(node.target, scope))
        new = old + 1 if node.op == "++" else old - 1
        self._write_target(node.target, new, scope)
        return new if node.prefix else old

    def _read_target(self, target: ast.Node, scope: Scope) -> Any:
        if isinstance(target, ast.Identifier):
            return self._eval_Identifier(target, scope)
        if isinstance(target, ast.MemberExpression):
            return self._eval_MemberExpression(target, scope)
        self.throw("SyntaxError", "invalid update target")

    def _write_target(self, target: ast.Node, value: Any,
                      scope: Scope) -> None:
        if isinstance(target, ast.Identifier):
            self._assign_identifier(target.name, value, scope)
        elif isinstance(target, ast.MemberExpression):
            obj = self.evaluate(target.object, scope)
            name = self._member_name(target, scope)
            self.set_member(obj, name, value)
        else:
            self.throw("SyntaxError", "invalid assignment target")

    def _assign_identifier(self, name: str, value: Any, scope: Scope) -> None:
        holder = scope.resolve(name)
        if holder is not None:
            if holder.constants is not None and name in holder.constants:
                self.throw("TypeError",
                           f"invalid assignment to const '{name}'")
            holder.variables[name] = value
            return
        if self.global_object is not None:
            # Sloppy-mode implicit global.
            self.global_object.set(name, value, self)
            return
        scope.declare(name, value)

    def _eval_BinaryExpression(self, node: ast.BinaryExpression,
                               scope: Scope) -> Any:
        op = node.op
        left = self.evaluate(node.left, scope)
        right = self.evaluate(node.right, scope)
        return self.apply_binary(op, left, right)

    def apply_binary(self, op: str, left: Any, right: Any) -> Any:
        if op == "+":
            left_primitive = self._to_primitive(left)
            right_primitive = self._to_primitive(right)
            if isinstance(left_primitive, str) or isinstance(
                    right_primitive, str):
                return self.to_string(left_primitive) + self.to_string(
                    right_primitive)
            return self.to_number(left_primitive) + self.to_number(
                right_primitive)
        if op in ("-", "*", "/", "%", "**"):
            a, b = self.to_number(left), self.to_number(right)
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                if b == 0:
                    if a == 0 or math.isnan(a):
                        return math.nan
                    return math.copysign(math.inf, a) * math.copysign(1.0, b)
                return a / b
            if op == "%":
                if b == 0 or math.isnan(a) or math.isnan(b):
                    return math.nan
                return math.fmod(a, b)
            return a ** b
        if op in ("<", ">", "<=", ">="):
            left_primitive = self._to_primitive(left)
            right_primitive = self._to_primitive(right)
            if isinstance(left_primitive, str) and isinstance(
                    right_primitive, str):
                pairs = {"<": left_primitive < right_primitive,
                         ">": left_primitive > right_primitive,
                         "<=": left_primitive <= right_primitive,
                         ">=": left_primitive >= right_primitive}
                return pairs[op]
            a, b = self.to_number(left_primitive), self.to_number(
                right_primitive)
            if math.isnan(a) or math.isnan(b):
                return False
            pairs = {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}
            return pairs[op]
        if op == "==":
            return js_equals(left, right)
        if op == "!=":
            return not js_equals(left, right)
        if op == "===":
            return js_strict_equals(left, right)
        if op == "!==":
            return not js_strict_equals(left, right)
        if op in ("&", "|", "^", "<<", ">>", ">>>"):
            a = _to_int32(self.to_number(left))
            b = _to_int32(self.to_number(right))
            shift = b & 31
            if op == "&":
                return float(a & b)
            if op == "|":
                return float(a | b)
            if op == "^":
                return float(a ^ b)
            if op == "<<":
                return float(_wrap_int32(a << shift))
            if op == ">>":
                return float(a >> shift)
            return float((a & 0xFFFFFFFF) >> shift)
        if op == "instanceof":
            if not isinstance(right, JSFunction):
                self.throw("TypeError",
                           "right-hand side of instanceof is not callable")
            prototype = right.get("prototype", self)
            if not isinstance(left, JSObject):
                return False
            return any(p is prototype for p in left.prototype_chain()
                       if p is not left) or (left.proto is prototype)
        if op == "in":
            if not isinstance(right, JSObject):
                self.throw("TypeError",
                           "right-hand side of 'in' is not an object")
            return right.has_property(self.to_string(left))
        raise NotImplementedError(f"binary operator {op}")

    def _eval_LogicalExpression(self, node: ast.LogicalExpression,
                                scope: Scope) -> Any:
        left = self.evaluate(node.left, scope)
        if node.op == "&&":
            return self.evaluate(node.right, scope) if js_truthy(left) \
                else left
        return left if js_truthy(left) else self.evaluate(node.right, scope)

    def _eval_AssignmentExpression(self, node: ast.AssignmentExpression,
                                   scope: Scope) -> Any:
        if node.op == "=":
            value = self.evaluate(node.value, scope)
        else:
            current = self._read_target(node.target, scope)
            value = self.apply_binary(node.op[:-1], current,
                                      self.evaluate(node.value, scope))
        self._write_target(node.target, value, scope)
        return value

    def _eval_ConditionalExpression(self, node: ast.ConditionalExpression,
                                    scope: Scope) -> Any:
        if js_truthy(self.evaluate(node.test, scope)):
            return self.evaluate(node.consequent, scope)
        return self.evaluate(node.alternate, scope)

    def _eval_SequenceExpression(self, node: ast.SequenceExpression,
                                 scope: Scope) -> Any:
        result: Any = UNDEFINED
        for expression in node.expressions:
            result = self.evaluate(expression, scope)
        return result

    # ------------------------------------------------------------------
    # Conversions that may invoke user toString
    # ------------------------------------------------------------------
    def _to_primitive(self, value: Any) -> Any:
        if isinstance(value, JSObject):
            return self.to_string(value)
        return value

    def to_string(self, value: Any) -> str:
        """ToString with object ``toString`` dispatch."""
        if isinstance(value, JSFunction):
            return value.to_source_string()
        if isinstance(value, JSArray):
            return ",".join(
                "" if (v is UNDEFINED or v is NULL) else self.to_string(v)
                for v in value.elements)
        if isinstance(value, JSObject):
            to_string = value.get("toString", self)
            if isinstance(to_string, JSFunction):
                result = to_string.call(self, value, [])
                if not isinstance(result, JSObject):
                    return self.to_string(result)
            return f"[object {value.class_name}]"
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return format_number(float(value))
        if isinstance(value, str):
            return value
        if value is UNDEFINED:
            return "undefined"
        if value is NULL:
            return "null"
        raise TypeError(f"not a JS value: {value!r}")

    def to_number(self, value: Any) -> float:
        if isinstance(value, JSArray) and len(value.elements) == 1:
            return self.to_number(value.elements[0])
        if isinstance(value, JSObject) and not isinstance(value, JSArray):
            return to_number(self.to_string(value))
        return to_number(value)


def _to_int32(value: float) -> int:
    if math.isnan(value) or math.isinf(value):
        return 0
    return _wrap_int32(int(value))


def _wrap_int32(value: int) -> int:
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value

"""JavaScript object model.

This package implements the JavaScript-visible object semantics that the
paper's detection, attack, and hardening techniques operate on:

* prototype chains with own/inherited property lookup,
* property descriptors (data and accessor descriptors),
* functions whose ``toString`` reveals (or hides) their source,
* errors carrying stack traces.

The model is deliberately independent of the interpreter in
:mod:`repro.jsengine`; both native (Python-implemented) and script
(interpreted) functions share the :class:`JSFunction` interface.
"""

from repro.jsobject.values import (
    UNDEFINED,
    NULL,
    JSUndefined,
    JSNull,
    is_callable,
    js_equals,
    js_strict_equals,
    js_truthy,
    js_typeof,
    to_js_string,
    to_number,
)
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.objects import JSArray, JSObject
from repro.jsobject.functions import (
    JSFunction,
    NativeFunction,
    native_function,
)
from repro.jsobject.errors import (
    JSError,
    StackFrame,
    make_error_object,
)

__all__ = [
    "UNDEFINED",
    "NULL",
    "JSUndefined",
    "JSNull",
    "PropertyDescriptor",
    "JSObject",
    "JSArray",
    "JSFunction",
    "NativeFunction",
    "native_function",
    "JSError",
    "StackFrame",
    "make_error_object",
    "is_callable",
    "js_truthy",
    "js_typeof",
    "js_equals",
    "js_strict_equals",
    "to_js_string",
    "to_number",
]

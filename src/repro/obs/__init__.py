"""Crawl telemetry: tracing, metrics, exporters, loss accounting.

The paper's headline finding (Sec. 5) is that OpenWPM's data recording
can be switched off by a visited page with no operator-visible signal.
This package is the counter-measure layer: every visit becomes a trace
with per-stage child spans, a metrics registry counts what was
attempted / completed / written / lost, and ``python -m repro stats``
renders the loss accounting. The ``recording_integrity`` gauge goes to
0 when an end-of-visit probe through the JS instrument's own reporting
channel comes back empty — turning the Sec. 5 dispatcher hijack into an
alert instead of silent data loss.

Zero dependencies, deterministic under fixed seeds (sequential IDs, a
virtual monotonic clock), and near-zero-cost when disabled: the default
:data:`NULL_TELEMETRY` routes every call to shared no-op singletons.
"""

from repro.obs.clock import VirtualClock, WallClock
from repro.obs.export import (
    histogram_quantile,
    metrics_to_prometheus,
    snapshot_to_json,
    spans_to_tree_lines,
)
from repro.obs.journal import (
    NULL_JOURNAL,
    Journal,
    NullJournal,
    count_events,
    journal_files,
    journal_path_for,
    merge_journal,
    read_journal_file,
    sum_metric_deltas,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.profiler import ScriptProfiler, install_profiler
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, coalesce
from repro.obs.trace import (
    chrome_trace_to_json,
    journal_to_chrome_trace,
    spans_to_chrome_trace,
)
from repro.obs.tracing import NullTracer, Span, Tracer

__all__ = [
    "VirtualClock",
    "WallClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "Telemetry",
    "NULL_TELEMETRY",
    "coalesce",
    "histogram_quantile",
    "metrics_to_prometheus",
    "snapshot_to_json",
    "spans_to_tree_lines",
    "Journal",
    "NullJournal",
    "NULL_JOURNAL",
    "journal_path_for",
    "journal_files",
    "read_journal_file",
    "merge_journal",
    "count_events",
    "sum_metric_deltas",
    "ScriptProfiler",
    "install_profiler",
    "journal_to_chrome_trace",
    "spans_to_chrome_trace",
    "chrome_trace_to_json",
]

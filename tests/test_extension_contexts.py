"""Tests for WebExtension contexts, lab helpers, and scan extension."""

import pytest

from repro.browser.extension import ExtensionContext, ExtensionHost
from repro.browser.profiles import openwpm_profile
from repro.core.lab import (
    LAB_URL,
    make_lab_network,
    make_window,
    visit_with_scripts,
)
from repro.core.scan.dynamic_analysis import (
    RESIDUE_PROPERTIES,
    ScanExtension,
)
from repro.jsobject import UNDEFINED


class TestExtensionContext:
    def test_inject_page_script_executes_in_page(self, openwpm_window):
        context = ExtensionContext(openwpm_window)
        assert context.inject_page_script("window.injected = 42;",
                                          "ext://x.js")
        assert openwpm_window.window_object.get("injected") == 42.0

    def test_injected_element_removed_after(self, openwpm_window):
        context = ExtensionContext(openwpm_window)
        context.inject_page_script("1;", "ext://x.js")
        scripts = openwpm_window.document.query_selector_all("script")
        assert not any(s.text_content == "1;" for s in scripts)

    def test_injection_respects_csp(self):
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"), [],
            csp_header="script-src 'self'; report-uri /csp")
        window = result.top_window
        context = ExtensionContext(window)
        assert not context.inject_page_script("window.x = 1;", "ext://x")
        assert context.blocked_injections == ["ext://x"]
        assert window.window_object.get("x") is UNDEFINED

    def test_export_function_is_native_looking(self, openwpm_window):
        context = ExtensionContext(openwpm_window)
        exported = context.export_function(
            lambda interp, this, args: 7.0, "privileged",
            masquerade_name="getContext")
        assert exported.to_source_string() \
            == "function getContext() {\n    [native code]\n}"
        assert exported.call(None, None, []) == 7.0

    def test_export_function_bypasses_csp(self):
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"), [],
            csp_header="script-src 'self'; report-uri /csp")
        window = result.top_window
        context = ExtensionContext(window)
        exported = context.export_function(
            lambda interp, this, args: "ok", "probe")
        window.window_object.put("probe", exported)
        assert window.run_script("probe()") == "ok"

    def test_background_channel(self, openwpm_window):
        received = []
        context = ExtensionContext(
            openwpm_window,
            background=lambda channel, payload: received.append(
                (channel, payload)))
        context.send_to_background("js", {"symbol": "x"})
        assert received == [("js", {"symbol": "x"})]

    def test_default_host_hooks_are_noops(self):
        host = ExtensionHost()
        host.on_visit_start(None, None)
        host.on_window_created(None)
        host.on_frame_created(None, None)
        host.on_request(None, None)
        host.on_cookie_change(None, "added")
        host.on_visit_end(None)
        assert host.frame_policy == "deferred"


class TestLabHelpers:
    def test_make_window_loads_blank_page(self):
        browser, window = make_window(openwpm_profile("ubuntu", "regular"))
        assert str(window.url) == LAB_URL
        assert window.document.ready_state == "complete"

    def test_visit_with_scripts_runs_in_order(self):
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["window.order = 'a';", "window.order = window.order + 'b';"])
        assert result.top_window.window_object.get("order") == "ab"

    def test_lab_network_extra_pages(self):
        from repro.net.http import HttpRequest
        from repro.net.network import ClientIdentity
        from repro.net.page import PageSpec
        from repro.net.url import URL

        network = make_lab_network(
            pages={"/extra": PageSpec(url=LAB_URL + "extra",
                                      title="extra")})
        response, _ = network.fetch(
            HttpRequest(url=URL.parse(LAB_URL + "extra"),
                        resource_type="main_frame"),
            ClientIdentity("c"))
        assert response.page.title == "extra"


class TestScanExtension:
    def test_honey_properties_planted(self):
        extension = ScanExtension()
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["for (var k in navigator) { navigator[k]; }"],
            extension=extension)
        hits = extension.honey_hits_by_script()
        assert hits  # the sweep touched honey properties
        assert any(len(props) >= 2 for props in hits.values())

    def test_targeted_access_leaves_honey_untouched(self):
        extension = ScanExtension()
        visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["navigator.webdriver;"], extension=extension)
        assert extension.honey_hits_by_script() == {}

    def test_residue_monitor_records_missing_property_probe(self):
        extension = ScanExtension()
        visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["window.probe = typeof window.jsInstruments;"],
            extension=extension)
        residues = extension.residue_accesses()
        assert any(a.property_name == "jsInstruments" for a in residues)

    def test_residue_monitor_preserves_typeof_semantics(self):
        extension = ScanExtension()
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["window.a = typeof window.jsInstruments;"
             "window.b = typeof window.getInstrumentJS;"],
            extension=extension)
        window = result.top_window.window_object
        assert window.get("a") == "undefined"  # legacy name absent
        assert window.get("b") == "function"  # current residue present

    def test_residue_names_cover_all_versions(self):
        assert set(RESIDUE_PROPERTIES) == {
            "getInstrumentJS", "jsInstruments",
            "instrumentFingerprintingApis"}

    def test_clear_records_resets_honey(self):
        extension = ScanExtension()
        visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["typeof window.jsInstruments;"], extension=extension)
        extension.clear_records()
        assert extension.honey_accesses == []

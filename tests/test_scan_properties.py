"""Property-based tests for the static-analysis scan path.

Hypothesis exercises ``deobfuscate``/``scan_script`` over generated
inputs, and checks that the corpus hash-cache is semantically invisible:
``ScriptCorpus.scan`` must agree with a direct ``scan_script`` on every
input, cold, warm, and with the cache disabled.

Alphabet notes: deobfuscation is deliberately single-pass, so it is NOT
idempotent on adversarial inputs (``\\x5cx41`` decodes to ``\\x41``,
which would decode again; an escape can also decode to ``*/`` and
terminate a block comment early). The generators below therefore keep
``\\``, ``/`` and ``*`` out of *decoded* text — the regime the paper's
preprocessor targets — and the idempotence property is asserted only
there.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core.scan.static_analysis import deobfuscate, scan_script
from repro.corpus import ScriptCorpus

# Characters that can never start/extend an escape sequence or open or
# close a comment once present in decoded text.
_SAFE_CHARS = "".join(
    c for c in string.ascii_letters + string.digits +
    " \t\n.,;:()[]{}'\"=+-<>!&|%^?~#@$_"
    if c not in "\\/*")

safe_text = st.text(alphabet=_SAFE_CHARS, max_size=80)
safe_char = st.sampled_from(_SAFE_CHARS)

# Comment bodies: must not close the comment themselves and must not
# smuggle in pattern-relevant letters (a comment body containing the
# literal word "webdriver" would legitimately change nothing after
# stripping, but keeping bodies inert makes the subset property sharp).
_COMMENT_CHARS = string.digits + " \t.,;:()=+-"
comment_body = st.text(alphabet=_COMMENT_CHARS, max_size=20)

PROP = settings(max_examples=50, deadline=None, derandomize=True)


def _hex_escape(text):
    return "".join(f"\\x{ord(c):02x}" for c in text)


def _unicode_escape(text):
    return "".join(f"\\u{ord(c):04x}" for c in text)


@given(text=st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=0xFF,
                           exclude_characters="\\/*"),
    max_size=60))
@PROP
def test_hex_escape_round_trip(text):
    assert deobfuscate(_hex_escape(text)) == text


@given(text=st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=0xFFFF,
                           exclude_characters="\\/*"),
    max_size=60))
@PROP
def test_unicode_escape_round_trip(text):
    assert deobfuscate(_unicode_escape(text)) == text


@given(text=safe_text)
@PROP
def test_uppercase_hex_digits_accepted(text):
    encoded = "".join(f"\\x{ord(c):02X}" for c in text)
    assert deobfuscate(encoded) == text


@given(parts=st.lists(st.tuples(safe_text, safe_text), max_size=8))
@PROP
def test_deobfuscate_idempotent_on_safe_alphabet(parts):
    # Interleave literal safe text with escapes that decode to safe
    # text: after one pass no backslash, slash or star remains, so a
    # second pass must be the identity.
    source = "".join(lit + _hex_escape(enc) for lit, enc in parts)
    once = deobfuscate(source)
    assert deobfuscate(once) == once


@given(text=safe_text)
@PROP
def test_deobfuscate_identity_without_escapes_or_comments(text):
    assert deobfuscate(text) == text


@given(base=safe_text,
       comments=st.lists(
           st.tuples(st.integers(min_value=0, max_value=200),
                     st.booleans(), comment_body),
           min_size=1, max_size=4))
@PROP
def test_comment_insertion_never_creates_matches(base, comments):
    """Splicing comments into a script must not add pattern matches.

    Comments are replaced with a single space, which can only break a
    contiguous match, never create one — except for the lookaround
    ``word-webdriver`` pattern, where a space legitimately creates a
    word boundary (``xwebdriver`` -> ``x webdriver``). That pattern is
    excluded from the subset assertion.
    """
    commented = base
    for offset, block, body in comments:
        pos = min(offset, len(commented))
        comment = f"/*{body}*/" if block else f"//{body}\n"
        commented = commented[:pos] + comment + commented[pos:]
    got = set(scan_script(commented).matched) - {"word-webdriver"}
    assert got <= set(scan_script(base).matched)


@given(body=comment_body, block=st.booleans())
@PROP
def test_detector_inside_comment_is_ignored(body, block):
    detector = "navigator.webdriver"
    if block:
        source = f"/* {detector} {body} */ var x = 1;"
    else:
        source = f"// {detector} {body}\nvar x = 1;"
    assert not scan_script(source).matched


@given(text=st.text(max_size=120))
@PROP
def test_corpus_scan_agrees_with_direct_scan(text):
    corpus = ScriptCorpus()
    digest = corpus.put(text)
    for preprocess in (True, False):
        direct = scan_script(text, "u.js", preprocess=preprocess)
        cold = corpus.scan(digest, "u.js", preprocess=preprocess)
        warm = corpus.scan(digest, "u.js", preprocess=preprocess)
        assert cold.matched == direct.matched
        assert warm.matched == direct.matched
    corpus.close()


@given(text=st.text(max_size=120))
@PROP
def test_corpus_scan_agrees_with_cache_disabled(text):
    cached = ScriptCorpus()
    uncached = ScriptCorpus(cache_enabled=False)
    digest = cached.put(text)
    assert uncached.put(text) == digest
    assert cached.scan(digest).matched == uncached.scan(digest).matched
    cached.close()
    uncached.close()


@given(sources=st.lists(st.text(max_size=60), min_size=1, max_size=6))
@PROP
def test_scan_results_stable_across_cache_reload(tmp_path_factory, sources):
    path = str(tmp_path_factory.mktemp("prop") / "c.corpus")
    corpus = ScriptCorpus(path)
    expected = {}
    for source in sources:
        digest = corpus.put(source)
        expected[digest] = corpus.scan(digest).matched
    corpus.close()
    reopened = ScriptCorpus(path)
    for digest, matched in expected.items():
        assert reopened.scan(digest).matched == matched
    reopened.close()

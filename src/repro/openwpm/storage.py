"""SQLite storage controller.

Mirrors OpenWPM's data model: ``site_visits``, ``http_requests``,
``http_responses``, ``javascript`` (the JS-call log), ``javascript_cookies``,
``content`` (archived response bodies), and ``crash_history`` — plus two
reliability tables this reproduction adds: ``failed_visits`` (one row per
site the task manager gave up on, so crawl loss is queryable) and
``telemetry`` (persisted span/metric snapshots from ``repro.obs``, the
basis of ``python -m repro stats``).

Two properties the paper verifies live here:

* RQ6 sanitisation — ``top_level_url`` and ``visit_id`` on JS records are
  set by the controller from its own visit context, never taken from the
  (page-forgeable) event payload;
* RQ7 injection safety — every statement is parameterised; hostile
  strings in any field cannot alter previously stored rows.
"""

from __future__ import annotations

import hashlib
import sqlite3
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

_SCHEMA = """
CREATE TABLE IF NOT EXISTS site_visits (
    visit_id INTEGER PRIMARY KEY,
    browser_id INTEGER NOT NULL,
    site_url TEXT NOT NULL,
    run_label TEXT DEFAULT ''
);
CREATE TABLE IF NOT EXISTS http_requests (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    visit_id INTEGER NOT NULL,
    browser_id INTEGER NOT NULL,
    url TEXT NOT NULL,
    top_level_url TEXT,
    frame_url TEXT,
    method TEXT,
    resource_type TEXT,
    is_third_party_channel INTEGER,
    headers TEXT,
    post_body TEXT
);
CREATE TABLE IF NOT EXISTS http_responses (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    visit_id INTEGER NOT NULL,
    browser_id INTEGER NOT NULL,
    url TEXT NOT NULL,
    response_status INTEGER,
    content_type TEXT,
    content_hash TEXT
);
CREATE TABLE IF NOT EXISTS javascript (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    visit_id INTEGER NOT NULL,
    browser_id INTEGER NOT NULL,
    top_level_url TEXT,
    document_url TEXT,
    script_url TEXT,
    symbol TEXT,
    operation TEXT,
    value TEXT,
    arguments TEXT,
    call_stack TEXT
);
CREATE TABLE IF NOT EXISTS javascript_cookies (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    visit_id INTEGER NOT NULL,
    browser_id INTEGER NOT NULL,
    record_type TEXT,
    change_cause TEXT,
    host TEXT,
    name TEXT,
    value TEXT,
    path TEXT,
    is_session INTEGER,
    is_http_only INTEGER,
    expiry REAL,
    first_party_domain TEXT,
    via_javascript INTEGER
);
CREATE TABLE IF NOT EXISTS content (
    content_hash TEXT PRIMARY KEY,
    content TEXT,
    url TEXT,
    content_type TEXT
);
CREATE TABLE IF NOT EXISTS crash_history (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    browser_id INTEGER NOT NULL,
    visit_id INTEGER,
    site_url TEXT,
    action TEXT
);
CREATE TABLE IF NOT EXISTS failed_visits (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    browser_id INTEGER,
    site_url TEXT NOT NULL,
    attempts INTEGER,
    reason TEXT
);
CREATE TABLE IF NOT EXISTS telemetry (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    labels TEXT DEFAULT '{}',
    value REAL,
    hist_sum REAL,
    hist_count INTEGER,
    bounds TEXT,
    bucket_counts TEXT,
    trace_id TEXT,
    span_id TEXT,
    parent_span_id TEXT,
    start_time REAL,
    end_time REAL,
    status TEXT,
    attributes TEXT
);
"""


@dataclass
class VisitContext:
    """The controller's own notion of the visit being recorded."""

    visit_id: int
    browser_id: int
    site_url: str
    top_level_url: str


class StorageController:
    """Owns the SQLite database and all writes to it."""

    def __init__(self, database_path: str = ":memory:") -> None:
        self.connection = sqlite3.connect(database_path)
        self.connection.row_factory = sqlite3.Row
        self.connection.executescript(_SCHEMA)
        self._next_visit_id = 1
        self.current_visit: Optional[VisitContext] = None

    # ------------------------------------------------------------------
    # Visit lifecycle
    # ------------------------------------------------------------------
    def begin_visit(self, browser_id: int, site_url: str,
                    run_label: str = "") -> VisitContext:
        visit_id = self._next_visit_id
        self._next_visit_id += 1
        self.connection.execute(
            "INSERT INTO site_visits (visit_id, browser_id, site_url, "
            "run_label) VALUES (?, ?, ?, ?)",
            (visit_id, browser_id, site_url, run_label))
        self.current_visit = VisitContext(
            visit_id=visit_id, browser_id=browser_id, site_url=site_url,
            top_level_url=site_url)
        return self.current_visit

    def end_visit(self) -> None:
        self.connection.commit()
        self.current_visit = None

    def _context(self) -> VisitContext:
        if self.current_visit is None:
            # Records arriving outside a visit are attributed to a
            # sentinel context rather than dropped.
            return VisitContext(visit_id=0, browser_id=-1, site_url="",
                                top_level_url="")
        return self.current_visit

    # ------------------------------------------------------------------
    # Row writers
    # ------------------------------------------------------------------
    def record_http_request(self, url: str, top_level_url: str,
                            frame_url: str, method: str, resource_type: str,
                            is_third_party: bool, headers: str = "",
                            post_body: str = "") -> None:
        ctx = self._context()
        self.connection.execute(
            "INSERT INTO http_requests (visit_id, browser_id, url, "
            "top_level_url, frame_url, method, resource_type, "
            "is_third_party_channel, headers, post_body) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (ctx.visit_id, ctx.browser_id, url, top_level_url, frame_url,
             method, resource_type, int(is_third_party), headers, post_body))

    def record_http_response(self, url: str, status: int, content_type: str,
                             content_hash: str = "") -> None:
        ctx = self._context()
        self.connection.execute(
            "INSERT INTO http_responses (visit_id, browser_id, url, "
            "response_status, content_type, content_hash) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (ctx.visit_id, ctx.browser_id, url, status, content_type,
             content_hash))

    def record_content(self, body: str, url: str,
                       content_type: str) -> str:
        content_hash = hashlib.sha256(body.encode()).hexdigest()
        self.connection.execute(
            "INSERT OR IGNORE INTO content (content_hash, content, url, "
            "content_type) VALUES (?, ?, ?, ?)",
            (content_hash, body, url, content_type))
        return content_hash

    def record_javascript(self, document_url: str, script_url: str,
                          symbol: str, operation: str, value: str,
                          arguments: str = "", call_stack: str = "") -> None:
        """Record one JS API access.

        ``top_level_url`` and ``visit_id`` come from the controller's own
        visit context — the sanitisation that limits the fake-data
        injection attack (RQ6) to the currently visited site.
        """
        ctx = self._context()
        self.connection.execute(
            "INSERT INTO javascript (visit_id, browser_id, top_level_url, "
            "document_url, script_url, symbol, operation, value, arguments, "
            "call_stack) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (ctx.visit_id, ctx.browser_id, ctx.top_level_url, document_url,
             script_url, str(symbol)[:2048], str(operation)[:64],
             str(value)[:2048], str(arguments)[:2048],
             str(call_stack)[:4096]))

    def record_cookie(self, change_cause: str, host: str, name: str,
                      value: str, path: str, is_session: bool,
                      is_http_only: bool, expiry: Optional[float],
                      first_party: str, via_javascript: bool) -> None:
        ctx = self._context()
        self.connection.execute(
            "INSERT INTO javascript_cookies (visit_id, browser_id, "
            "record_type, change_cause, host, name, value, path, "
            "is_session, is_http_only, expiry, first_party_domain, "
            "via_javascript) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (ctx.visit_id, ctx.browser_id, "cookie", change_cause, host,
             name, value, path, int(is_session), int(is_http_only),
             expiry if expiry is not None else None, first_party,
             int(via_javascript)))

    def record_crash(self, browser_id: int, site_url: str,
                     action: str) -> None:
        ctx = self.current_visit
        self.connection.execute(
            "INSERT INTO crash_history (browser_id, visit_id, site_url, "
            "action) VALUES (?, ?, ?, ?)",
            (browser_id, ctx.visit_id if ctx else None, site_url, action))

    def record_failed_visit(self, browser_id: int, site_url: str,
                            attempts: int, reason: str) -> None:
        """One row per site given up on (the crawl-loss ledger)."""
        self.connection.execute(
            "INSERT INTO failed_visits (browser_id, site_url, attempts, "
            "reason) VALUES (?, ?, ?, ?)",
            (browser_id, site_url, attempts, reason))

    # ------------------------------------------------------------------
    # Telemetry persistence
    # ------------------------------------------------------------------
    def persist_telemetry(self, snapshot: Dict[str, Any]) -> int:
        """Store a ``Telemetry.snapshot()`` (spans + metrics).

        Snapshots are cumulative, so any previous snapshot is replaced.
        Returns the number of rows written.
        """
        import json

        self.connection.execute("DELETE FROM telemetry")
        rows = 0
        for span in snapshot.get("spans", []):
            self.connection.execute(
                "INSERT INTO telemetry (kind, name, labels, value, "
                "trace_id, span_id, parent_span_id, start_time, end_time, "
                "status, attributes) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, "
                "?, ?)",
                ("span", span["name"], "{}", span["duration"],
                 span["trace_id"], span["span_id"], span["parent_id"],
                 span["start_time"], span["end_time"], span["status"],
                 json.dumps(span.get("attributes", {}), sort_keys=True,
                            default=str)))
            rows += 1
        for metric in snapshot.get("metrics", []):
            self.connection.execute(
                "INSERT INTO telemetry (kind, name, labels, value, "
                "hist_sum, hist_count, bounds, bucket_counts) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (metric["kind"], metric["name"],
                 json.dumps(metric.get("labels", {}), sort_keys=True),
                 metric.get("value"), metric.get("sum"),
                 metric.get("count"),
                 json.dumps(metric.get("bounds")) if "bounds" in metric
                 else None,
                 json.dumps(metric.get("bucket_counts"))
                 if "bucket_counts" in metric else None))
            rows += 1
        self.connection.commit()
        return rows

    def telemetry_metrics(self) -> List[Dict[str, Any]]:
        """Stored metric rows, back in ``MetricsRegistry.snapshot`` shape."""
        import json

        out = []
        for row in self.query(
                "SELECT * FROM telemetry WHERE kind != 'span' ORDER BY id"):
            metric: Dict[str, Any] = {
                "kind": row["kind"], "name": row["name"],
                "labels": json.loads(row["labels"] or "{}")}
            if row["kind"] == "histogram":
                metric["sum"] = row["hist_sum"]
                metric["count"] = row["hist_count"]
                metric["bounds"] = json.loads(row["bounds"] or "[]")
                metric["bucket_counts"] = json.loads(
                    row["bucket_counts"] or "[]")
            else:
                metric["value"] = row["value"]
            out.append(metric)
        return out

    def telemetry_spans(self) -> List[Dict[str, Any]]:
        """Stored span rows, back in ``Tracer.snapshot`` shape."""
        import json

        out = []
        for row in self.query(
                "SELECT * FROM telemetry WHERE kind = 'span' ORDER BY id"):
            out.append({
                "name": row["name"], "trace_id": row["trace_id"],
                "span_id": row["span_id"],
                "parent_id": row["parent_span_id"],
                "start_time": row["start_time"],
                "end_time": row["end_time"], "duration": row["value"],
                "status": row["status"],
                "attributes": json.loads(row["attributes"] or "{}")})
        return out

    def telemetry_metric_value(self, name: str, **labels: str) -> float:
        """One stored counter/gauge value (0.0 when absent)."""
        import json

        wanted = {str(k): str(v) for k, v in labels.items()}
        for metric in self.telemetry_metrics():
            if metric["name"] == name and metric.get("labels",
                                                     {}) == wanted:
                return float(metric.get("value") or 0.0)
        return 0.0

    def failed_visit_rows(self) -> List[Dict[str, Any]]:
        return [dict(row)
                for row in self.query("SELECT * FROM failed_visits")]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, sql: str, params: Tuple = ()) -> List[sqlite3.Row]:
        return list(self.connection.execute(sql, params))

    def javascript_records(self, visit_id: Optional[int] = None
                           ) -> List[Dict[str, Any]]:
        sql = "SELECT * FROM javascript"
        params: Tuple = ()
        if visit_id is not None:
            sql += " WHERE visit_id = ?"
            params = (visit_id,)
        return [dict(row) for row in self.query(sql, params)]

    def http_request_rows(self, visit_id: Optional[int] = None
                          ) -> List[Dict[str, Any]]:
        sql = "SELECT * FROM http_requests"
        params: Tuple = ()
        if visit_id is not None:
            sql += " WHERE visit_id = ?"
            params = (visit_id,)
        return [dict(row) for row in self.query(sql, params)]

    def cookie_rows(self, visit_id: Optional[int] = None
                    ) -> List[Dict[str, Any]]:
        sql = "SELECT * FROM javascript_cookies"
        params: Tuple = ()
        if visit_id is not None:
            sql += " WHERE visit_id = ?"
            params = (visit_id,)
        return [dict(row) for row in self.query(sql, params)]

    def saved_scripts(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self.query(
            "SELECT * FROM content WHERE content_type LIKE '%javascript%'")]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    TABLES = ("site_visits", "http_requests", "http_responses",
              "javascript", "javascript_cookies", "content",
              "crash_history", "failed_visits", "telemetry")

    def export_table_csv(self, table: str, path: str) -> int:
        """Write one table to CSV; returns the number of rows written.

        Table names are validated against the schema (identifiers cannot
        be parameterised in SQL).
        """
        import csv

        if table not in self.TABLES:
            raise ValueError(f"unknown table {table!r}")
        rows = self.query(f"SELECT * FROM {table}")  # noqa: S608
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            if rows:
                writer.writerow(rows[0].keys())
                for row in rows:
                    writer.writerow(tuple(row))
        return len(rows)

    def export_all_csv(self, directory: str) -> Dict[str, int]:
        """Dump every table to ``<directory>/<table>.csv``."""
        import os

        os.makedirs(directory, exist_ok=True)
        return {table: self.export_table_csv(
            table, os.path.join(directory, f"{table}.csv"))
            for table in self.TABLES}

    def close(self) -> None:
        self.connection.commit()
        self.connection.close()

"""Table 5: sites with Selenium detectors (static / dynamic / union)."""

from conftest import BENCH_SITES, report

#: Paper values over 100K sites.
PAPER_RATES = {
    "identified": {"static": 0.327, "dynamic": 0.191, "union": 0.383},
    "clean": {"static": 0.158, "dynamic": 0.168, "union": 0.187},
}


def test_benchmark_table5(benchmark, bench_scan):
    table5 = benchmark(bench_scan.table5)
    n = bench_scan.visited_sites

    lines = [f"(scan of {n} sites + subpages; paper scanned 100,000)",
             "", "| row | method | sites | rate | paper rate |",
             "|---|---|---|---|---|"]
    for row_name, methods in table5.items():
        for method, count in methods.items():
            paper = PAPER_RATES[row_name][method]
            lines.append(f"| {row_name} | {method} | {count} | "
                         f"{count / n:.3f} | {paper:.3f} |")
    report("table05_selenium_detectors",
           "Table 5 - sites with Selenium detectors", lines)

    # Shape assertions: orderings and rough rates hold.
    clean = table5["clean"]
    identified = table5["identified"]
    assert identified["static"] > clean["static"]  # loose-pattern FPs
    assert identified["dynamic"] >= clean["dynamic"]
    assert clean["union"] >= max(clean["static"], clean["dynamic"])
    assert 0.10 < clean["union"] / n < 0.26  # paper: 18.7%

"""OpenWPM's HTTP instrument.

A thin wrapper around the browser's network layer (webRequest in the
real extension): records every request/response and optionally archives
response bodies. The ``save_content='script'`` mode stores only
JavaScript files — identified by content type or a ``.js`` extension —
which is exactly the filter the silent-delivery attack (Sec. 5.4.2 /
Listing 4) slips past.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.net.http import HttpRequest, HttpResponse
from repro.obs.telemetry import Telemetry, coalesce


@dataclass
class HttpExchangeRecord:
    """In-memory mirror of one recorded request/response pair."""

    url: str
    top_level_url: str
    resource_type: str
    method: str
    status: int
    content_type: str
    is_third_party: bool
    body_saved: bool


def looks_like_javascript(response: HttpResponse,
                          request: HttpRequest) -> bool:
    """The upstream filter for 'is this a JavaScript file?'.

    Checks content type and URL extension only — a server that labels
    its payload ``text/plain`` under an extension-less URL evades it.
    """
    if "javascript" in (response.content_type or ""):
        return True
    return request.url.extension == "js"


class HTTPInstrument:
    """Records HTTP traffic and archives content."""

    name = "http_instrument"

    def __init__(self, storage: Any = None,
                 save_content: Optional[str] = "script",
                 telemetry: Optional[Telemetry] = None) -> None:
        self.storage = storage
        #: 'all', 'script', or None.
        self.save_content = save_content
        self.telemetry = coalesce(telemetry)
        self.records: List[HttpExchangeRecord] = []
        #: Archived bodies (url, content_type, body) kept in memory too.
        self.saved_bodies: List[tuple] = []

    def on_request(self, request: HttpRequest,
                   response: HttpResponse) -> None:
        body_saved = False
        if self.save_content == "all":
            body_saved = True
        elif self.save_content == "script":
            body_saved = looks_like_javascript(response, request)

        record = HttpExchangeRecord(
            url=str(request.url),
            top_level_url=str(request.top_frame_url)
            if request.top_frame_url else "",
            resource_type=request.resource_type,
            method=request.method,
            status=response.status,
            content_type=response.content_type,
            is_third_party=request.is_third_party(),
            body_saved=body_saved,
        )
        self.records.append(record)
        self.telemetry.metrics.counter("records_written",
                                       instrument="http").inc()

        content_hash = ""
        if body_saved:
            body = response.body
            if response.script is not None:
                body = response.script.source
            self.saved_bodies.append(
                (str(request.url), response.content_type, body))
            self.telemetry.metrics.counter("bodies_archived").inc()
            if looks_like_javascript(response, request):
                self.telemetry.metrics.counter("scripts_collected").inc()
            if self.storage is not None:
                content_hash = self.storage.record_content(
                    body, str(request.url), response.content_type)
        if self.storage is not None:
            self.storage.record_http_request(
                url=record.url, top_level_url=record.top_level_url,
                frame_url=str(request.frame_url) if request.frame_url else "",
                method=record.method, resource_type=record.resource_type,
                is_third_party=record.is_third_party)
            self.storage.record_http_response(
                url=record.url, status=record.status,
                content_type=record.content_type, content_hash=content_hash)

    # ------------------------------------------------------------------
    def requests_by_type(self) -> dict:
        counts: dict = {}
        for record in self.records:
            counts[record.resource_type] = counts.get(
                record.resource_type, 0) + 1
        return counts

    def saved_javascript(self) -> List[tuple]:
        """Archived bodies that the filter judged to be JavaScript."""
        return list(self.saved_bodies)

    def clear_records(self) -> None:
        self.records.clear()
        self.saved_bodies.clear()

"""Replay transport: serve every fetch from an execution bundle.

:class:`ReplayNetwork` subclasses the live :class:`Network` but never
registers a server — ``fetch`` answers straight from the bundle's
archived hop chains, matched by ``(method, url)`` in FIFO order within
the current visit. The browser above it runs the full instrumentation
and detector pipeline unmodified; only the web underneath is swapped
for the archive. Since the synthetic web serves content as a pure
function of (world, domain, seed), an unchanged pipeline replayed over
an unchanged bundle reproduces byte-identical verdicts and tables —
at any worker count, because visit cursors are thread-local and each
site replays independently.

A fetch with no archived answer is a *replay miss*: it returns 404,
counts ``bundle_replay_misses``, and journals the divergence — it
never silently falls through to a live server (there are none).
"""

from __future__ import annotations

import threading
from collections import deque
from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

from repro.bundles.bundle import Bundle
from repro.bundles.codec import decode_hops
from repro.net.http import HttpRequest, HttpResponse
from repro.net.network import ClientIdentity, ExchangeRecord, Network
from repro.obs.telemetry import coalesce


class ReplayNetwork(Network):
    """A network whose only origin is an execution bundle."""

    def __init__(self, bundle: Bundle, telemetry=None) -> None:
        super().__init__()
        self.bundle = bundle
        self.telemetry = coalesce(telemetry)
        self._tl = threading.local()
        self._miss_lock = threading.Lock()
        self.replay_misses = 0
        self.replay_hits = 0

    # ------------------------------------------------------------------
    # Visit scoping (same protocol as BundleRecorder)
    # ------------------------------------------------------------------
    def begin_visit(self, site: str, url: str) -> None:
        tl = self._tl
        if getattr(tl, "site", None) != site:
            tl.site = site
            tl.next_index = 0
        visit = self.bundle.visit(site, tl.next_index)
        tl.next_index += 1
        queues: Dict[Tuple[str, str], deque] = {}
        for chain in visit.exchanges:
            hops = chain.get("hops") or []
            if not hops:
                continue
            first = hops[0].get("request") or {}
            key = (str(first.get("method", "GET")),
                   str(first.get("url", "")))
            queues.setdefault(key, deque()).append(hops)
        tl.queues = queues

    def end_visit(self, **_) -> None:
        self._tl.queues = None

    def abandon_visit(self) -> None:
        tl = self._tl
        if getattr(tl, "queues", None) is not None:
            # A retried attempt must replay the same archived visit.
            tl.next_index = max(0, tl.next_index - 1)
        tl.queues = None

    def abandon_site(self) -> None:
        tl = self._tl
        tl.queues = None
        tl.site = None

    # ------------------------------------------------------------------
    def fetch(self, request: HttpRequest, client: ClientIdentity
              ) -> Tuple[HttpResponse, List[ExchangeRecord]]:
        queues = getattr(self._tl, "queues", None)
        hops_data = None
        if queues:
            queue = queues.get((request.method, str(request.url)))
            if queue:
                hops_data = queue.popleft()
        if hops_data is None:
            with self._miss_lock:
                self.replay_misses += 1
            self.telemetry.metrics.counter("bundle_replay_misses").inc()
            self.telemetry.journal.emit(
                "bundle_replay_miss", url=str(request.url),
                method=request.method,
                site=getattr(self._tl, "site", None))
            response = HttpResponse.not_found()
            hops = [ExchangeRecord(request, response)]
        else:
            with self._miss_lock:
                self.replay_hits += 1
            response, hops = decode_hops(hops_data, self.bundle.blob,
                                         request)
        if self.record_exchanges:
            self.log.extend(hops)
        if self.recorder is not None:
            self.recorder.on_fetch(request, hops)
        return response, hops


class ReplayWeb:
    """The minimal web facade a replay scan needs.

    Mirrors the two attributes :class:`ScanPipeline` reads from
    :class:`SyntheticWeb` — ``network`` and ``configs`` — plus the
    bundle itself so the pipeline can seed its corpus caches from the
    archive.
    """

    def __init__(self, bundle: Bundle, telemetry=None) -> None:
        self.bundle = bundle
        self.network = ReplayNetwork(bundle, telemetry=telemetry)
        self.configs = [SimpleNamespace(domain=site)
                        for site in bundle.sites()]

    def front_urls(self, n: Optional[int] = None) -> List[str]:
        sites = self.bundle.sites()
        if n is not None:
            sites = sites[:n]
        out = []
        for site in sites:
            visits = self.bundle.visits(site)
            out.append(visits[0].url if visits else site)
        return out

"""Table 11: front-page webdriver-probing rates (vs prior studies)."""

from conftest import report

PAPER = {"static_rate": 0.1196, "dynamic_rate": 0.1219,
         "combined_rate": 0.1399}
VISIBLEV8_2019 = 0.0551  # Jueckstock & Kapravelos, Alexa 50K


def test_benchmark_table11(benchmark, bench_scan):
    table11 = benchmark(bench_scan.table11)

    lines = ["| study | corpus | analysis | rate |", "|---|---|---|---|",
             f"| VisibleV8 (2019) | Alexa 50K | dynamic | "
             f"{VISIBLEV8_2019:.2%} |",
             f"| paper (2020) | Tranco 100K | static | "
             f"{PAPER['static_rate']:.2%} |",
             f"| paper (2020) | Tranco 100K | dynamic | "
             f"{PAPER['dynamic_rate']:.2%} |",
             f"| paper (2020) | Tranco 100K | combined | "
             f"{PAPER['combined_rate']:.2%} |",
             f"| this repro | synthetic {bench_scan.visited_sites} | "
             f"static | {table11['static_rate']:.2%} |",
             f"| this repro | synthetic {bench_scan.visited_sites} | "
             f"dynamic | {table11['dynamic_rate']:.2%} |",
             f"| this repro | synthetic {bench_scan.visited_sites} | "
             f"combined | {table11['combined_rate']:.2%} |"]
    report("table11_webdriver_trend",
           "Table 11 - front-page webdriver probing rates", lines)

    # Rates land near the paper's 12-14% band — far above the 2019
    # baseline the paper contrasts against.
    assert 0.09 < table11["static_rate"] < 0.17
    assert 0.09 < table11["dynamic_rate"] < 0.17
    assert 0.11 < table11["combined_rate"] < 0.18
    assert table11["combined_rate"] > VISIBLEV8_2019
    assert table11["combined_rate"] >= max(table11["static_rate"],
                                           table11["dynamic_rate"])

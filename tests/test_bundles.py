"""Execution bundles: record, replay, fidelity, and integrity.

The contract under test is the paper's reproducibility requirement:
a crawl archived into a bundle and replayed — at any worker count,
with no live web — must reproduce the detector verdicts and derived
tables byte for byte, and any divergence (mutated script, missing
resource, verdict flip, torn recording) must be *named*, not papered
over.
"""

import json
import os
import sqlite3
import zlib

import pytest

from repro.bundles import (
    Bundle,
    BundleError,
    BundleRecorder,
    BundleWriter,
    IncompleteBundleError,
    ReplayWeb,
    diff_bundles,
    is_bundle_dir,
    render_fidelity_report,
)
from repro.bundles.codec import (
    canonical_json,
    decode_hops,
    decode_request,
    encode_hops,
    encode_request,
)
from repro.cli import main
from repro.core.scan import ScanPipeline
from repro.corpus import ScriptCorpus, script_hash
from repro.web import build_world

SITES = 6
SEED = 5


def _payload(dataset) -> dict:
    """The verdict tables a scan feeds into the paper's figures."""
    return {
        "sites": dataset.visited_sites,
        "table5": dataset.table5(),
        "table11": dataset.table11(),
        "fig4": dataset.fig4(),
        "table7": dataset.table7(10),
        "table12": dataset.table12(),
    }


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One live scan archived into a bundle, plus its table payload."""
    root = tmp_path_factory.mktemp("bundles")
    path = str(root / "rec")
    web = build_world(site_count=SITES, seed=SEED)
    recorder = BundleRecorder(
        path, kind="scan", params={"sites": SITES, "seed": SEED},
        sites=[config.domain for config in web.configs])
    pipeline = ScanPipeline(web, recorder=recorder)
    dataset = pipeline.run(visit_subpages=True)
    recorder.close(complete=True)
    return path, _payload(dataset)


def _replay(bundle_path: str, workers: int = 1, record: str = None):
    bundle = Bundle(bundle_path)
    recorder = None
    if record is not None:
        recorder = BundleRecorder(
            record, kind="scan", params={"replay_of": bundle_path},
            sites=list(bundle.sites()))
    web = ReplayWeb(bundle)
    pipeline = ScanPipeline(web, recorder=recorder)
    dataset = pipeline.run(visit_subpages=True, workers=workers)
    if recorder is not None:
        recorder.close(complete=True)
    bundle.close()
    return dataset


class TestReplayDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_replay_reproduces_tables_at_any_worker_count(
            self, recorded, workers):
        path, live_payload = recorded
        dataset = _replay(path, workers=workers)
        assert canonical_json(_payload(dataset)) \
            == canonical_json(live_payload)

    def test_replay_never_consults_live_servers(self, recorded,
                                                monkeypatch):
        from repro.net import network as network_mod

        def explode(self, request, client, network):
            raise AssertionError(
                f"live server consulted during replay: {request.url}")

        monkeypatch.setattr(network_mod.Server, "handle", explode)
        monkeypatch.setattr(network_mod.FunctionServer, "handle",
                            explode)
        path, live_payload = recorded
        dataset = _replay(path)
        assert _payload(dataset) == live_payload

    def test_replay_miss_returns_404_and_counts(self, recorded):
        from repro.bundles import ReplayNetwork
        from repro.net.http import HttpRequest
        from repro.net.network import ClientIdentity
        from repro.net.url import URL

        path, _ = recorded
        bundle = Bundle(path)
        network = ReplayNetwork(bundle)
        site = bundle.sites()[0]
        network.begin_visit(site, f"https://www.{site}/")
        response, hops = network.fetch(
            HttpRequest(url=URL.parse("https://nowhere.test/x.js")),
            ClientIdentity(client_id="c"))
        assert response.status == 404
        assert network.replay_misses == 1
        assert len(hops) == 1
        bundle.close()


class TestOfflineReanalysis:
    """``--offline``: detector re-run over archived evidence, no browser."""

    def test_reanalysis_reproduces_tables(self, recorded):
        from repro.bundles import reanalyze_bundle

        path, live_payload = recorded
        bundle = Bundle(path)
        dataset = reanalyze_bundle(bundle)
        assert canonical_json(_payload(dataset)) \
            == canonical_json(live_payload)
        bundle.close()

    def test_reanalysis_rescans_sources_on_cache_miss(self, recorded,
                                                      tmp_path):
        """With the archived analysis cache wiped (what a new pattern
        set amounts to), verdicts still rebuild from stored sources."""
        import shutil

        from repro.bundles import reanalyze_bundle

        path, live_payload = recorded
        copy = str(tmp_path / "cold")
        shutil.copytree(path, copy)
        conn = sqlite3.connect(os.path.join(copy, "store.corpus"))
        conn.execute("DELETE FROM analysis_cache")
        conn.commit()
        conn.close()
        bundle = Bundle(copy)
        dataset = reanalyze_bundle(bundle)
        assert canonical_json(_payload(dataset)) \
            == canonical_json(live_payload)
        bundle.close()

    def test_reanalysis_refuses_bundle_without_evidence(self, tmp_path):
        from repro.bundles import reanalyze_bundle

        path = str(tmp_path / "crawlish")
        writer = BundleWriter(path, kind="crawl", sites=["x.test"])
        writer.write_site("x.test", [{
            "url": "https://x.test/", "exchanges": [], "blobs": {},
            "trace": [], "success": True}])
        writer.finalize(complete=True)
        bundle = Bundle(path)
        with pytest.raises(BundleError, match="offline"):
            reanalyze_bundle(bundle)
        bundle.close()

    def test_cli_offline_matches_live_scan(self, recorded, capsys):
        path, live_payload = recorded
        assert main(["scan", "--replay", path, "--offline"]) == 0
        output = json.loads(capsys.readouterr().out)
        assert output["table5"] == live_payload["table5"]
        assert output["sites"] == live_payload["sites"]

    def test_cli_offline_needs_replay(self, capsys):
        assert main(["scan", "--offline"]) == 2
        assert "--replay" in capsys.readouterr().err

    def test_cli_offline_rejects_record(self, recorded, tmp_path,
                                        capsys):
        path, _ = recorded
        assert main(["scan", "--replay", path, "--offline",
                     "--record", str(tmp_path / "no")]) == 2
        assert "--record" in capsys.readouterr().err


class TestFidelity:
    def test_faithful_replay_scores_zero_diffs(self, recorded,
                                               tmp_path):
        path, _ = recorded
        rerec = str(tmp_path / "rerec")
        _replay(path, record=rerec)
        original, replay = Bundle(path), Bundle(rerec)
        report = diff_bundles(original, replay)
        assert report["zero_diffs"] is True
        assert report["mean_fidelity"] == 1.0
        assert report["missing_sites"] == []
        text = render_fidelity_report(report)
        assert "ZERO DIFFS" in text
        original.close()
        replay.close()

    def test_mutated_script_named_by_hash(self, recorded, tmp_path):
        path, _ = recorded
        rerec = str(tmp_path / "rerec")
        _replay(path, record=rerec)
        tampered_url, old_hash, new_hash = _mutate_one_script(rerec)
        original, replay = Bundle(path), Bundle(rerec)
        report = diff_bundles(original, replay)
        assert report["zero_diffs"] is False
        mutated = [item for site in report["sites"]
                   for item in site["resources"]["mutated"]]
        assert any(item["url"] == tampered_url
                   and item["original_hash"] == old_hash
                   and item["replay_hash"] == new_hash
                   for item in mutated)
        original.close()
        replay.close()

    def test_missing_resource_flagged(self, recorded, tmp_path):
        path, _ = recorded
        rerec = str(tmp_path / "rerec")
        _replay(path, record=rerec)
        dropped_url = _drop_one_exchange(rerec)
        original, replay = Bundle(path), Bundle(rerec)
        report = diff_bundles(original, replay)
        assert report["zero_diffs"] is False
        missing = [item for site in report["sites"]
                   for item in site["resources"]["missing"]]
        assert any(item["url"] == dropped_url for item in missing)
        original.close()
        replay.close()

    def test_verdict_flip_lists_changed_fields(self, recorded,
                                               tmp_path):
        path, _ = recorded
        rerec = str(tmp_path / "rerec")
        _replay(path, record=rerec)
        site = _flip_one_verdict(rerec)
        original, replay = Bundle(path), Bundle(rerec)
        report = diff_bundles(original, replay)
        flipped = next(diff for diff in report["sites"]
                       if diff["site"] == site)
        assert flipped["verdict"]["equal"] is False
        assert "combined.static_identified" \
            in flipped["verdict"]["changed"]
        original.close()
        replay.close()

    def test_cli_exit_codes(self, recorded, tmp_path, capsys):
        path, _ = recorded
        rerec = str(tmp_path / "rerec")
        _replay(path, record=rerec)
        assert main(["fidelity", path, rerec]) == 0
        _mutate_one_script(rerec)
        out = str(tmp_path / "fidelity.json")
        assert main(["fidelity", path, rerec, "--output", out]) == 1
        report = json.loads(open(out).read())
        assert report["zero_diffs"] is False
        capsys.readouterr()


class TestIncompleteBundle:
    def test_replay_refuses_torn_recording(self, tmp_path):
        path = str(tmp_path / "torn")
        writer = BundleWriter(path, kind="scan",
                              sites=["alpha.test", "beta.test"])
        writer.write_site("alpha.test", [], verdict=None, evidence=None)
        writer.finalize(complete=False)
        with pytest.raises(IncompleteBundleError,
                           match="beta.test"):
            Bundle(path)
        # Forensics can still open it explicitly.
        bundle = Bundle(path, allow_incomplete=True)
        assert bundle.recorded_sites() == ["alpha.test"]
        bundle.close()

    def test_writer_refuses_existing_bundle(self, tmp_path):
        path = str(tmp_path / "dup")
        BundleWriter(path, kind="scan", sites=[]).finalize()
        with pytest.raises(BundleError):
            BundleWriter(path, kind="scan", sites=[])

    def test_is_bundle_dir(self, tmp_path):
        path = str(tmp_path / "b")
        BundleWriter(path, kind="scan", sites=[]).finalize()
        assert is_bundle_dir(path)
        assert not is_bundle_dir(str(tmp_path))


class TestCorpusVerify:
    def test_clean_store_verifies(self, tmp_path):
        path = str(tmp_path / "c.corpus")
        corpus = ScriptCorpus(path)
        corpus.put("var a = 1;")
        corpus.put("var b = 2;")
        report = corpus.verify()
        corpus.close()
        assert report["ok"] is True
        assert report["bodies_checked"] == 2
        assert report["corrupt"] == []

    def test_corrupt_blob_detected(self, tmp_path):
        path = str(tmp_path / "c.corpus")
        corpus = ScriptCorpus(path)
        digest = corpus.put("var a = 1;")
        corpus.close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE scripts SET body = ? WHERE hash = ?",
            (zlib.compress(b"var tampered = true;"), digest))
        conn.commit()
        conn.close()
        corpus = ScriptCorpus(path)
        report = corpus.verify()
        corpus.close()
        assert report["ok"] is False
        assert [entry["hash"] for entry in report["corrupt"]] == [digest]

    def test_cli_verify_exit_codes(self, recorded, tmp_path, capsys):
        path, _ = recorded
        assert main(["corpus", "verify", path]) == 0
        store = str(tmp_path / "bad.corpus")
        corpus = ScriptCorpus(store)
        digest = corpus.put("var x = 9;")
        corpus.close()
        conn = sqlite3.connect(store)
        conn.execute("UPDATE scripts SET body = x'00' WHERE hash = ?",
                     (digest,))
        conn.commit()
        conn.close()
        assert main(["corpus", "verify", store]) == 1
        assert main(["corpus", "verify",
                     str(tmp_path / "nothing")]) == 2
        capsys.readouterr()


class TestZlevel:
    def test_env_overrides_compression_level(self, tmp_path,
                                             monkeypatch):
        source = "var filler = '" + "a" * 4096 + "';"
        monkeypatch.setenv("REPRO_CORPUS_ZLEVEL", "0")
        fat = ScriptCorpus(str(tmp_path / "z0.corpus"))
        digest = fat.put(source)
        assert fat.source(digest) == source
        assert fat.zlevel == 0
        fat_bytes = fat.total_stored_bytes()
        fat.close()
        monkeypatch.setenv("REPRO_CORPUS_ZLEVEL", "9")
        thin = ScriptCorpus(str(tmp_path / "z9.corpus"))
        thin.put(source)
        assert thin.source(digest) == source
        thin_bytes = thin.total_stored_bytes()
        thin.close()
        assert thin_bytes < fat_bytes

    def test_invalid_env_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_ZLEVEL", "11")
        with pytest.raises(ValueError, match="REPRO_CORPUS_ZLEVEL"):
            ScriptCorpus(str(tmp_path / "bad.corpus"))
        monkeypatch.setenv("REPRO_CORPUS_ZLEVEL", "fast")
        with pytest.raises(ValueError, match="REPRO_CORPUS_ZLEVEL"):
            ScriptCorpus(str(tmp_path / "bad2.corpus"))


class TestCodec:
    def test_request_round_trip(self):
        from repro.net.http import HttpRequest
        from repro.net.url import URL

        request = HttpRequest(
            url=URL.parse("https://a.test/p?q=1"),
            resource_type="script", method="POST",
            headers={"X-Test": "1"}, body="payload",
            top_frame_url=URL.parse("https://a.test/"),
            cookie_header="sid=42")
        decoded = decode_request(encode_request(request))
        assert str(decoded.url) == str(request.url)
        assert decoded.method == "POST"
        assert decoded.headers == {"X-Test": "1"}
        assert decoded.cookie_header == "sid=42"

    def test_hops_round_trip_through_store(self):
        from repro.net.http import HttpRequest, HttpResponse
        from repro.net.network import ExchangeRecord
        from repro.net.url import URL

        blobs = {}

        def put(text):
            digest = script_hash(text)
            blobs[digest] = text
            return digest

        request = HttpRequest(url=URL.parse("https://a.test/"))
        redirect = HttpResponse.redirect("https://b.test/")
        final = HttpResponse(body="<html>hello</html>")
        hops = [ExchangeRecord(request, redirect),
                ExchangeRecord(
                    HttpRequest(url=URL.parse("https://b.test/")),
                    final)]
        data = encode_hops(hops, put)
        response, decoded = decode_hops(data, blobs.__getitem__,
                                        request)
        assert response.body == "<html>hello</html>"
        assert len(decoded) == 2
        assert decoded[0].request is request
        assert decoded[0].response.is_redirect


class TestCrawlRecordReplay:
    def test_lab_crawl_round_trip(self, tmp_path):
        from repro.obs.runner import run_telemetry_crawl

        rec = str(tmp_path / "crawl-rec")
        rerec = str(tmp_path / "crawl-rerec")
        live = run_telemetry_crawl(
            site_count=5, seed=3, crash_probability=0.0, browsers=2,
            workers=2, record_dir=rec)
        live_rows = {
            table: live.storage.query(
                f"SELECT COUNT(*) AS n FROM {table}")[0]["n"]
            for table in ("site_visits", "http_requests")}
        live.close()
        replay = run_telemetry_crawl(
            site_count=5, seed=3, crash_probability=0.0, browsers=2,
            workers=2, replay_dir=rec, record_dir=rerec)
        replay_rows = {
            table: replay.storage.query(
                f"SELECT COUNT(*) AS n FROM {table}")[0]["n"]
            for table in ("site_visits", "http_requests")}
        assert replay.manager.network.replay_misses == 0
        replay.close()
        assert replay_rows == live_rows
        original, rerecorded = Bundle(rec), Bundle(rerec)
        report = diff_bundles(original, rerecorded)
        assert report["zero_diffs"] is True
        original.close()
        rerecorded.close()

    def test_crash_interrupted_crawl_refuses_replay(self, tmp_path):
        from repro.obs.runner import run_telemetry_crawl

        rec = str(tmp_path / "crash-rec")
        # A high crash probability with a failure limit of attempts
        # leaves some sites unarchived; the bundle must stay marked
        # as a recording.
        result = run_telemetry_crawl(
            site_count=6, seed=3, crash_probability=0.97, browsers=2,
            workers=2, record_dir=rec, max_attempts=1)
        result.close()
        bundle = Bundle(rec, allow_incomplete=True)
        incomplete = bundle.status == "recording" \
            or len(bundle.recorded_sites()) < 6
        bundle.close()
        if not incomplete:  # pragma: no cover - seed-dependent guard
            pytest.skip("every site survived the crash storm")
        with pytest.raises(BundleError):
            Bundle(rec)


# ---------------------------------------------------------------------------
# Tamper helpers (operate directly on a bundle's sqlite + store)
# ---------------------------------------------------------------------------
def _load_visit_row(bundle_dir):
    conn = sqlite3.connect(os.path.join(bundle_dir, "bundle.sqlite"))
    conn.row_factory = sqlite3.Row
    store = ScriptCorpus(os.path.join(bundle_dir, "store.corpus"))
    rows = conn.execute(
        "SELECT site, visit_index, exchanges_ref FROM visits "
        "ORDER BY site, visit_index").fetchall()
    return conn, store, rows


def _mutate_one_script(bundle_dir):
    """Swap one archived script body for a tampered one."""
    conn, store, rows = _load_visit_row(bundle_dir)
    for row in rows:
        chains = json.loads(store.source(row["exchanges_ref"]))
        for chain in chains:
            response = chain["hops"][-1]["response"]
            script = response.get("script")
            if not script:
                continue
            old_hash = script["source_ref"]
            tampered = store.source(old_hash) + "\n;var tampered=1;"
            new_hash = script_hash(tampered)
            script["source_ref"] = new_hash
            payload = canonical_json(chains)
            new_ref = script_hash(payload)
            store.put_many({new_hash: tampered, new_ref: payload})
            conn.execute(
                "UPDATE visits SET exchanges_ref = ? "
                "WHERE site = ? AND visit_index = ?",
                (new_ref, row["site"], row["visit_index"]))
            conn.commit()
            url = chain["hops"][0]["request"]["url"]
            conn.close()
            store.close()
            return url, old_hash, new_hash
    raise AssertionError("no script exchange found to tamper with")


def _drop_one_exchange(bundle_dir):
    """Delete one archived fetch from a visit."""
    conn, store, rows = _load_visit_row(bundle_dir)
    for row in rows:
        chains = json.loads(store.source(row["exchanges_ref"]))
        if len(chains) < 2:
            continue
        dropped = chains.pop()
        payload = canonical_json(chains)
        new_ref = script_hash(payload)
        store.put_many({new_ref: payload})
        conn.execute(
            "UPDATE visits SET exchanges_ref = ? "
            "WHERE site = ? AND visit_index = ?",
            (new_ref, row["site"], row["visit_index"]))
        conn.commit()
        conn.close()
        store.close()
        return dropped["hops"][0]["request"]["url"]
    raise AssertionError("no multi-exchange visit found")


def _flip_one_verdict(bundle_dir):
    """Invert one site's static verdict in the bundle."""
    conn = sqlite3.connect(os.path.join(bundle_dir, "bundle.sqlite"))
    conn.row_factory = sqlite3.Row
    row = conn.execute(
        "SELECT site, verdict_json FROM visits "
        "JOIN sites USING (site) LIMIT 1").fetchone()
    verdict = json.loads(row["verdict_json"])
    verdict["combined"]["static_identified"] = \
        not verdict["combined"]["static_identified"]
    conn.execute("UPDATE sites SET verdict_json = ? WHERE site = ?",
                 (json.dumps(verdict), row["site"]))
    conn.commit()
    conn.close()
    return row["site"]

"""DOM events.

The event system is the channel OpenWPM's JavaScript instrument uses to
ship records from the page to the extension (``document.dispatchEvent``
with a randomly named ``CustomEvent``). Because the dispatch goes through
a page-visible property, a page script can replace it — the core
vulnerability behind the paper's Listing 2 attacks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro.jsobject.functions import JSFunction
from repro.jsobject.objects import JSObject
from repro.jsobject.values import UNDEFINED


class DOMEvent(JSObject):
    """An event instance (``Event`` / ``CustomEvent``)."""

    def __init__(self, event_type: str, detail: Any = UNDEFINED,
                 proto: Optional[JSObject] = None) -> None:
        super().__init__(proto=proto, class_name="CustomEvent")
        self.event_type = event_type
        self.detail = detail
        self.put("type", event_type, writable=False)
        self.put("detail", detail, writable=False)


#: A listener is either a JS function (page script) or a host callable
#: (extension content script) receiving ``(event, interp)``.
Listener = Union[JSFunction, Callable[[DOMEvent, Any], None]]


class EventTargetMixin:
    """Listener registry + host-level dispatch shared by DOM nodes."""

    def _init_event_target(self) -> None:
        self._listeners: Dict[str, List[Listener]] = {}

    def add_listener(self, event_type: str, listener: Listener) -> None:
        self._listeners.setdefault(event_type, []).append(listener)

    def remove_listener(self, event_type: str, listener: Listener) -> None:
        listeners = self._listeners.get(event_type, [])
        if listener in listeners:
            listeners.remove(listener)

    def host_dispatch(self, event: DOMEvent, interp: Any = None) -> bool:
        """Deliver *event* to registered listeners.

        This is the browser-internal dispatch — the behaviour of the
        *native* ``dispatchEvent``. Page scripts that shadow the
        ``dispatchEvent`` property divert callers who look the property
        up dynamically (as OpenWPM's injected wrappers do), but cannot
        reach this host path.
        """
        for listener in list(self._listeners.get(event.event_type, [])):
            if isinstance(listener, JSFunction):
                listener.call(interp, self, [event])
            else:
                listener(event, interp)
        return True

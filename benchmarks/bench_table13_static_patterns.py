"""Table 13: static patterns and their false-positive behaviour."""

from conftest import report

#: Paper: which patterns produced false positives.
PAPER_HAS_FP = {
    "loose-webdriver": True,
    "word-webdriver": True,
    "navigator-dot-webdriver": False,
    "navigator-bracket-webdriver": False,
    "owpm-instrumentFingerprintingApis": False,
    "owpm-getInstrumentJS": False,
    "owpm-jsInstruments": False,
}


def test_benchmark_table13(benchmark):
    from repro.core.scan.static_analysis import (
        evaluate_pattern_false_positives,
    )
    from repro.web import detector_scripts as corpus

    # A labelled corpus: every detector form plus the non-detectors.
    scripts = [
        (corpus.selenium_detector("p.test", form), True)
        for form in ("plain", "minified", "hex", "lazy")
    ] + [
        (corpus.selenium_detector("p.test", "obfuscated"), True),
        (corpus.openwpm_detector("cheqzone.com", ("jsInstruments",)), True),
        (corpus.first_party_detector("Akamai"), True),
        (corpus.DECOY_UA_SCRIPT, False),
        (corpus.BENIGN_LIBRARY, False),
        (corpus.FIRST_PARTY_ANALYTICS, False),
        (corpus.tracker_script("ads.test"), False),
        (corpus.iterator_fingerprinter("fp.test"), False),
    ]

    stats = benchmark(evaluate_pattern_false_positives, scripts)

    lines = ["| pattern | hits | TP | FP | paper: has FPs |",
             "|---|---|---|---|---|"]
    for name, expected_fp in PAPER_HAS_FP.items():
        row = stats[name]
        lines.append(f"| {name} | {row['hits']} | "
                     f"{row['true_positives']} | "
                     f"{row['false_positives']} | {expected_fp} |")
    report("table13_static_patterns",
           "Table 13 - static pattern evaluation", lines)

    for name, expected_fp in PAPER_HAS_FP.items():
        has_fp = stats[name]["false_positives"] > 0
        assert has_fp == expected_fp, name
    # The strict navigator patterns still catch the real detectors.
    assert stats["navigator-dot-webdriver"]["true_positives"] >= 4
    assert stats["navigator-bracket-webdriver"]["true_positives"] >= 1

"""The crawl flight recorder: an append-only JSONL event journal.

The paper's antidote to silent data loss is double-entry accounting;
the journal is the second book. While telemetry counters summarise a
crawl, the journal records *what happened, in order*: visit lifecycle
transitions, span open/close with virtual-clock timestamps, metric
deltas, fault injections, watchdog aborts, and scheduler lease events.
``repro stats --journal`` reconciles the journal against the
``telemetry``/``failed_visits``/``quarantined_sites`` tables and treats
divergence as a recording-integrity failure.

Design constraints (set by the multi-process roadmap item the journal
is built to precede):

* **One file per worker.** Each worker thread writes its own
  ``epoch-NNNN.<worker>.jsonl`` — no cross-worker lock on the hot path,
  and the exact on-disk shape a sharded multi-process crawl needs.
* **Crash-safe, append-only.** Events are written line-by-line and
  flushed at every state-changing event (visit/lease/fault/watchdog);
  high-volume span/metric events ride along in the buffer. A process
  killed mid-write leaves at most one torn final line per file, which
  :func:`read_journal_file` skips rather than fails on.
* **Deterministic order.** Events carry ``(epoch, t, worker, seq)``
  where ``t`` is a :class:`~repro.obs.clock.VirtualClock` *peek* (the
  recorder never advances the clock — recording must not perturb the
  crawl it records). :func:`merge_journal` reconstructs one total
  order across workers from those keys; a single-worker crawl merges
  byte-identically run over run.
* **Epochs.** A resumed crawl reopens the same journal directory; a
  ``MANIFEST`` line per run assigns it the next epoch so merge order
  is well-defined even though the virtual clock restarts at zero.

Event schema (every event)::

    {"epoch": 0, "seq": 12, "t": 3.017, "worker": "main",
     "type": "visit_complete", ...payload}

Payload fields by type are documented in DESIGN.md; the vocabulary is
``visit_*`` (lifecycle), ``span_open``/``span_close``, ``metric``
(counter deltas and gauge values, coalesced per ``(name, labels)``
over each flush window), ``fault``
(injections), ``watchdog_abort``, ``site_quarantined`` /
``quarantine_retracted`` / ``given_up_retracted``, ``lease_*`` /
``worker_death`` (scheduler), and ``profile_script`` /
``profile_function`` (the JS-engine profiler's end-of-run aggregates).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional

#: Journal format version, stamped into every MANIFEST line.
JOURNAL_FORMAT = 1

#: Event types that are buffered rather than flushed per event (high
#: volume, no crawl-state transition; the flush at the next lifecycle
#: event carries them out).
_BUFFERED_TYPES = frozenset(("span_open", "span_close", "metric"))

#: One shared C-accelerated encoder instance: ``json.dumps`` rebuilds
#: its encoder arguments on every call, and the journal serialises an
#: event for every span and metric mutation of the crawl. Keys keep
#: insertion order (sorting costs ~17% of encode time, and the order
#: is already deterministic: events are built by fixed code paths).
_serialize_event = json.JSONEncoder(
    separators=(",", ":"), default=str).encode


def journal_path_for(database_path: str) -> Optional[str]:
    """The default journal directory for a crawl database, or ``None``
    for in-memory databases (nowhere durable to put it)."""
    if database_path == ":memory:":
        return None
    return database_path + ".journal"


class JournalWriter:
    """One worker's append-only event file."""

    def __init__(self, path: str, worker: str, epoch: int,
                 clock: Any) -> None:
        self.path = path
        self.worker = worker
        self.epoch = epoch
        self.clock = clock
        self._seq = 0
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")
        #: Coalesced metric mutations awaiting the next drain:
        #: ``(name, kind, labels_key) -> summed delta / last value``.
        self._metric_acc: Dict[Any, float] = {}

    def emit(self, event_type: str, **fields: Any) -> None:
        self._emit(event_type, fields)

    def add_metric(self, name: str, kind: str, labels_key: Any,
                   value: float) -> None:
        """Record one metric mutation, coalesced until the next drain.

        An instrumented visit mutates the same few counters hundreds of
        times; reconciliation only ever *sums* the journalled deltas,
        so accumulating per ``(name, labels)`` and journalling one
        aggregate event per flush window records the same books at a
        fraction of the serialisation volume. Counters sum; gauges keep
        their last value. Undrained mutations lost to a crash mirror
        the buffered-write loss window exactly.
        """
        key = (name, kind, labels_key)
        with self._lock:
            if kind == "counter":
                self._metric_acc[key] = \
                    self._metric_acc.get(key, 0.0) + value
            else:
                self._metric_acc[key] = value

    def _drain_metrics_locked(self) -> None:
        if not self._metric_acc:
            return
        for (name, kind, labels_key), value in self._metric_acc.items():
            record = {"type": "metric", "name": name, "kind": kind,
                      "labels": dict(labels_key),
                      "worker": self.worker, "epoch": self.epoch,
                      "t": self.clock.peek(), "seq": self._seq}
            record["delta" if kind == "counter" else "value"] = value
            self._seq += 1
            self._file.write(_serialize_event(record) + "\n")
        self._metric_acc.clear()

    def _emit(self, event_type: str, record: Dict[str, Any]) -> None:
        # *record* is owned by this call (emit hands over its fresh
        # kwargs dict) — annotating it in place skips a copy on the
        # crawl's hottest recording path.
        record["type"] = event_type
        record["worker"] = self.worker
        record["epoch"] = self.epoch
        # peek(), not now(): recording must never advance virtual time.
        record["t"] = self.clock.peek()
        buffered = event_type in _BUFFERED_TYPES
        with self._lock:
            if not buffered:
                # A state-changing event closes the flush window: the
                # metric aggregates it delimits land just before it.
                self._drain_metrics_locked()
            record["seq"] = self._seq
            self._seq += 1
            self._file.write(_serialize_event(record) + "\n")
            if not buffered:
                self._file.flush()

    def flush(self) -> None:
        with self._lock:
            self._drain_metrics_locked()
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._drain_metrics_locked()
                self._file.flush()
                self._file.close()


class Journal:
    """The crawl-wide flight recorder: one writer per worker.

    Threads bind a worker name with :meth:`bind_worker`; events emitted
    from unbound threads land in the shared ``main`` writer. The
    binding is thread-local, so concurrent workers never contend on a
    file, and the coordinator's events (enqueue, profiler aggregates,
    run metadata) stay separated from per-visit streams.
    """

    enabled = True

    def __init__(self, directory: str, clock: Any) -> None:
        self.directory = directory
        self.clock = clock
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._writers: Dict[str, JournalWriter] = {}
        self.epoch = self._claim_epoch()
        self._main = self.writer_for("main")

    def _claim_epoch(self) -> int:
        """Atomically claim the next free epoch number.

        Concurrent worker *processes* open the same journal directory
        (each claims its own epoch so per-process sequence numbers and
        restarted virtual clocks never interleave within one file).
        Counting MANIFEST lines and appending is racy across processes,
        so the claim itself is an ``O_CREAT | O_EXCL`` dotfile —
        ``.epoch-NNNN.claim`` — which exactly one process can win; the
        loser retries the next number. Claim files start with a dot so
        :func:`journal_files` never mistakes them for event files, and
        the MANIFEST line is appended only *after* the claim is won.
        """
        manifest = os.path.join(self.directory, "MANIFEST")
        epoch = 0
        if os.path.exists(manifest):
            epoch = len(read_journal_file(manifest))
        while True:
            claim = os.path.join(self.directory,
                                 f".epoch-{epoch:04d}.claim")
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                epoch += 1
                continue
            os.close(fd)
            break
        with open(manifest, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"epoch": epoch, "format": JOURNAL_FORMAT,
                 "t": self.clock.peek()},
                sort_keys=True, separators=(",", ":")) + "\n")
        return epoch

    # ------------------------------------------------------------------
    def writer_for(self, worker: str) -> JournalWriter:
        with self._lock:
            writer = self._writers.get(worker)
            if writer is None:
                path = os.path.join(
                    self.directory,
                    f"epoch-{self.epoch:04d}.{worker}.jsonl")
                writer = JournalWriter(path, worker, self.epoch,
                                       self.clock)
                self._writers[worker] = writer
            return writer

    def bind_worker(self, worker: str) -> JournalWriter:
        """Route this thread's events to *worker*'s file."""
        writer = self.writer_for(worker)
        self._local.writer = writer
        return writer

    def unbind(self) -> None:
        """Detach this thread (events fall back to the main writer)."""
        self._local.writer = None

    def _writer(self) -> JournalWriter:
        return getattr(self._local, "writer", None) or self._main

    # ------------------------------------------------------------------
    def emit(self, event_type: str, **fields: Any) -> None:
        self._writer()._emit(event_type, fields)

    def add_metric(self, name: str, kind: str, labels_key: Any,
                   value: float) -> None:
        self._writer().add_metric(name, kind, labels_key, value)

    def flush(self) -> None:
        with self._lock:
            writers = list(self._writers.values())
        for writer in writers:
            writer.flush()

    def close(self) -> None:
        with self._lock:
            writers = list(self._writers.values())
            self._writers.clear()
        for writer in writers:
            writer.close()


class NullJournal:
    """Disabled-mode journal: every call is a no-op."""

    enabled = False
    directory = None
    epoch = 0

    def writer_for(self, worker: str) -> "NullJournal":
        return self

    def bind_worker(self, worker: str) -> "NullJournal":
        return self

    def unbind(self) -> None:
        pass

    def emit(self, event_type: str, **fields: Any) -> None:
        pass

    def add_metric(self, name: str, kind: str, labels_key: Any,
                   value: float) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared no-op instance used as the default everywhere.
NULL_JOURNAL = NullJournal()


# ---------------------------------------------------------------------------
# Reading / merging
# ---------------------------------------------------------------------------
def read_journal_file(path: str) -> List[Dict[str, Any]]:
    """Parse one journal file, tolerating a torn final line.

    A process killed mid-``write`` leaves a partial last line; that is
    expected crash residue, silently skipped. A malformed line *before*
    the end is real corruption and raises ``ValueError`` — a journal
    that lies about the middle of a crawl must not pass for complete.
    """
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    # A cleanly-written file ends with "\n" -> last split element "".
    while lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        try:
            event = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                break  # torn tail from a crash mid-write
            raise ValueError(
                f"corrupt journal line {index + 1} in {path}: "
                f"{line[:80]!r}")
        if isinstance(event, dict):
            events.append(event)
    return events


def journal_files(directory: str) -> List[str]:
    """Every per-worker event file in *directory*, sorted by name."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        os.path.join(directory, name) for name in names
        if name.startswith("epoch-") and name.endswith(".jsonl"))


def _order_key(event: Dict[str, Any]):
    return (event.get("epoch", 0), event.get("t", 0.0),
            str(event.get("worker", "")), event.get("seq", 0))


def merge_journal(directory: str,
                  files: Optional[Iterable[str]] = None
                  ) -> List[Dict[str, Any]]:
    """Reconstruct the total event order across every worker file.

    Events sort by ``(epoch, t, worker, seq)``: epoch separates runs
    sharing a directory, the virtual timestamp orders across workers,
    and the per-writer sequence number breaks same-instant ties within
    a worker. The key is a pure function of file contents, so merging
    is deterministic no matter when or where it runs.
    """
    events: List[Dict[str, Any]] = []
    for path in (list(files) if files is not None
                 else journal_files(directory)):
        events.extend(read_journal_file(path))
    events.sort(key=_order_key)
    return events


def count_events(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Event-type histogram of a merged journal."""
    counts: Dict[str, int] = {}
    for event in events:
        name = str(event.get("type", "?"))
        counts[name] = counts.get(name, 0) + 1
    return counts


def sum_metric_deltas(events: Iterable[Dict[str, Any]]
                      ) -> Dict[Any, float]:
    """Total journalled delta per counter ``(name, labels)``.

    Only ``metric`` events for counters carry an additive ``delta``;
    gauges record absolute values and histograms record observations,
    so neither sums meaningfully here.
    """
    totals: Dict[Any, float] = {}
    for event in events:
        if event.get("type") != "metric" or event.get("kind") != "counter":
            continue
        labels = event.get("labels") or {}
        key = (event.get("name"),
               tuple(sorted((str(k), str(v))
                            for k, v in labels.items())))
        totals[key] = totals.get(key, 0.0) + float(
            event.get("delta") or 0.0)
    return totals

"""Tests for charts/tables and storage CSV export."""

import csv

import pytest

from repro.analysis import (
    bar_chart,
    grouped_bar_chart,
    render_table,
    series_to_csv,
)
from repro.openwpm.storage import StorageController


class TestBarChart:
    def test_peak_value_fills_width(self):
        lines = bar_chart({"a": 10, "b": 5}, width=20)
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        lines = bar_chart({"short": 1, "much-longer": 1})
        assert lines[0].index("#") == lines[1].index("#")

    def test_empty_series(self):
        assert bar_chart({}) == []

    def test_zero_values_no_crash(self):
        lines = bar_chart({"a": 0.0})
        assert "0" in lines[0]

    def test_custom_format(self):
        lines = bar_chart({"a": 0.5}, fmt="{:.1%}")
        assert "50.0%" in lines[0]


class TestGroupedBarChart:
    def test_structure(self):
        lines = grouped_bar_chart({
            "bucket-0": {"front": 10, "deep": 14},
            "bucket-1": {"front": 6, "deep": 9},
        })
        assert lines[0].startswith("bucket-0")
        assert sum(1 for line in lines if "front" in line) == 2

    def test_missing_series_rendered_as_zero(self):
        lines = grouped_bar_chart({"g": {"a": 5}, "h": {"b": 3}})
        assert any("a" in line and " 0" in line for line in lines)


class TestRenderTable:
    def test_alignment_and_separator(self):
        lines = render_table(["name", "n"], [["yandex.ru", 3848],
                                             ["moatads.com", 2165]])
        assert lines[1].startswith("----")
        assert lines[2].startswith("yandex.ru")
        assert lines[2].index("3848") == lines[3].index("2165")

    def test_header_wider_than_cells(self):
        lines = render_table(["very-long-header"], [["x"]])
        assert len(lines[0]) >= len("very-long-header")


class TestCSVExport:
    def test_series_to_csv(self, tmp_path):
        path = tmp_path / "series.csv"
        count = series_to_csv(str(path), ["a", "b"], [[1, 2], [3, 4]])
        assert count == 2
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_storage_export_table(self, tmp_path):
        storage = StorageController()
        storage.begin_visit(0, "https://x.test/")
        storage.record_javascript("d", "s", "navigator.webdriver",
                                  "get", "true")
        storage.end_visit()
        path = tmp_path / "javascript.csv"
        rows = storage.export_table_csv("javascript", str(path))
        assert rows == 1
        with open(path) as handle:
            parsed = list(csv.reader(handle))
        assert "symbol" in parsed[0]
        assert "navigator.webdriver" in parsed[1]

    def test_storage_export_all(self, tmp_path):
        storage = StorageController()
        storage.begin_visit(0, "https://x.test/")
        storage.end_visit()
        counts = storage.export_all_csv(str(tmp_path / "dump"))
        assert counts["site_visits"] == 1
        assert set(counts) == set(StorageController.TABLES)

    def test_unknown_table_rejected(self, tmp_path):
        storage = StorageController()
        with pytest.raises(ValueError):
            storage.export_table_csv("javascript; DROP TABLE x",
                                     str(tmp_path / "x.csv"))

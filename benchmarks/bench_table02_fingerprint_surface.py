"""Table 2: deviating properties of each OpenWPM setup vs stock Firefox."""

from conftest import report

#: (os, mode) -> paper's (webgl deviations, language additions,
#: tampering, custom functions)
PAPER = {
    ("macos", "regular"): (0, 0, 253, 1),
    ("macos", "headless"): (2037, 43, 253, 1),
    ("ubuntu", "regular"): (0, 0, 252, 1),
    ("ubuntu", "headless"): (2061, 43, 252, 1),
    ("ubuntu", "xvfb"): (18, 0, 252, 1),
    ("ubuntu", "docker"): (27, 0, 252, 1),
}


def _measure_setup(os_name, mode, baseline):
    from repro.browser.profiles import openwpm_profile
    from repro.core.fingerprint import (
        capture_template,
        diff_templates,
        run_probes,
    )
    from repro.core.fingerprint.surface import summarise_setup
    from repro.core.lab import make_window
    from repro.openwpm import BrowserParams, OpenWPMExtension

    extension = OpenWPMExtension(BrowserParams(os_name=os_name,
                                               display_mode=mode))
    _, window = make_window(openwpm_profile(os_name, mode),
                            extension=extension)
    surface = diff_templates(baseline, capture_template(window))
    probes = run_probes(window)
    return summarise_setup(f"{os_name}/{mode}", surface, probes.values)


def test_benchmark_table2(benchmark, bench_baseline_templates):
    summaries = {}

    def run_all():
        for (os_name, mode) in PAPER:
            summaries[(os_name, mode)] = _measure_setup(
                os_name, mode, bench_baseline_templates[os_name])
        return summaries

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["| setup | webdriver | screen dim | screen pos | "
             "webgl (paper) | langs (paper) | tamper (paper) | "
             "custom (paper) |", "|---|---|---|---|---|---|---|---|"]
    for (os_name, mode), expected in PAPER.items():
        s = summaries[(os_name, mode)]
        lines.append(
            f"| {os_name}/{mode} | {s.webdriver} | "
            f"{s.screen_dimensions > 0} | {s.screen_position > 0} | "
            f"{s.webgl_deviations} ({expected[0]}) | "
            f"{s.language_additions} ({expected[1]}) | "
            f"{s.tampering} ({expected[2]}) | "
            f"{s.custom_functions} ({expected[3]}) |")
    report("table02_fingerprint_surface",
           "Table 2 - fingerprint surface per setup", lines)

    for key, (webgl, langs, tamper, custom) in PAPER.items():
        s = summaries[key]
        assert s.webdriver
        assert s.webgl_deviations == webgl
        assert s.language_additions == langs
        assert s.tampering == tamper
        assert s.custom_functions == custom

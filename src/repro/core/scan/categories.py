"""Site-category tallies for detector sites (paper Sec. 4.3 / Fig. 5).

The paper looks up categories via Symantec's site review service; here
the synthetic Tranco list carries its categories directly. Sites may
have multiple categories and each is tallied (as in the paper).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Tuple

from repro.web.tranco import TrancoList


def tally_categories(domains: Iterable[str],
                     tranco: TrancoList) -> Counter:
    """Count every category of every listed domain."""
    lookup = tranco.by_domain()
    counts: Counter = Counter()
    for domain in domains:
        site = lookup.get(domain)
        if site is None:
            continue
        for category in site.categories:
            counts[category] += 1
    return counts


def category_shares(counts: Counter, top: int = 16
                    ) -> List[Tuple[str, float]]:
    """The Fig. 5 view: top categories with their share of tallies."""
    total = sum(counts.values()) or 1
    return [(name, count / total)
            for name, count in counts.most_common(top)]

"""Shared fixtures.

Expensive artifacts (worlds, scans, paired crawls, templates) are
session-scoped: they are deterministic, read-only for the tests that
consume them, and account for nearly all suite runtime.
"""

from __future__ import annotations

import random

import pytest

from repro.browser.profiles import openwpm_profile, stock_firefox_profile
from repro.core.lab import make_window
from repro.jsengine.builtins import Realm
from repro.jsengine.interpreter import Interpreter


@pytest.fixture()
def realm() -> Realm:
    return Realm(random.Random(42))


@pytest.fixture()
def interp(realm) -> Interpreter:
    return Interpreter(realm)


@pytest.fixture()
def run(interp):
    """Run a JS snippet and return its completion value."""

    def _run(source: str, url: str = "test.js"):
        return interp.run(source, url)

    return _run


# ---------------------------------------------------------------------------
# Browser-level fixtures
# ---------------------------------------------------------------------------

@pytest.fixture()
def stock_window():
    _, window = make_window(stock_firefox_profile("ubuntu"))
    return window


@pytest.fixture()
def openwpm_window():
    _, window = make_window(openwpm_profile("ubuntu", "regular"))
    return window


@pytest.fixture()
def instrumented_window():
    from repro.openwpm import BrowserParams, OpenWPMExtension

    extension = OpenWPMExtension(BrowserParams())
    browser, window = make_window(openwpm_profile("ubuntu", "regular"),
                                  extension=extension)
    window.extension_for_tests = extension
    return window


# ---------------------------------------------------------------------------
# World / scan / crawl fixtures (session-scoped; deterministic)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def small_world():
    from repro.web import build_world

    return build_world(site_count=150, seed=7)


@pytest.fixture(scope="session")
def scan_dataset(small_world):
    from repro.core.scan import ScanPipeline

    pipeline = ScanPipeline(small_world, client_id="test-scan")
    return pipeline.run(visit_subpages=True)


@pytest.fixture(scope="session")
def paired_result():
    from repro.core.comparison import PairedCrawl
    from repro.web import build_world

    world = build_world(site_count=400, seed=11)
    sites = sorted(world.ground_truth.detector_sites())
    crawl = PairedCrawl(world, sites=sites, repetitions=3)
    return crawl.run()

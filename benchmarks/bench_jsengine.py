"""JS engine: closure-compiled backend vs the reference tree-walker.

Interpreter throughput bounds the whole dynamic-analysis phase, so the
closure-compilation backend (``REPRO_JS_COMPILE=on``, the default) must
actually pay for its complexity. The workload is a detector-script
corpus in the shape the Tranco scan executes: loop-heavy string
hashing / environment probing (the expensive tail) plus obfuscated
bot-detector variants (the common case), every script executed many
times from the shared hash-keyed AST cache — re-visits, paired crawls,
and worker re-executions all hit the same cached program.

Pinned claims:

* the compiled backend is at least ``SPEEDUP_FLOOR``x faster than the
  tree-walker on the loop-heavy detector workload;
* both backends produce identical results and identical budget op
  counts on every workload script (asserted inline, every round);
* a compiled re-execution allocates fewer memory blocks than a
  tree-walk (no per-node dispatch garbage).

Allocation counting: transient per-node garbage is refcount-freed
immediately, so a before/after live-object delta sees nothing. Instead
``_allocated_blocks`` samples ``sys.getallocatedblocks()`` at bytecode
-instruction granularity (a trace hook with ``f_trace_opcodes``) and
sums the positive deltas — cumulative allocations, including blocks
freed a few opcodes later. The probe's own integer churn nets to zero
between samples, and allocations freed within a single opcode are
missed by both backends alike.
"""

import gc
import random
import sys
import time

from conftest import report

from repro.jsengine.builtins import Realm
from repro.jsengine.interpreter import (
    Interpreter,
    clear_ast_cache,
    set_compile_enabled,
)

SPEEDUP_FLOOR = 3.0
ROUNDS = 3
BUDGET = 50_000_000

#: Loop-heavy tail: string hashing over environment probe names, the
#: shape of fingerprinting/bot-detection payload loops.
LOOP_HEAVY = """
function hash(s) {
  var h = 0;
  for (var i = 0; i < s.length; i++) {
    h = (h * 31 + s.charCodeAt(i)) % 1000000007;
  }
  return h;
}
var probes = ['navigator.webdriver', 'window.callPhantom',
              'navigator.plugins.length', 'window.outerWidth',
              'document.documentElement.getAttribute'];
var total = 0;
for (var round = 0; round < 400; round++) {
  for (var p = 0; p < probes.length; p++) {
    total = (total + hash(probes[p] + round)) % 1000000007;
  }
}
total;
"""

#: Obfuscated-detector shape: decode a hex-escaped property name,
#: branchy probing, small helper closures.
OBFUSCATED = """
var _0x1 = ['\\x77\\x65\\x62\\x64\\x72\\x69\\x76\\x65\\x72',
            '\\x70\\x6c\\x75\\x67\\x69\\x6e\\x73'];
function dec(s) {
  var out = '';
  for (var i = 0; i < s.length; i++) { out += s[i]; }
  return out;
}
var verdict = 0;
for (var k = 0; k < 120; k++) {
  var env = {webdriver: (k % 7) === 0, plugins: {length: k % 3}};
  var key = dec(_0x1[k % 2]);
  var probe = env[key];
  if (probe === true) { verdict++; }
  else if (probe && probe.length === 0) { verdict += 2; }
  try { if (k % 11 === 0) { throw new Error('tripped'); } }
  catch (e) { verdict += e.message.length % 3; }
}
verdict;
"""


def _workload():
    """(name, source) pairs; a small corpus, each body run many times."""
    scripts = [("loop_heavy", LOOP_HEAVY), ("obfuscated", OBFUSCATED)]
    for index in range(6):
        scripts.append((
            f"variant{index}",
            OBFUSCATED.replace("120", str(90 + index * 7))
                      .replace("'tripped'", f"'t{index}'")))
    return scripts


def _run_script(source):
    realm = Realm(random.Random(42))
    interp = Interpreter(realm=realm, budget=BUDGET)
    value = interp.run(source, "bench.js")
    return value, interp.ops_used


def _sweep(scripts):
    out = []
    for _, source in scripts:
        out.append(_run_script(source))
    return out


#: Down-scaled obfuscated sample for the (slow) opcode-granularity
#: allocation probe; both backends execute exactly 4,391 budget ops.
ALLOC_PROBE = OBFUSCATED.replace("120", "30")


def _allocated_blocks(fn):
    """Memory blocks allocated by one call, opcode-granularity sample."""
    gc.collect()
    blocks = sys.getallocatedblocks
    prev = blocks()
    total = 0

    def tracer(frame, event, arg):
        nonlocal prev, total
        if event == "call":
            frame.f_trace_opcodes = True
        elif event == "opcode":
            now = blocks()
            delta = now - prev
            if delta > 0:
                total += delta
            prev = now
        return tracer

    sys.settrace(tracer)
    try:
        fn()
    finally:
        sys.settrace(None)
    return total


def measure_jsengine(rounds=ROUNDS):
    scripts = _workload()
    results = {}
    best = {}
    allocations = {}
    for mode, enabled in (("tree_walk", False), ("compiled", True)):
        previous = set_compile_enabled(enabled)
        try:
            clear_ast_cache()
            results[mode] = _sweep(scripts)       # warm parse+compile
            best[mode] = float("inf")
            for _ in range(rounds):
                gc.collect()
                start = time.perf_counter()
                observed = _sweep(scripts)
                best[mode] = min(best[mode], time.perf_counter() - start)
                # Identical values AND identical budget op counts,
                # every script, every round.
                assert observed == results[mode]
            _run_script(ALLOC_PROBE)          # warm the probe's cache slot
            allocations[mode] = _allocated_blocks(
                lambda: _run_script(ALLOC_PROBE))
        finally:
            set_compile_enabled(previous)
    assert results["compiled"] == results["tree_walk"], (
        "backend divergence on the benchmark corpus")
    return {
        "best": best,
        "speedup": best["tree_walk"] / best["compiled"],
        "scripts": len(scripts),
        "results": results["compiled"],
        "allocations": allocations,
        "alloc_ratio": (allocations["tree_walk"]
                        / max(1, allocations["compiled"])),
    }


def test_benchmark_jsengine(benchmark):
    result = benchmark.pedantic(lambda: measure_jsengine(rounds=ROUNDS),
                                rounds=1, iterations=1)
    best = result["best"]
    total_ops = sum(ops for _, ops in result["results"])
    lines = [
        f"({result['scripts']} detector scripts — loop-heavy string "
        f"hashing + obfuscated probe variants — {total_ops:,} budget ops",
        f" per sweep; warm hash-keyed AST cache; best of {ROUNDS}; "
        f"Python {sys.version.split()[0]}.)",
        "",
        "| metric | value |",
        "|---|---|",
        f"| sweep, tree-walker (`REPRO_JS_COMPILE=off`) "
        f"| {best['tree_walk']:.3f} s |",
        f"| sweep, closure-compiled (`REPRO_JS_COMPILE=on`) "
        f"| {best['compiled']:.3f} s |",
        f"| speedup | {result['speedup']:.2f}x |",
        f"| ops/s, tree-walker "
        f"| {total_ops / best['tree_walk']:,.0f} |",
        f"| ops/s, compiled "
        f"| {total_ops / best['compiled']:,.0f} |",
        f"| allocated blocks per run, tree-walker "
        f"| {result['allocations']['tree_walk']:,} |",
        f"| allocated blocks per run, compiled "
        f"| {result['allocations']['compiled']:,} |",
        f"| allocation reduction | {result['alloc_ratio']:.1f}x |",
        "",
        "Both backends returned identical values and identical budget",
        "op counts for every script in every round (asserted inline).",
        "Allocated blocks are cumulative `sys.getallocatedblocks()`",
        "growth sampled per bytecode instruction while executing the",
        "down-scaled obfuscated probe (identical op count either way).",
    ]
    report("jsengine", "JS engine - closure compilation vs tree-walk",
           lines)

    assert result["speedup"] >= SPEEDUP_FLOOR, result
    assert result["allocations"]["compiled"] < \
        result["allocations"]["tree_walk"], result

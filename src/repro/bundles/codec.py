"""Serialization codec for execution bundles.

Everything a visit fetched or executed is lowered to JSON-ready plain
data. Large payloads — response bodies, script sources, inline page
scripts — are *externalized*: the codec hands the text to a ``put``
callable and stores only the returned sha256 content address, so
identical bodies dedup into the bundle's content-addressed store and
the manifest/exchange records stay small. Decoding reverses the trip
through a ``get`` callable.

All JSON produced here is canonical (sorted keys, compact separators),
so a re-recorded identical crawl produces byte-identical blobs and the
fidelity differ can compare content addresses instead of bodies.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.http import HttpRequest, HttpResponse, SetCookie
from repro.net.page import (
    IFrameItem,
    LinkItem,
    PageSpec,
    ResourceItem,
    ScriptFile,
    ScriptItem,
)
from repro.net.url import URL

#: text -> content address (stores the text as a side effect).
PutFn = Callable[[str], str]
#: content address -> text.
GetFn = Callable[[str], str]

#: Field order of one encoded JS-call trace record (list, not dict:
#: traces are the highest-volume payload in a bundle).
TRACE_FIELDS = ("symbol", "operation", "value", "arguments",
                "call_stack", "script_url", "document_url")


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def encode_request(request: HttpRequest) -> Dict[str, object]:
    """One request as plain data (``request_id`` is per-process noise
    and deliberately dropped)."""
    return {
        "url": str(request.url),
        "resource_type": request.resource_type,
        "method": request.method,
        "headers": dict(request.headers),
        "body": request.body,
        "top_frame_url": None if request.top_frame_url is None
        else str(request.top_frame_url),
        "frame_url": None if request.frame_url is None
        else str(request.frame_url),
        "initiator_script": request.initiator_script,
        "cookie_header": request.cookie_header,
    }


def decode_request(data: Dict[str, object]) -> HttpRequest:
    def _url(value: object) -> Optional[URL]:
        return None if value is None else URL.parse(str(value))

    return HttpRequest(
        url=URL.parse(str(data["url"])),
        resource_type=str(data.get("resource_type", "other")),
        method=str(data.get("method", "GET")),
        headers=dict(data.get("headers") or {}),
        body=str(data.get("body", "")),
        top_frame_url=_url(data.get("top_frame_url")),
        frame_url=_url(data.get("frame_url")),
        initiator_script=data.get("initiator_script"),
        cookie_header=str(data.get("cookie_header", "")),
    )


# ----------------------------------------------------------------------
# Responses (bodies externalized by content address)
# ----------------------------------------------------------------------
def _encode_cookie(cookie: SetCookie) -> Dict[str, object]:
    return {
        "name": cookie.name, "value": cookie.value,
        "domain": cookie.domain, "path": cookie.path,
        "max_age": cookie.max_age, "http_only": cookie.http_only,
        "secure": cookie.secure, "same_site": cookie.same_site,
    }


def _decode_cookie(data: Dict[str, object]) -> SetCookie:
    return SetCookie(
        name=str(data["name"]), value=str(data["value"]),
        domain=str(data.get("domain", "")),
        path=str(data.get("path", "/")),
        max_age=data.get("max_age"),
        http_only=bool(data.get("http_only", False)),
        secure=bool(data.get("secure", False)),
        same_site=str(data.get("same_site", "Lax")),
    )


def _encode_page_item(item: object, put: PutFn) -> Dict[str, object]:
    if isinstance(item, ScriptItem):
        return {"kind": "script", "src": item.src,
                "source_ref": put(item.source) if item.source else None,
                "attributes": dict(item.attributes)}
    if isinstance(item, IFrameItem):
        return {"kind": "iframe", "src": item.src,
                "attributes": dict(item.attributes)}
    if isinstance(item, ResourceItem):
        return {"kind": "resource", "url": item.url,
                "resource_type": item.resource_type}
    if isinstance(item, LinkItem):
        return {"kind": "link", "href": item.href, "text": item.text}
    raise TypeError(f"unknown page item type: {type(item).__name__}")


def _decode_page_item(data: Dict[str, object], get: GetFn) -> object:
    kind = data.get("kind")
    if kind == "script":
        ref = data.get("source_ref")
        return ScriptItem(src=str(data.get("src", "")),
                          source=get(str(ref)) if ref else "",
                          attributes=dict(data.get("attributes") or {}))
    if kind == "iframe":
        return IFrameItem(src=str(data.get("src", "")),
                          attributes=dict(data.get("attributes") or {}))
    if kind == "resource":
        return ResourceItem(url=str(data.get("url", "")),
                            resource_type=str(data.get("resource_type",
                                                       "image")))
    if kind == "link":
        return LinkItem(href=str(data.get("href", "")),
                        text=str(data.get("text", "")))
    raise ValueError(f"unknown page item kind: {kind!r}")


def encode_response(response: HttpResponse, put: PutFn
                    ) -> Dict[str, object]:
    page = None
    if response.page is not None:
        spec = response.page
        page = {"url": spec.url, "title": spec.title,
                "csp_header": spec.csp_header,
                "items": [_encode_page_item(item, put)
                          for item in spec.items]}
    script = None
    if response.script is not None:
        script = {"url": response.script.url,
                  "content_type": response.script.content_type,
                  "source_ref": put(response.script.source)}
    return {
        "status": response.status,
        "content_type": response.content_type,
        "headers": dict(response.headers),
        "location": response.location,
        "set_cookies": [_encode_cookie(c) for c in response.set_cookies],
        "body_ref": put(response.body) if response.body else None,
        "page": page,
        "script": script,
    }


def decode_response(data: Dict[str, object], get: GetFn) -> HttpResponse:
    page = None
    page_data = data.get("page")
    if page_data is not None:
        page = PageSpec(
            url=str(page_data.get("url", "")),
            title=str(page_data.get("title", "")),
            csp_header=str(page_data.get("csp_header", "")),
            items=[_decode_page_item(item, get)
                   for item in page_data.get("items", [])])
    script = None
    script_data = data.get("script")
    if script_data is not None:
        script = ScriptFile(
            url=str(script_data.get("url", "")),
            source=get(str(script_data["source_ref"])),
            content_type=str(script_data.get("content_type",
                                             "text/javascript")))
    body_ref = data.get("body_ref")
    return HttpResponse(
        status=int(data.get("status", 200)),
        content_type=str(data.get("content_type", "text/html")),
        headers=dict(data.get("headers") or {}),
        body=get(str(body_ref)) if body_ref else "",
        set_cookies=[_decode_cookie(c)
                     for c in data.get("set_cookies", [])],
        location=data.get("location"),
        page=page,
        script=script,
    )


# ----------------------------------------------------------------------
# Hop chains (one fetch = the request plus every redirect hop)
# ----------------------------------------------------------------------
def encode_hops(hops, put: PutFn) -> List[Dict[str, object]]:
    """The full redirect chain of one ``Network.fetch`` call."""
    return [{"request": encode_request(record.request),
             "response": encode_response(record.response, put)}
            for record in hops]


def decode_hops(data: List[Dict[str, object]], get: GetFn,
                request: Optional[HttpRequest] = None
                ) -> Tuple[HttpResponse, List[object]]:
    """Rebuild ``(final_response, hop_chain)`` for one fetch.

    When *request* is given it replaces the decoded first-hop request,
    so the browser's HTTP instrument archives the very object the
    cookie jar built (matching live-fetch behavior exactly).
    """
    from repro.net.network import ExchangeRecord

    records = []
    for index, hop in enumerate(data):
        if index == 0 and request is not None:
            req = request
        else:
            req = decode_request(hop["request"])
        records.append(ExchangeRecord(req,
                                      decode_response(hop["response"],
                                                      get)))
    if not records:
        raise ValueError("empty hop chain")
    return records[-1].response, records


# ----------------------------------------------------------------------
# JS-call traces
# ----------------------------------------------------------------------
def encode_trace(records) -> List[List[str]]:
    """JSCallRecords as positional lists (see :data:`TRACE_FIELDS`)."""
    return [[record.symbol, record.operation, record.value,
             record.arguments, record.call_stack, record.script_url,
             record.document_url] for record in records]


def trace_record_fields(entry: List[str]) -> Dict[str, str]:
    """One encoded trace entry as a field dict."""
    return dict(zip(TRACE_FIELDS, entry))


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------
def classification_to_dict(classification) -> Dict[str, object]:
    """A SiteClassification as JSON-stable plain data (sorted sets)."""
    return {
        "domain": classification.domain,
        "static_identified": bool(classification.static_identified),
        "static_clean": bool(classification.static_clean),
        "dynamic_identified": bool(classification.dynamic_identified),
        "dynamic_clean": bool(classification.dynamic_clean),
        "openwpm_probes": {
            prop: sorted(hosts) for prop, hosts
            in sorted(classification.openwpm_probes.items())},
        "third_party_hosts": sorted(classification.third_party_hosts),
        "first_party_scripts": list(classification.first_party_scripts),
        "first_party_vendor": classification.first_party_vendor,
        "iterator_scripts": sorted(classification.iterator_scripts),
    }

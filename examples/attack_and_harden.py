#!/usr/bin/env python3
"""Run the paper's Sec. 5 attacks against vanilla and hardened OpenWPM.

Each attack is the paper's actual JavaScript payload (Listings 2-4),
executed in a lab page; the harness reports whether the measurement was
corrupted. The hardened WPM_hide instrumentation (Sec. 6) mitigates all
of them.

    python examples/attack_and_harden.py
"""

from repro.core.attacks import (
    run_block_recording_attack,
    run_csp_blocking_attack,
    run_fake_injection_attack,
    run_iframe_bypass_attack,
    run_silent_delivery_attack,
    run_sql_injection_probe,
)

ATTACKS = [
    ("turn recording off (Listing 2)", run_block_recording_attack),
    ("inject fake records (Listing 2)", run_fake_injection_attack),
    ("CSP blocks instrumentation (Sec 5.1.2)", run_csp_blocking_attack),
    ("iframe recording bypass (Listing 3)", run_iframe_bypass_attack),
    ("silent JS delivery (Listing 4)", run_silent_delivery_attack),
]


def main() -> None:
    print(f"{'attack':<42}{'vs WPM':<10}{'vs WPM_hide':<12}")
    print("-" * 64)
    for name, attack in ATTACKS:
        vanilla = attack(stealth=False)
        hardened = attack(stealth=True)
        print(f"{name:<42}"
              f"{'SUCCEEDS' if vanilla.succeeded else 'fails':<10}"
              f"{'SUCCEEDS' if hardened.succeeded else 'fails':<12}")

    print("\ndetails:")
    outcome = run_fake_injection_attack()
    print(f"  forged record accepted by vanilla: {outcome.forged_records}")
    outcome = run_iframe_bypass_attack()
    print(f"  vanilla iframe bypass: immediate access recorded = "
          f"{outcome.immediate_recorded}, delayed = "
          f"{outcome.delayed_recorded}")
    outcome = run_silent_delivery_attack(save_content="all")
    print(f"  silent delivery vs save_content='all' (Sec 6.2.3): "
          f"succeeded = {outcome.succeeded} (payload archived = "
          f"{outcome.payload_archived})")
    probe = run_sql_injection_probe()
    print(f"  SQL injection probe (RQ7): database corrupted = "
          f"{probe.succeeded}; hostile payloads stored inert = "
          f"{probe.payloads_stored_verbatim}")


if __name__ == "__main__":
    main()

"""Names of the DOM API surface OpenWPM's JS instrument covers.

The method lists mirror the real interfaces (CanvasRenderingContext2D,
WebGLRenderingContext, OfflineAudioContext, Performance, History); the
JavaScript instrument wraps them all, which is where Table 2's "+252/+253
properties changed through tampering" comes from.
"""

from __future__ import annotations

CANVAS_2D_METHODS = [
    "fillRect", "strokeRect", "clearRect", "fillText", "strokeText",
    "measureText", "beginPath", "closePath", "moveTo", "lineTo",
    "bezierCurveTo", "quadraticCurveTo", "arc", "arcTo", "ellipse", "rect",
    "fill", "stroke", "clip", "isPointInPath", "isPointInStroke",
    "drawImage", "createImageData", "getImageData", "putImageData",
    "save", "restore", "scale", "rotate", "translate", "transform",
    "setTransform", "resetTransform", "createLinearGradient",
    "createRadialGradient", "createPattern", "setLineDash", "getLineDash",
    "drawFocusIfNeeded", "getTransform",
]

WEBGL_METHODS = [
    "activeTexture", "attachShader", "bindAttribLocation", "bindBuffer",
    "bindFramebuffer", "bindRenderbuffer", "bindTexture", "blendColor",
    "blendEquation", "blendEquationSeparate", "blendFunc",
    "blendFuncSeparate", "bufferData", "bufferSubData",
    "checkFramebufferStatus", "clear", "clearColor", "clearDepth",
    "clearStencil", "colorMask", "compileShader", "compressedTexImage2D",
    "compressedTexSubImage2D", "copyTexImage2D", "copyTexSubImage2D",
    "createBuffer", "createFramebuffer", "createProgram",
    "createRenderbuffer", "createShader", "createTexture", "cullFace",
    "deleteBuffer", "deleteFramebuffer", "deleteProgram",
    "deleteRenderbuffer", "deleteShader", "deleteTexture", "depthFunc",
    "depthMask", "depthRange", "detachShader", "disable",
    "disableVertexAttribArray", "drawArrays", "drawElements", "enable",
    "enableVertexAttribArray", "finish", "flush",
    "framebufferRenderbuffer", "framebufferTexture2D", "frontFace",
    "generateMipmap", "getActiveAttrib", "getActiveUniform",
    "getAttachedShaders", "getAttribLocation", "getBufferParameter",
    "getContextAttributes", "getError", "getExtension",
    "getFramebufferAttachmentParameter", "getParameter",
    "getProgramInfoLog", "getProgramParameter", "getRenderbufferParameter",
    "getShaderInfoLog", "getShaderParameter", "getShaderPrecisionFormat",
    "getShaderSource", "getSupportedExtensions", "getTexParameter",
    "getUniform", "getUniformLocation", "getVertexAttrib",
    "getVertexAttribOffset", "hint", "isBuffer", "isContextLost",
    "isEnabled", "isFramebuffer", "isProgram", "isRenderbuffer", "isShader",
    "isTexture", "lineWidth", "linkProgram", "pixelStorei", "polygonOffset",
    "readPixels", "renderbufferStorage", "sampleCoverage", "scissor",
    "shaderSource", "stencilFunc", "stencilFuncSeparate", "stencilMask",
    "stencilMaskSeparate", "stencilOp", "stencilOpSeparate", "texImage2D",
    "texParameterf", "texParameteri", "texSubImage2D", "uniform1f",
    "uniform1fv", "uniform1i", "uniform1iv", "uniform2f", "uniform2fv",
    "uniform2i", "uniform2iv", "uniform3f", "uniform3fv", "uniform3i",
    "uniform3iv", "uniform4f", "uniform4fv", "uniform4i", "uniform4iv",
    "uniformMatrix2fv", "uniformMatrix3fv", "uniformMatrix4fv",
    "useProgram", "validateProgram", "vertexAttrib1f", "vertexAttrib1fv",
    "vertexAttrib2f", "vertexAttrib2fv", "vertexAttrib3f",
    "vertexAttrib3fv", "vertexAttrib4f", "vertexAttrib4fv",
    "vertexAttribPointer", "viewport",
]

AUDIO_METHODS = [
    "createAnalyser", "createOscillator", "createGain",
    "createScriptProcessor", "createBuffer", "createBufferSource",
    "createDynamicsCompressor", "startRendering", "suspend", "resume",
    "close", "decodeAudioData", "getChannelData", "getFloatFrequencyData",
    "getByteFrequencyData", "getFloatTimeDomainData",
    "getByteTimeDomainData",
]

PERFORMANCE_METHODS = [
    "now", "mark", "measure", "getEntries", "getEntriesByType",
    "getEntriesByName", "clearMarks", "clearMeasures", "clearResourceTimings",
    "toJSON",
]

HISTORY_METHODS = [
    "back", "forward", "go", "pushState", "replaceState",
]

"""Served aggregate payloads, each with a batch twin.

Every endpoint payload can be built two ways:

* ``batch=False`` (the serving path) reads the pre-aggregated
  ``rollups_*`` tables — a handful of tiny rows per request;
* ``batch=True`` (the ground-truth path) recomputes the same answer
  from the raw crawl tables via :func:`repro.serve.rollups.batch_state`.

Both return the *same* canonical dict, and :func:`encode_payload`
renders dicts to canonical JSON bytes (sorted keys, fixed separators) —
so the differential harness can demand byte-for-byte equality between
what the HTTP server sends and what the batch pipeline derives.

``database_section`` / ``drop_reasons_section`` are the ``repro stats``
integration: the report's database-truth section reads fresh rollups
when available (a big win on large crawl databases) and falls back to
the historical ``COUNT(*)`` scans otherwise — with identical output
either way, which the equivalence tests also pin.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, List, Optional

from repro.serve.rollups import (
    ROLLUP_SCHEMA_VERSION,
    batch_state,
    generation,
    rollups_state,
)

#: Cacheable aggregate endpoints (path -> builder name); the server's
#: router and the differential harness iterate the same list.
AGGREGATE_ENDPOINTS = ("totals", "symbols", "resources", "cookies",
                       "crashes", "drop_reasons")


def encode_payload(payload: Any) -> bytes:
    """Canonical JSON bytes: the unit of byte-for-byte equivalence."""
    return (json.dumps(payload, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def _one(connection: sqlite3.Connection, sql: str,
         params: tuple = ()) -> int:
    row = connection.execute(sql, params).fetchone()
    return int(row[0] or 0) if row is not None else 0


# ----------------------------------------------------------------------
# Aggregate endpoints
# ----------------------------------------------------------------------
def totals_payload(connection: sqlite3.Connection,
                   batch: bool = False) -> Dict[str, Any]:
    if batch:
        state = batch_state(connection)
        totals = state["totals"]
        distinct = sum(1 for c in state["sites"].values()
                       if c["visits"] > 0)
    else:
        totals = {name: 0 for name in (
            "site_visits", "http_requests", "http_responses",
            "javascript", "javascript_cookies", "content",
            "crash_history", "failed_visits", "quarantined_sites")}
        for name, value in connection.execute(
                "SELECT name, value FROM rollups_totals"):
            if name in totals:
                totals[str(name)] = int(value)
        distinct = _one(connection, "SELECT COUNT(*) FROM rollups_sites "
                                    "WHERE visits > 0")
    return {"totals": {name: int(count)
                       for name, count in sorted(totals.items())},
            "distinct_sites_visited": distinct}


def _ranked(items: List[tuple], names: tuple) -> List[Dict[str, Any]]:
    """Count-keyed rows, ordered by (-count, natural key)."""
    ordered = sorted(items, key=lambda row: (-row[-1],) + row[:-1])
    return [dict(zip(names + ("count",), row)) for row in ordered]


def symbols_payload(connection: sqlite3.Connection,
                    batch: bool = False) -> Dict[str, Any]:
    if batch:
        counts = batch_state(connection)["symbols"]
    else:
        counts = {(str(s), str(o)): int(n) for s, o, n
                  in connection.execute("SELECT symbol, operation, "
                                        "count FROM rollups_symbols")}
    return {"symbols": _ranked(
        [key + (count,) for key, count in counts.items()],
        ("symbol", "operation"))}


def resources_payload(connection: sqlite3.Connection,
                      batch: bool = False) -> Dict[str, Any]:
    if batch:
        counts = batch_state(connection)["resources"]
    else:
        counts = {(str(r), int(t)): int(n) for r, t, n
                  in connection.execute(
                      "SELECT resource_type, is_third_party, count "
                      "FROM rollups_resources")}
    return {"resources": _ranked(
        [key + (count,) for key, count in counts.items()],
        ("resource_type", "is_third_party"))}


def cookies_payload(connection: sqlite3.Connection,
                    batch: bool = False) -> Dict[str, Any]:
    if batch:
        counts = batch_state(connection)["cookie_hosts"]
    else:
        counts = {str(h): int(n) for h, n in connection.execute(
            "SELECT host, count FROM rollups_cookie_hosts")}
    return {"hosts": _ranked([(host, count) for host, count
                              in counts.items()], ("host",))}


def crashes_payload(connection: sqlite3.Connection,
                    batch: bool = False) -> Dict[str, Any]:
    if batch:
        counts = batch_state(connection)["crashes"]
    else:
        counts = {str(a): int(n) for a, n in connection.execute(
            "SELECT action, count FROM rollups_crashes")}
    return {"crashes": _ranked([(action, count) for action, count
                                in counts.items()], ("action",))}


def drop_reasons_payload(connection: sqlite3.Connection,
                         batch: bool = False) -> Dict[str, Any]:
    if batch:
        counts = batch_state(connection)["drop_reasons"]
    else:
        counts = {str(r): int(n) for r, n in connection.execute(
            "SELECT reason, count FROM rollups_drop_reasons")}
    return {"drop_reasons": _ranked(
        [(reason, count) for reason, count in counts.items()],
        ("reason",))}


AGGREGATE_BUILDERS = {
    "totals": totals_payload,
    "symbols": symbols_payload,
    "resources": resources_payload,
    "cookies": cookies_payload,
    "crashes": crashes_payload,
    "drop_reasons": drop_reasons_payload,
}


# ----------------------------------------------------------------------
# Per-site verdicts
# ----------------------------------------------------------------------
def sites_payload(connection: sqlite3.Connection,
                  batch: bool = False) -> Dict[str, Any]:
    if batch:
        urls = sorted(batch_state(connection)["sites"])
    else:
        urls = [str(row[0]) for row in connection.execute(
            "SELECT site_url FROM rollups_sites ORDER BY site_url")]
    return {"sites": urls, "count": len(urls)}


def _site_counters(connection: sqlite3.Connection, site_url: str,
                   batch: bool) -> Optional[Dict[str, int]]:
    if batch:
        return batch_state(connection)["sites"].get(site_url)
    row = connection.execute(
        "SELECT visits, js_rows, http_rows, response_rows, "
        "cookie_rows, third_party_requests, webdriver_probes, "
        "crashes, failed, quarantined FROM rollups_sites "
        "WHERE site_url = ?", (site_url,)).fetchone()
    if row is None:
        return None
    names = ("visits", "js_rows", "http_rows", "response_rows",
             "cookie_rows", "third_party_requests", "webdriver_probes",
             "crashes", "failed", "quarantined")
    return {name: int(value) for name, value in zip(names, row)}


def site_payload(connection: sqlite3.Connection, site_url: str,
                 batch: bool = False) -> Optional[Dict[str, Any]]:
    """One site's verdict card, or ``None`` for an unknown site."""
    counters = _site_counters(connection, site_url, batch)
    if counters is None:
        return None
    if batch:
        script_rows = [
            (digest, n) for (digest, url), n
            in batch_state(connection)["script_sites"].items()
            if url == site_url]
    else:
        script_rows = [(str(digest), int(n)) for digest, n
                       in connection.execute(
                           "SELECT content_hash, refs "
                           "FROM rollups_script_sites "
                           "WHERE site_url = ?", (site_url,))]
    return {
        "site_url": site_url,
        "counters": counters,
        "verdicts": {
            "visited": counters["visits"] > 0,
            "crashed": counters["crashes"] > 0,
            "failed": counters["failed"] > 0,
            "quarantined": counters["quarantined"] > 0,
            "probed_webdriver": counters["webdriver_probes"] > 0,
        },
        "scripts": _ranked(script_rows, ("content_hash",)),
    }


# ----------------------------------------------------------------------
# Corpus lookups by script hash
# ----------------------------------------------------------------------
def script_payload(connection: sqlite3.Connection, content_hash: str,
                   batch: bool = False) -> Optional[Dict[str, Any]]:
    """Occurrence stats for one content hash, or ``None`` if unseen.

    ``refs``/``sites`` come from the (retraction-aware) rollups over
    ``http_responses`` — a voided visit's references vanish with it;
    the ``stored`` block joins the content-addressed ``content`` table
    by primary key for the archived body's metadata.
    """
    if batch:
        state = batch_state(connection)
        refs = state["scripts"].get(content_hash, 0)
        site_rows = [(url, n) for (digest, url), n
                     in state["script_sites"].items()
                     if digest == content_hash]
    else:
        row = connection.execute(
            "SELECT refs FROM rollups_scripts WHERE content_hash = ?",
            (content_hash,)).fetchone()
        refs = int(row[0]) if row is not None else 0
        site_rows = [(str(url), int(n)) for url, n
                     in connection.execute(
                         "SELECT site_url, refs "
                         "FROM rollups_script_sites "
                         "WHERE content_hash = ?", (content_hash,))]
    stored = connection.execute(
        "SELECT url, content_type, length(content) FROM content "
        "WHERE content_hash = ?", (content_hash,)).fetchone()
    if refs == 0 and stored is None:
        return None
    payload: Dict[str, Any] = {
        "content_hash": content_hash,
        "refs": refs,
        "sites": _ranked(site_rows, ("site_url",)),
        "stored": stored is not None,
    }
    if stored is not None:
        payload["url"] = stored[0]
        payload["content_type"] = stored[1]
        payload["size"] = int(stored[2] or 0)
    return payload


# ----------------------------------------------------------------------
# Health (uncached; never part of byte-equivalence)
# ----------------------------------------------------------------------
def healthz_payload(connection: sqlite3.Connection,
                    database_path: str) -> Dict[str, Any]:
    state = rollups_state(connection)
    return {
        "status": "ok" if state == "fresh" else "degraded",
        "rollups": state,
        "schema_version": ROLLUP_SCHEMA_VERSION,
        "generation": generation(connection),
        "sites": _one(connection,
                      "SELECT COUNT(*) FROM rollups_sites")
        if state != "absent" else 0,
        "database": database_path,
    }


# ----------------------------------------------------------------------
# ``repro stats`` integration
# ----------------------------------------------------------------------
def _storage_is_fresh(storage: Any) -> bool:
    maintainer = getattr(storage, "rollups", None)
    return maintainer is not None and maintainer.is_fresh()


def database_section(storage: Any) -> Dict[str, int]:
    """The stats report's database-truth section.

    Reads the rollups when the controller's maintainer vouches for
    them (fresh, current schema), else falls back to the historical
    full-table ``COUNT(*)`` scans. Key set and values are identical
    either way — pinned by the equivalence tests.
    """
    if _storage_is_fresh(storage):
        totals = {str(row["name"]): int(row["value"]) for row in
                  storage.query("SELECT name, value FROM rollups_totals")}
        crashes = {str(row["action"]): int(row["count"]) for row in
                   storage.query("SELECT action, count "
                                 "FROM rollups_crashes")}
        distinct = int(storage.query(
            "SELECT COUNT(*) AS n FROM rollups_sites "
            "WHERE visits > 0")[0]["n"])
        return {
            "site_visit_rows": totals.get("site_visits", 0),
            "distinct_sites_visited": distinct,
            "crash_rows": crashes.get("crash", 0),
            "restart_rows": crashes.get("restart", 0),
            "failed_visit_rows": totals.get("failed_visits", 0),
            "quarantined_site_rows": totals.get("quarantined_sites", 0),
            "javascript_rows": totals.get("javascript", 0),
            "http_request_rows": totals.get("http_requests", 0),
            "cookie_rows": totals.get("javascript_cookies", 0),
            "content_rows": totals.get("content", 0),
        }

    def count(table: str, where: str = "") -> int:
        sql = f"SELECT COUNT(*) AS n FROM {table}"  # noqa: S608
        if where:
            sql += f" WHERE {where}"
        return int(storage.query(sql)[0]["n"])

    return {
        "site_visit_rows": count("site_visits"),
        "distinct_sites_visited": int(storage.query(
            "SELECT COUNT(DISTINCT site_url) AS n FROM site_visits"
        )[0]["n"]),
        "crash_rows": count("crash_history", "action = 'crash'"),
        "restart_rows": count("crash_history", "action = 'restart'"),
        "failed_visit_rows": count("failed_visits"),
        "quarantined_site_rows": count("quarantined_sites"),
        "javascript_rows": count("javascript"),
        "http_request_rows": count("http_requests"),
        "cookie_rows": count("javascript_cookies"),
        "content_rows": count("content"),
    }


def drop_reasons_section(storage: Any) -> Dict[str, int]:
    """``failed_visits`` rows per reason, highest count first (ties
    broken by reason so the ordering — and thus the JSON bytes — are
    deterministic on both the rollup and the batch path)."""
    if _storage_is_fresh(storage):
        rows = storage.query(
            "SELECT reason, count AS n FROM rollups_drop_reasons "
            "ORDER BY n DESC, reason")
    else:
        rows = storage.query(
            "SELECT reason, COUNT(*) AS n FROM failed_visits "
            "GROUP BY reason ORDER BY n DESC, reason")
    return {str(row["reason"] or "") or "unknown": int(row["n"])
            for row in rows}

"""Process-pool crawl tests (``--worker-procs``).

The acceptance criteria for the multi-process scheduler:

* an N-process crawl writes **byte-identical** verdict/visit tables to
  the 1-worker inline path (only the ``telemetry`` table and SQLite's
  ``sqlite_sequence`` bookkeeping may differ);
* the supervision ladder — heartbeat miss → SIGKILL → respawn with
  backoff → pool shrink → crawl abort — recovers from every ``proc.*``
  fault without losing or duplicating a site (exactly-once);
* an interrupted or aborted process crawl resumes from the same queue
  file and finishes the remainder;
* concurrent worker *processes* never double-claim a job and never
  share a journal epoch.

These tests spawn real subprocesses and run on wall-clock time, so
site counts are kept small.
"""

import multiprocessing
import os
import sqlite3
import threading

import pytest

from repro.faults.plan import FaultPlan, FaultRule
from repro.obs.clock import WallClock
from repro.obs.journal import Journal, journal_files, merge_journal
from repro.obs.runner import run_telemetry_crawl
from repro.obs.stats import build_crawl_report, render_crawl_report
from repro.obs.telemetry import Telemetry
from repro.sched import JobQueue, diff_snapshots
from repro.sched.procpool import _Finalizer

#: Tables whose bytes legitimately differ between runs: telemetry row
#: counts depend on scheduling, and sqlite_sequence tracks the
#: telemetry table's AUTOINCREMENT high-water mark.
VOLATILE_TABLES = ("telemetry", "sqlite_sequence")


def dump_tables(db_path):
    """Every row of every table, fully ordered, minus volatile ones."""
    conn = sqlite3.connect(db_path)
    try:
        tables = [row[0] for row in conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' "
            "ORDER BY name")]
        out = {}
        for table in tables:
            if table in VOLATILE_TABLES:
                continue
            cols = [col[1] for col in conn.execute(
                f"PRAGMA table_info({table})")]
            out[table] = conn.execute(
                f"SELECT * FROM {table} ORDER BY "
                + ", ".join(cols)).fetchall()
        return out
    finally:
        conn.close()


def crawl(tmp_path, name, sites=10, **kwargs):
    """One telemetered lab crawl into ``tmp_path/<name>.db``."""
    db_path = str(tmp_path / f"{name}.db")
    result = run_telemetry_crawl(
        site_count=sites, seed=7, database_path=db_path,
        crash_probability=0.0, browsers=1, web="lab",
        queue_path=str(tmp_path / f"{name}.queue"), **kwargs)
    report = result.report
    result.close()
    return db_path, report


# ---------------------------------------------------------------------------
# Determinism: N processes == 1 inline worker, byte for byte
# ---------------------------------------------------------------------------
class TestProcEquivalence:
    @pytest.fixture(scope="class")
    def inline_baseline(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("inline")
        db_path, report = crawl(tmp, "inline", workers=1)
        assert report.drained
        return dump_tables(db_path)

    @pytest.mark.parametrize("procs", [1, 2, 4])
    def test_proc_crawl_byte_identical_to_inline(self, procs, tmp_path,
                                                 inline_baseline):
        db_path, report = crawl(tmp_path, f"proc{procs}",
                                worker_procs=procs)
        assert report.drained
        assert report.completed == 10
        assert not report.interrupted
        tables = dump_tables(db_path)
        assert set(tables) == set(inline_baseline)
        for table in tables:
            assert tables[table] == inline_baseline[table], table

    def test_memory_queue_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="file-backed"):
            run_telemetry_crawl(
                site_count=2, database_path=":memory:", browsers=1,
                crash_probability=0.0, web="lab", worker_procs=2)

    def test_worker_procs_excludes_thread_workers(self, tmp_path):
        with pytest.raises(ValueError, match="worker"):
            run_telemetry_crawl(
                site_count=2, database_path=":memory:", browsers=1,
                crash_probability=0.0, web="lab", worker_procs=2,
                workers=2, queue_path=str(tmp_path / "x.queue"))


class TestScanProcEquivalence:
    def test_two_procs_match_inline_scan(self, tmp_path):
        from repro.core.scan import ScanPipeline
        from repro.web import build_world

        world = build_world(site_count=8, seed=5)
        inline = ScanPipeline(world, client_id="proc-test").run(
            visit_subpages=True, workers=1,
            queue_path=str(tmp_path / "inline.queue"))
        procs = ScanPipeline(world, client_id="proc-test").run(
            visit_subpages=True, worker_procs=2, world_seed=5,
            queue_path=str(tmp_path / "proc.queue"))
        try:
            assert procs.corpus.occurrence_rows() \
                == inline.corpus.occurrence_rows()
            assert procs.corpus.hashes() == inline.corpus.hashes()
            assert procs.unique_scripts == inline.unique_scripts
            assert procs.table5() == inline.table5()
            assert procs.table11() == inline.table11()
        finally:
            inline.corpus.close()
            procs.corpus.close()


# ---------------------------------------------------------------------------
# Fault injection at the proc.* choke points
# ---------------------------------------------------------------------------
class TestProcFaults:
    def test_worker_sigkill_mid_visit_exactly_once(self, tmp_path):
        """SIGKILL mid-visit: the lease is reclaimed, the site re-runs
        on the respawned worker, and lands in the database exactly
        once. One worker proc keeps the death count deterministic —
        rule fire budgets are per process lineage, so with N initial
        workers a ``times=1`` rule would fire once in each."""
        plan = FaultPlan([FaultRule(fault="worker_sigkill",
                                    point="proc.mid_visit", times=1)])
        telemetry = Telemetry()
        db_path, report = crawl(tmp_path, "sigkill", sites=8,
                                worker_procs=1, fault_plan=plan,
                                telemetry=telemetry,
                                respawn_backoff=0.05)
        assert report.drained
        assert report.completed == 8
        assert report.worker_deaths == 1
        metrics = telemetry.metrics
        assert metrics.counter_value("proc_worker_deaths") == 1
        assert metrics.counter_value("proc_workers_respawned") == 1
        assert metrics.counter_value("proc_workers_spawned") == 2
        conn = sqlite3.connect(db_path)
        rows = conn.execute(
            "SELECT COUNT(*), COUNT(DISTINCT site_url) "
            "FROM site_visits").fetchone()
        conn.close()
        assert rows == (8, 8)

    def test_broker_pipe_error_recovers(self, tmp_path):
        """A broken envelope pipe kills the worker; the job's lease is
        released and the re-run ships the records."""
        plan = FaultPlan([FaultRule(fault="broker_pipe_error",
                                    point="proc.envelope", times=1)])
        db_path, report = crawl(tmp_path, "pipe", sites=6,
                                worker_procs=1, fault_plan=plan,
                                respawn_backoff=0.05)
        assert report.drained
        assert report.completed == 6
        assert report.worker_deaths == 1
        conn = sqlite3.connect(db_path)
        rows = conn.execute(
            "SELECT COUNT(*), COUNT(DISTINCT site_url) "
            "FROM site_visits").fetchone()
        conn.close()
        assert rows == (6, 6)

    def test_hang_triggers_heartbeat_sigkill_ladder(self, tmp_path):
        """A real-time hang stops the heartbeats; the supervisor
        SIGKILLs the worker at the deadline and the respawn finishes
        the crawl."""
        plan = FaultPlan([FaultRule(fault="hang",
                                    point="proc.mid_visit", times=1,
                                    seconds=60.0)])
        telemetry = Telemetry()
        db_path, report = crawl(tmp_path, "hang", sites=4,
                                worker_procs=1, fault_plan=plan,
                                telemetry=telemetry,
                                heartbeat_deadline=3.0,
                                respawn_backoff=0.05)
        assert report.drained
        assert report.completed == 4
        metrics = telemetry.metrics
        assert metrics.counter_value("proc_heartbeats_missed") >= 1
        assert metrics.counter_value("proc_workers_killed") >= 1
        conn = sqlite3.connect(db_path)
        rows = conn.execute(
            "SELECT COUNT(*), COUNT(DISTINCT site_url) "
            "FROM site_visits").fetchone()
        conn.close()
        assert rows == (4, 4)

    def test_respawn_failure_shrinks_pool_then_resume_finishes(
            self, tmp_path):
        """Failed respawns walk the crash-loop ladder to a pool shrink
        and crawl abort; a resume over the same queue completes the
        remainder."""
        plan = FaultPlan([
            FaultRule(fault="worker_sigkill", point="proc.claim",
                      times=1),
            FaultRule(fault="respawn_failure", point="proc.respawn",
                      times=10),
        ])
        telemetry = Telemetry()
        db_path, report = crawl(tmp_path, "shrink", sites=4,
                                worker_procs=1, fault_plan=plan,
                                telemetry=telemetry, respawn_limit=1,
                                respawn_backoff=0.05)
        assert report.interrupted
        assert report.completed < 4
        assert telemetry.metrics.counter_value("proc_pool_shrinks") == 1

        result = run_telemetry_crawl(
            site_count=4, seed=7, database_path=db_path,
            crash_probability=0.0, browsers=1, web="lab",
            worker_procs=1,
            queue_path=str(tmp_path / "shrink.queue"), resume=True)
        resumed = result.report
        result.close()
        assert resumed.drained
        assert resumed.counts["completed"] == 4
        conn = sqlite3.connect(db_path)
        rows = conn.execute(
            "SELECT COUNT(*), COUNT(DISTINCT site_url) "
            "FROM site_visits").fetchone()
        conn.close()
        assert rows == (4, 4)


class TestStopResume:
    def test_stop_after_jobs_then_resume(self, tmp_path):
        db_path, report = crawl(tmp_path, "stop", sites=12,
                                worker_procs=2, stop_after_jobs=4)
        assert report.interrupted
        first = report.completed
        assert 0 < first < 12

        result = run_telemetry_crawl(
            site_count=12, seed=7, database_path=db_path,
            crash_probability=0.0, browsers=1, web="lab",
            worker_procs=2, queue_path=str(tmp_path / "stop.queue"),
            resume=True)
        resumed = result.report
        result.close()
        assert resumed.drained
        assert resumed.counts["completed"] == 12
        assert resumed.completed == 12 - first
        conn = sqlite3.connect(db_path)
        rows = conn.execute(
            "SELECT COUNT(*), COUNT(DISTINCT site_url) "
            "FROM site_visits").fetchone()
        conn.close()
        assert rows == (12, 12)


# ---------------------------------------------------------------------------
# repro stats: process-supervision section + journal reconciliation
# ---------------------------------------------------------------------------
class TestStatsSupervisionSection:
    def test_clean_proc_crawl_reconciles_with_journal(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        db_path = str(tmp_path / "stats.db")
        queue_path = str(tmp_path / "stats.queue")
        result = run_telemetry_crawl(
            site_count=6, seed=7, database_path=db_path,
            crash_probability=0.0, browsers=1, web="lab",
            worker_procs=2, queue_path=queue_path,
            journal_dir=journal_dir)
        queue = JobQueue(queue_path)
        try:
            report = build_crawl_report(result.storage, queue=queue,
                                        journal_dir=journal_dir)
        finally:
            queue.close()
            result.close()
        pool = report["process_pool"]
        assert pool is not None
        assert pool["workers_spawned"] == 2
        assert pool["worker_deaths"] == 0
        proc_checks = [c for c in report["reconciliation"]
                       if "proc_" in c["check"]]
        assert proc_checks and all(c["ok"] for c in proc_checks), \
            proc_checks
        assert report["reconciled"], report["reconciliation"]
        text = render_crawl_report(report)
        assert "Process supervision" in text
        assert "workers spawned" in text

    def test_section_absent_without_proc_metrics(self):
        result = run_telemetry_crawl(site_count=3, browsers=1,
                                     crash_probability=0.0, web="lab")
        report = build_crawl_report(result.storage)
        result.close()
        assert report["process_pool"] is None
        assert "Process supervision" not in render_crawl_report(report)


# ---------------------------------------------------------------------------
# Queue: atomic cross-connection claims
# ---------------------------------------------------------------------------
class TestAtomicClaim:
    def test_concurrent_connections_never_double_claim(self, tmp_path):
        """The claim must be a conditional UPDATE, not read-then-write:
        four independent connections (stand-ins for worker processes —
        separate sqlite handles, separate in-process locks) racing over
        one queue file must each win disjoint jobs."""
        path = str(tmp_path / "race.queue")
        seedq = JobQueue(path)
        seedq.enqueue([f"https://lab.test/site-{i:05d}"
                       for i in range(60)])
        seedq.close()

        claimed = []
        lock = threading.Lock()

        def contender(owner):
            queue = JobQueue(path)
            try:
                while True:
                    job = queue.claim(owner)
                    if job is None:
                        return
                    with lock:
                        claimed.append(job.job_id)
            finally:
                queue.close()

        threads = [threading.Thread(target=contender, args=(f"w{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == list(range(1, 61))

    def test_claim_increments_attempts_once(self, tmp_path):
        queue = JobQueue(str(tmp_path / "attempts.queue"))
        queue.enqueue(["https://lab.test/site-00000"])
        job = queue.claim("w0")
        assert job.attempts == 1
        assert queue.claim("w1") is None
        queue.close()


# ---------------------------------------------------------------------------
# Journal: cross-process epoch claiming
# ---------------------------------------------------------------------------
def _epoch_claimer(directory, out_queue):
    journal = Journal(directory, WallClock())
    journal.emit("probe", pid=os.getpid())
    journal.close()
    out_queue.put(journal.epoch)


class TestJournalEpochClaim:
    def test_concurrent_processes_claim_distinct_epochs(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        out = ctx.Queue()
        procs = [ctx.Process(target=_epoch_claimer,
                             args=(str(tmp_path), out))
                 for _ in range(4)]
        for proc in procs:
            proc.start()
        epochs = sorted(out.get(timeout=60) for _ in procs)
        for proc in procs:
            proc.join()
        assert epochs == [0, 1, 2, 3]
        events = merge_journal(str(tmp_path))
        assert [e["epoch"] for e in events
                if e.get("type") == "probe"] == [0, 1, 2, 3]

    def test_torn_final_line_is_recovered(self, tmp_path):
        journal = Journal(str(tmp_path), WallClock())
        journal.emit("alpha")
        journal.emit("beta")
        journal.close()
        path = journal_files(str(tmp_path))[0]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "torn-mid-wri')
        events = merge_journal(str(tmp_path))
        assert [e["type"] for e in events] == ["alpha", "beta"]


# ---------------------------------------------------------------------------
# diff_snapshots: the worker→coordinator metric delta protocol
# ---------------------------------------------------------------------------
def counter(name, value, **labels):
    return {"name": name, "kind": "counter", "labels": labels,
            "value": value}


class TestDiffSnapshots:
    def test_counters_subtract(self):
        prev = [counter("visits_completed", 3.0)]
        curr = [counter("visits_completed", 5.0)]
        assert diff_snapshots(prev, curr) \
            == [counter("visits_completed", 2.0)]

    def test_unchanged_counter_omitted(self):
        snap = [counter("visits_completed", 3.0)]
        assert diff_snapshots(snap, list(snap)) == []

    def test_none_prev_is_full_snapshot(self):
        curr = [counter("visits_completed", 4.0)]
        assert diff_snapshots(None, curr) == curr

    def test_labels_distinguish_series(self):
        prev = [counter("records_written", 2.0, instrument="js")]
        curr = [counter("records_written", 2.0, instrument="js"),
                counter("records_written", 7.0, instrument="http")]
        assert diff_snapshots(prev, curr) \
            == [counter("records_written", 7.0, instrument="http")]

    def test_gauges_pass_through_absolute(self):
        prev = [{"name": "depth", "kind": "gauge", "labels": {},
                 "value": 9.0}]
        curr = [{"name": "depth", "kind": "gauge", "labels": {},
                 "value": 4.0}]
        assert diff_snapshots(prev, curr) == curr

    def test_histograms_subtract_counts_sum_and_buckets(self):
        prev = [{"name": "wait", "kind": "histogram", "labels": {},
                 "count": 2, "sum": 1.0, "bucket_counts": [1, 1, 0]}]
        curr = [{"name": "wait", "kind": "histogram", "labels": {},
                 "count": 5, "sum": 4.0, "bucket_counts": [2, 2, 1]}]
        delta = diff_snapshots(prev, curr)
        assert delta == [{"name": "wait", "kind": "histogram",
                          "labels": {}, "count": 3, "sum": 3.0,
                          "bucket_counts": [1, 1, 1]}]

    def test_unchanged_histogram_omitted(self):
        snap = [{"name": "wait", "kind": "histogram", "labels": {},
                 "count": 2, "sum": 1.0, "bucket_counts": [2, 0]}]
        assert diff_snapshots(snap, [dict(snap[0])]) == []


# ---------------------------------------------------------------------------
# _Finalizer: strict job-id ordering of final resolutions
# ---------------------------------------------------------------------------
def make_queue(urls=3):
    queue = JobQueue(":memory:")
    queue.enqueue([f"https://lab.test/site-{i:05d}"
                   for i in range(urls)])
    return queue


class TestFinalizer:
    def test_finals_apply_in_job_id_order(self):
        queue = make_queue()
        finalizer = _Finalizer(queue)
        applied = []

        def apply(job_id):
            def fn():
                applied.append(job_id)
                return True
            return fn

        finalizer.submit(3, "w0", apply(3))
        finalizer.submit(2, "w1", apply(2))
        assert applied == []
        finalizer.submit(1, "w0", apply(1))
        assert applied == [1, 2, 3]
        queue.close()

    def test_voided_final_holds_the_cursor(self):
        queue = make_queue()
        finalizer = _Finalizer(queue)
        applied = []
        finalizer.submit(1, "w0", lambda: False)  # lease lost
        finalizer.submit(2, "w1",
                         lambda: applied.append(2) or True)
        assert applied == []  # job 1 unsettled; 2 must wait
        finalizer.submit(1, "w1",
                         lambda: applied.append(1) or True)
        assert applied == [1, 2]
        queue.close()

    def test_terminal_at_startup_unblocks_cursor(self):
        queue = make_queue()
        job = queue.claim("w0")
        queue.fail(job.job_id, "w0", error="boom", retry=False)
        finalizer = _Finalizer(queue)
        applied = []
        finalizer.submit(2, "w1", lambda: applied.append(2) or True)
        assert applied == [2]
        queue.close()

    def test_mark_terminal_unblocks(self):
        queue = make_queue()
        finalizer = _Finalizer(queue)
        applied = []
        finalizer.submit(2, "w1", lambda: applied.append(2) or True)
        assert applied == []
        finalizer.mark_terminal(1)
        assert applied == [2]
        queue.close()

    def test_force_owner_applies_dead_workers_finals(self):
        queue = make_queue()
        finalizer = _Finalizer(queue)
        applied = []
        finalizer.submit(2, "dead", lambda: applied.append(2) or True)
        finalizer.submit(3, "live", lambda: applied.append(3) or True)
        finalizer.force_owner("dead")
        assert applied == [2]  # out of order, but only the dead one
        finalizer.submit(1, "live", lambda: applied.append(1) or True)
        assert applied == [2, 1, 3]
        queue.close()

    def test_flush_applies_everything_left(self):
        queue = make_queue()
        finalizer = _Finalizer(queue)
        applied = []
        finalizer.submit(3, "w0", lambda: applied.append(3) or True)
        finalizer.submit(2, "w1", lambda: applied.append(2) or True)
        finalizer.flush()
        assert applied == [2, 3]
        assert finalizer.buffer == {}
        queue.close()

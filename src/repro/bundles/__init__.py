"""Web execution bundles: record/replay archival crawls.

A bundle is a self-contained, content-addressed archive of one crawl:
every fetched resource (bodies and scripts deduped by sha256 into a
corpus-backed blob store), every redirect hop, each visit's JS-call
trace, and the per-site detector verdicts. Record one with
``repro crawl --record DIR`` (or ``repro scan --record DIR``), replay
it — no live synthetic web, full instrumentation re-executed — with
``--replay DIR``, and score the replay against the recording with
``repro fidelity ORIGINAL REPLAY``. For verdict re-checks that don't
need browser re-execution (new pattern set, changed classifier),
``--replay DIR --offline`` re-runs only the analysis half over the
archived evidence — orders of magnitude faster than a live scan.
"""

from repro.bundles.bundle import (
    BUNDLE_FORMAT,
    Bundle,
    BundleError,
    BundleVisit,
    BundleWriter,
    IncompleteBundleError,
    is_bundle_dir,
)
from repro.bundles.fidelity import diff_bundles, render_fidelity_report
from repro.bundles.reanalyze import reanalyze_bundle, reanalyze_path
from repro.bundles.record import BundleRecorder
from repro.bundles.replay import ReplayNetwork, ReplayWeb

__all__ = [
    "BUNDLE_FORMAT",
    "Bundle",
    "BundleError",
    "BundleRecorder",
    "BundleVisit",
    "BundleWriter",
    "IncompleteBundleError",
    "ReplayNetwork",
    "ReplayWeb",
    "diff_bundles",
    "is_bundle_dir",
    "reanalyze_bundle",
    "reanalyze_path",
    "render_fidelity_report",
]

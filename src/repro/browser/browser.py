"""The browser: page loads, resource fetching, event loop, extension hooks."""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.browser.cookies import Cookie, CookieJar
from repro.browser.extension import ExtensionHost
from repro.browser.profiles import BrowserProfile
from repro.browser.window import BrowserWindow, ScriptExecutionError
from repro.dom.csp import CSPViolation
from repro.dom.node import IFrameElement
from repro.net.http import HttpRequest, HttpResponse, ResourceType
from repro.net.network import ClientIdentity, ExchangeRecord, Network
from repro.net.page import IFrameItem, LinkItem, PageSpec, ResourceItem, \
    ScriptItem
from repro.net.url import URL


@dataclass
class ExecutedScript:
    """Host-side record of one script execution in some frame."""

    frame_url: str
    script_url: str
    source: str
    via_eval: bool = False


@dataclass
class VisitResult:
    """Everything one page visit produced."""

    requested_url: str
    final_url: str
    success: bool
    top_window: Optional[BrowserWindow] = None
    exchanges: List[ExchangeRecord] = field(default_factory=list)
    csp_violations: List[CSPViolation] = field(default_factory=list)
    script_errors: List[ScriptExecutionError] = field(default_factory=list)
    executed_scripts: List[ExecutedScript] = field(default_factory=list)
    popups: List[BrowserWindow] = field(default_factory=list)

    @property
    def links(self) -> List[str]:
        if self.top_window is None or self.top_window.page is None:
            return []
        return self.top_window.page.links()


class Browser:
    """A simulated automated browser bound to one network client identity.

    The event loop uses *virtual time*: ``schedule`` queues callbacks and
    ``visit`` drains the queue up to the configured dwell time, so a
    "60 second" page idle costs no wall-clock time.
    """

    def __init__(self, profile: BrowserProfile, network: Network,
                 client_id: str = "client-0",
                 extension: Optional[ExtensionHost] = None,
                 seed: int = 0) -> None:
        self.profile = profile
        self.network = network
        self.client = ClientIdentity(
            client_id=client_id,
            user_agent=str(profile.navigator.get("userAgent", "")))
        self.extension = extension
        self.rng = random.Random(seed)
        self.cookie_jar = CookieJar()
        self.current_time = 0.0
        self._timer_queue: List[Tuple[float, int, int]] = []
        self._timer_callbacks: Dict[int, Callable[[], None]] = {}
        self._timer_ids = itertools.count(1)
        self._window_count = 0
        self._local_storage: Dict[str, Dict[str, str]] = {}

        # Per-visit state
        self.exchanges: List[ExchangeRecord] = []
        self.csp_violations: List[CSPViolation] = []
        self.script_errors: List[ScriptExecutionError] = []
        self.executed_scripts: List[ExecutedScript] = []
        self.popups: List[BrowserWindow] = []
        self._top_window: Optional[BrowserWindow] = None

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def schedule(self, fn: Callable[[], None], delay: float = 0.0) -> int:
        timer_id = next(self._timer_ids)
        heapq.heappush(self._timer_queue,
                       (self.current_time + delay, timer_id, timer_id))
        self._timer_callbacks[timer_id] = fn
        return timer_id

    def cancel_scheduled(self, timer_id: int) -> None:
        self._timer_callbacks.pop(timer_id, None)

    def run_event_loop(self, until: float) -> None:
        """Run queued tasks with fire time <= *until* (virtual seconds)."""
        while self._timer_queue and self._timer_queue[0][0] <= until:
            fire_time, _, timer_id = heapq.heappop(self._timer_queue)
            callback = self._timer_callbacks.pop(timer_id, None)
            self.current_time = max(self.current_time, fire_time)
            if callback is not None:
                callback()
        self.current_time = max(self.current_time, until)

    def drain_microtasks(self) -> None:
        """Run all tasks scheduled for 'now' (delay 0)."""
        self.run_event_loop(self.current_time)

    def next_window_index(self) -> int:
        index = self._window_count
        self._window_count += 1
        return index

    def local_storage_for(self, origin: str) -> Dict[str, str]:
        return self._local_storage.setdefault(origin, {})

    # ------------------------------------------------------------------
    # Visiting pages
    # ------------------------------------------------------------------
    def visit(self, url: str, wait: float = 60.0) -> VisitResult:
        """Load *url*, execute its content, idle for *wait* seconds."""
        requested = URL.parse(url)
        self._reset_visit_state()
        if self.extension is not None:
            self.extension.on_visit_start(self, requested)

        response, hops = self._fetch_with_cookies(
            requested, ResourceType.MAIN_FRAME, top_frame_url=requested,
            frame_url=requested)
        final_url = hops[-1].request.url if hops else requested
        if response.status != 200 or not isinstance(response.page, PageSpec):
            return self._finish_visit(VisitResult(
                requested_url=url, final_url=str(final_url), success=False,
                exchanges=list(self.exchanges)))

        top = BrowserWindow(self, final_url, response.page)
        self._top_window = top
        if self.extension is not None:
            self.extension.on_window_created(top)
        self._process_page_items(top)
        top.document.ready_state = "complete"
        self._fire_load_event(top)
        self.drain_microtasks()
        self.run_event_loop(self.current_time + wait)

        result = VisitResult(
            requested_url=url, final_url=str(final_url), success=True,
            top_window=top, exchanges=list(self.exchanges),
            csp_violations=list(self.csp_violations),
            script_errors=list(self.script_errors),
            executed_scripts=list(self.executed_scripts),
            popups=list(self.popups))
        return self._finish_visit(result)

    def _finish_visit(self, result: VisitResult) -> VisitResult:
        if self.extension is not None:
            self.extension.on_visit_end(self)
        return result

    def _reset_visit_state(self) -> None:
        self.exchanges = []
        self.csp_violations = []
        self.script_errors = []
        self.executed_scripts = []
        self.popups = []
        self._top_window = None
        self._timer_queue.clear()
        self._timer_callbacks.clear()

    def _process_page_items(self, window: BrowserWindow) -> None:
        """Walk the page top-to-bottom like an HTML parser."""
        page = window.page
        if page is None:
            return
        for item in page.items:
            if isinstance(item, ScriptItem):
                element = window.document.create_element("script")
                if item.src:
                    element.attributes["src"] = item.src
                else:
                    element.text_content = item.source
                element.attributes.update(item.attributes)
                window.document.head.append_child(element)
            elif isinstance(item, IFrameItem):
                element = window.document.create_element("iframe")
                element.attributes["src"] = item.src
                element.attributes.update(item.attributes)
                window.document.body.append_child(element)
            elif isinstance(item, ResourceItem):
                window.issue_request(item.url, item.resource_type)
            elif isinstance(item, LinkItem):
                element = window.document.create_element("a")
                element.attributes["href"] = item.href
                element.text_content = item.text
                window.document.body.append_child(element)

    def _fire_load_event(self, window: BrowserWindow) -> None:
        from repro.dom.events import DOMEvent

        event = DOMEvent("load", proto=window.dom.event)
        window.document.host_dispatch(event, window.interp)

    # ------------------------------------------------------------------
    # Frames & popups
    # ------------------------------------------------------------------
    def load_iframe(self, parent: BrowserWindow,
                    iframe: IFrameElement) -> None:
        """Create the iframe's content window.

        The window exists (and is JS-reachable through ``contentWindow``)
        immediately; extension instrumentation attaches per the
        extension's frame policy — deferred instrumentation leaves the
        same-tick gap that the Listing-3 bypass exploits.
        """
        src = iframe.attributes.get("src", "")
        page: Optional[PageSpec] = None
        frame_url = parent.url
        if src and src != "about:blank":
            try:
                frame_url = URL.parse(src, base=parent.url)
            except ValueError:
                frame_url = parent.url
            response, _ = self._fetch_with_cookies(
                frame_url, ResourceType.SUB_FRAME,
                top_frame_url=self._top_frame_url(parent),
                frame_url=frame_url)
            if isinstance(response.page, PageSpec):
                page = response.page
        child = BrowserWindow(self, frame_url, page, parent=parent)
        parent.child_frames.append(child)
        iframe.content_window = child

        if self.extension is not None:
            if self.extension.frame_policy == "immediate":
                self.extension.on_frame_created(child, parent)
            else:
                self.schedule(
                    lambda: self.extension.on_frame_created(child, parent),
                    delay=0.0)
        # Frame content executes asynchronously, after instrumentation
        # tasks queued at creation time.
        self.schedule(lambda: self._run_frame_content(child, iframe),
                      delay=0.0)

    def _run_frame_content(self, child: BrowserWindow,
                           iframe: IFrameElement) -> None:
        self._process_page_items(child)
        child.document.ready_state = "complete"
        from repro.dom.events import DOMEvent

        event = DOMEvent("load", proto=child.dom.event)
        iframe.host_dispatch(event, child.interp)

    def open_popup(self, target: str,
                   opener: BrowserWindow) -> Optional[BrowserWindow]:
        try:
            url = URL.parse(target, base=opener.url)
        except ValueError:
            return None
        response, _ = self._fetch_with_cookies(
            url, ResourceType.MAIN_FRAME, top_frame_url=url, frame_url=url)
        page = response.page if isinstance(response.page, PageSpec) else None
        popup = BrowserWindow(self, url, page, is_popup=True)
        self.popups.append(popup)
        if self.extension is not None:
            if self.extension.frame_policy == "immediate":
                self.extension.on_frame_created(popup, opener)
            else:
                self.schedule(
                    lambda: self.extension.on_frame_created(popup, opener),
                    delay=0.0)
        self.schedule(lambda: self._process_page_items(popup), delay=0.0)
        return popup

    def _top_frame_url(self, window: BrowserWindow) -> URL:
        return window.top_window().url

    # ------------------------------------------------------------------
    # Networking
    # ------------------------------------------------------------------
    def fetch_resource(self, url: URL, resource_type: str,
                       frame: BrowserWindow,
                       initiator_script: Optional[str] = None
                       ) -> HttpResponse:
        response, _ = self._fetch_with_cookies(
            url, resource_type,
            top_frame_url=self._top_frame_url(frame),
            frame_url=frame.url,
            initiator_script=initiator_script)
        return response

    def _fetch_with_cookies(self, url: URL, resource_type: str,
                            top_frame_url: URL, frame_url: URL,
                            initiator_script: Optional[str] = None
                            ) -> Tuple[HttpResponse, List[ExchangeRecord]]:
        request = HttpRequest(
            url=url,
            resource_type=resource_type,
            top_frame_url=top_frame_url,
            frame_url=frame_url,
            initiator_script=initiator_script,
            cookie_header=self.cookie_jar.header_for(url, self.current_time),
            headers={"User-Agent": self.client.user_agent},
        )
        response, hops = self.network.fetch(request, self.client)
        for hop in hops:
            self.exchanges.append(hop)
            for set_cookie in hop.response.set_cookies:
                cookie = self.cookie_jar.set_from_response(
                    set_cookie, hop.request.url, top_frame_url.host,
                    self.current_time)
                self.notify_cookie(cookie, "added-http")
            if self.extension is not None:
                self.extension.on_request(hop.request, hop.response)
        return response, hops

    def notify_cookie(self, cookie: Cookie, change: str) -> None:
        if self.extension is not None:
            self.extension.on_cookie_change(cookie, change)

    # ------------------------------------------------------------------
    # Reporting hooks
    # ------------------------------------------------------------------
    def report_csp_violation(self, window: BrowserWindow,
                             violation: CSPViolation) -> None:
        self.csp_violations.append(violation)
        if violation.report_uri:
            try:
                report_url = URL.parse(violation.report_uri,
                                       base=window.url)
            except ValueError:
                return
            request = HttpRequest(
                url=report_url,
                resource_type=ResourceType.CSP_REPORT,
                method="POST",
                body=f'{{"csp-report":{{"violated-directive":'
                     f'"{violation.directive}","blocked-uri":'
                     f'"{violation.blocked}"}}}}',
                top_frame_url=self._top_frame_url(window),
                frame_url=window.url,
            )
            response, hops = self.network.fetch(request, self.client)
            for hop in hops:
                self.exchanges.append(hop)
                if self.extension is not None:
                    self.extension.on_request(hop.request, hop.response)

    def note_script_execution(self, window: BrowserWindow, script_url: str,
                              source: str, via_eval: bool = False) -> None:
        self.executed_scripts.append(ExecutedScript(
            frame_url=str(window.url), script_url=script_url,
            source=source, via_eval=via_eval))

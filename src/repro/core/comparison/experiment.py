"""The paired WPM vs WPM_hide crawl (paper Sec. 6.3).

Two browsers — vanilla OpenWPM (*WPM*) and the hardened variant
(*WPM_hide*) — with separate network identities (the paper's two
residential IPs) visit the same detector-bearing sites in lockstep, for
three repetitions r1..r3. Server-side re-identification state persists
across repetitions (the paper's amplification effect); each repetition
starts from a fresh browser profile.

Outputs map onto the paper's evaluation:

* :meth:`PairedCrawlResult.table8`  — requests by resource type;
* :meth:`PairedCrawlResult.table9`  — EasyList/EasyPrivacy traffic;
* :meth:`PairedCrawlResult.table10` — first/third-party/tracking cookies;
* :meth:`PairedCrawlResult.fig6`    — per-API JS-call coverage.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.browser.browser import Browser
from repro.browser.profiles import openwpm_profile
from repro.core.comparison.blocklists import BlocklistMatcher
from repro.core.comparison.cookies import (
    classify_tracking_cookies,
    count_tracking_per_run,
)
from repro.core.comparison.stats import WilcoxonResult, paired_wilcoxon
from repro.core.hardening.settings import StealthSettings
from repro.core.hardening.stealth import StealthJSInstrument
from repro.net.http import ResourceType
from repro.obs.telemetry import Telemetry, coalesce
from repro.openwpm.config import BrowserParams
from repro.openwpm.extension import OpenWPMExtension
from repro.openwpm.instruments.cookie_instrument import CookieRecord
from repro.openwpm.instruments.http_instrument import HttpExchangeRecord
from repro.sched import CrawlScheduler
from repro.web.world import SyntheticWeb


@dataclass
class ClientRunData:
    """Everything one client collected in one repetition."""

    client: str
    run: int
    requests: List[HttpExchangeRecord] = field(default_factory=list)
    cookies: List[CookieRecord] = field(default_factory=list)
    js_symbols: Counter = field(default_factory=Counter)
    #: per-site request counts (for significance testing)
    per_site_requests: Dict[str, int] = field(default_factory=dict)
    per_site_cookies: Dict[str, int] = field(default_factory=dict)
    per_site_tracker_requests: Dict[str, int] = field(default_factory=dict)
    failed_hook_sites: int = 0

    def requests_by_type(self) -> Counter:
        counter: Counter = Counter()
        for record in self.requests:
            counter[record.resource_type] += 1
        return counter


@dataclass
class PairedCrawlResult:
    """The three repetitions for both clients, plus derived tables."""

    wpm_runs: List[ClientRunData] = field(default_factory=list)
    hide_runs: List[ClientRunData] = field(default_factory=list)
    site_count: int = 0

    # ------------------------------------------------------------------
    # Table 8
    # ------------------------------------------------------------------
    def table8(self, run: int = 0) -> List[Dict[str, object]]:
        """Rows: resource type, WPM count, WPM_hide count, diff %."""
        wpm = self.wpm_runs[run].requests_by_type()
        hide = self.hide_runs[run].requests_by_type()
        rows = []
        for resource_type in ResourceType.ALL:
            base = wpm.get(resource_type, 0)
            other = hide.get(resource_type, 0)
            diff = ((other - base) / base * 100.0) if base else (
                100.0 if other else 0.0)
            rows.append({"resource_type": resource_type, "wpm": base,
                         "wpm_hide": other, "diff_pct": diff})
        total_wpm = sum(wpm.values())
        total_hide = sum(hide.values())
        rows.append({
            "resource_type": "total", "wpm": total_wpm,
            "wpm_hide": total_hide,
            "diff_pct": ((total_hide - total_wpm) / total_wpm * 100.0)
            if total_wpm else 0.0})
        return rows

    def csp_report_reduction(self, run: int = 0) -> float:
        wpm = self.wpm_runs[run].requests_by_type().get(
            ResourceType.CSP_REPORT, 0)
        hide = self.hide_runs[run].requests_by_type().get(
            ResourceType.CSP_REPORT, 0)
        if wpm == 0:
            return 0.0
        return (hide - wpm) / wpm * 100.0

    # ------------------------------------------------------------------
    # Table 9
    # ------------------------------------------------------------------
    def table9(self, matcher: Optional[BlocklistMatcher] = None
               ) -> List[Dict[str, object]]:
        matcher = matcher or BlocklistMatcher()
        rows = []
        for run_index, (wpm, hide) in enumerate(
                zip(self.wpm_runs, self.hide_runs)):
            wpm_counts = matcher.count(r.url for r in wpm.requests)
            hide_counts = matcher.count(r.url for r in hide.requests)
            rows.append({
                "run": run_index + 1,
                "wpm_easylist": wpm_counts["easylist"],
                "hide_easylist": hide_counts["easylist"],
                "easylist_diff_pct": _pct(wpm_counts["easylist"],
                                          hide_counts["easylist"]),
                "wpm_easyprivacy": wpm_counts["easyprivacy"],
                "hide_easyprivacy": hide_counts["easyprivacy"],
                "easyprivacy_diff_pct": _pct(wpm_counts["easyprivacy"],
                                             hide_counts["easyprivacy"]),
            })
        return rows

    def tracker_significance(self, run: int = 0) -> WilcoxonResult:
        wpm = self.wpm_runs[run].per_site_tracker_requests
        hide = self.hide_runs[run].per_site_tracker_requests
        sites = sorted(set(wpm) | set(hide))
        return paired_wilcoxon([wpm.get(s, 0) for s in sites],
                               [hide.get(s, 0) for s in sites])

    # ------------------------------------------------------------------
    # Table 10
    # ------------------------------------------------------------------
    def table10(self) -> List[Dict[str, object]]:
        wpm_tracking = classify_tracking_cookies(
            [run.cookies for run in self.wpm_runs])
        hide_tracking = classify_tracking_cookies(
            [run.cookies for run in self.hide_runs])
        wpm_track_counts = count_tracking_per_run(
            [run.cookies for run in self.wpm_runs], wpm_tracking)
        hide_track_counts = count_tracking_per_run(
            [run.cookies for run in self.hide_runs], hide_tracking)
        rows = []
        for run_index, (wpm, hide) in enumerate(
                zip(self.wpm_runs, self.hide_runs)):
            wpm_first = sum(1 for c in wpm.cookies if not c.is_third_party)
            wpm_third = sum(1 for c in wpm.cookies if c.is_third_party)
            hide_first = sum(1 for c in hide.cookies
                             if not c.is_third_party)
            hide_third = sum(1 for c in hide.cookies if c.is_third_party)
            rows.append({
                "run": run_index + 1,
                "wpm_first_party": wpm_first,
                "hide_first_party": hide_first,
                "first_party_diff_pct": _pct(wpm_first, hide_first),
                "wpm_third_party": wpm_third,
                "hide_third_party": hide_third,
                "third_party_diff_pct": _pct(wpm_third, hide_third),
                "wpm_tracking": wpm_track_counts[run_index],
                "hide_tracking": hide_track_counts[run_index],
                "tracking_diff_pct": _pct(wpm_track_counts[run_index],
                                          hide_track_counts[run_index]),
            })
        return rows

    def cookie_significance(self, run: int = 0) -> WilcoxonResult:
        wpm = self.wpm_runs[run].per_site_cookies
        hide = self.hide_runs[run].per_site_cookies
        sites = sorted(set(wpm) | set(hide))
        return paired_wilcoxon([wpm.get(s, 0) for s in sites],
                               [hide.get(s, 0) for s in sites])

    # ------------------------------------------------------------------
    # Fig. 6
    # ------------------------------------------------------------------
    def fig6(self, run: int = 0) -> List[Dict[str, object]]:
        """Per-API coverage: WPM records as a share of WPM_hide's."""
        wpm = _normalise_symbols(self.wpm_runs[run].js_symbols)
        hide = _normalise_symbols(self.hide_runs[run].js_symbols)
        rows = []
        for symbol, hide_count in hide.most_common():
            wpm_count = wpm.get(symbol, 0)
            rows.append({
                "symbol": symbol,
                "wpm": wpm_count,
                "wpm_hide": hide_count,
                "coverage": min(1.0, wpm_count / hide_count)
                if hide_count else 1.0,
            })
        return rows


def _pct(base: int, other: int) -> float:
    if base == 0:
        return 100.0 if other else 0.0
    return (other - base) / base * 100.0


def _normalise_symbols(symbols: Counter) -> Counter:
    """Case-fold and map instance-style names to interface-style."""
    out: Counter = Counter()
    for symbol, count in symbols.items():
        head, _, tail = symbol.partition(".")
        head = head[:1].upper() + head[1:]
        out[f"{head}.{tail}"] += count
    return out


class PairedCrawl:
    """Runs the synchronised two-client experiment."""

    def __init__(self, web: SyntheticWeb,
                 sites: Optional[List[str]] = None,
                 repetitions: int = 3, dwell: float = 60.0,
                 seed: int = 17,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.web = web
        self.repetitions = repetitions
        self.dwell = dwell
        self.seed = seed
        self.telemetry = coalesce(telemetry)
        if sites is None:
            sites = sorted(web.ground_truth.detector_sites())
        self.sites = sites

    # ------------------------------------------------------------------
    def run(self) -> PairedCrawlResult:
        result = PairedCrawlResult(site_count=len(self.sites))
        for run_index in range(self.repetitions):
            with self.telemetry.tracer.span("paired_repetition",
                                            run=run_index + 1):
                wpm_data = self._run_client(run_index, stealth=False)
                hide_data = self._run_client(run_index, stealth=True)
            result.wpm_runs.append(wpm_data)
            result.hide_runs.append(hide_data)
            # Bot intel is published in batches between repetitions —
            # networks act on a reported client from the next run on.
            self.web.sync_intel()
        return result

    def _run_client(self, run_index: int, stealth: bool) -> ClientRunData:
        label = "wpm_hide" if stealth else "wpm"
        if stealth:
            settings = StealthSettings.plausible()
            profile = openwpm_profile(
                "ubuntu", "regular",
                window_size=settings.window_size,
                window_position=settings.window_position)
            extension = OpenWPMExtension(
                BrowserParams(stealth=True, save_content="all"),
                js_instrument=StealthJSInstrument())
        else:
            profile = openwpm_profile("ubuntu", "regular")
            extension = OpenWPMExtension(BrowserParams(save_content="all"))
        browser = Browser(
            profile, self.web.network,
            client_id=f"{label}-machine",  # one IP per client, all runs
            extension=extension,
            seed=self.seed + run_index * 101 + (5000 if stealth else 0))

        tm = self.telemetry
        data = ClientRunData(client=label, run=run_index + 1)

        def visit_site(job, worker_index):
            domain = job.site_url
            extension.clear_records()
            with tm.stage("paired_visit", client=label):
                browser.visit(f"https://www.{domain}/", wait=self.dwell)
            tm.metrics.counter("paired_visits", client=label).inc()
            data.requests.extend(extension.http_instrument.records)
            data.cookies.extend(extension.cookie_instrument.records)
            for record in extension.js_instrument.records:
                data.js_symbols[record.symbol] += 1
            data.per_site_requests[domain] = len(
                extension.http_instrument.records)
            data.per_site_cookies[domain] = len(
                extension.cookie_instrument.records)
            matcher = _MATCHER
            data.per_site_tracker_requests[domain] = sum(
                1 for r in extension.http_instrument.records
                if matcher.matches_any(r.url))
            if extension.js_instrument.failed_windows:
                data.failed_hook_sites += 1
                tm.metrics.counter("paired_hook_failures",
                                   client=label).inc()
                extension.js_instrument.failed_windows.clear()

        # Both clients must see the sites in the same order (lockstep),
        # so the run drains an in-memory scheduler with one worker —
        # inline, order-preserving, and identical to the plain loop.
        scheduler = CrawlScheduler(seed=self.seed, max_attempts=1,
                                   telemetry=tm)
        scheduler.enqueue(self.sites)
        try:
            scheduler.run(visit_site, workers=1)
        finally:
            scheduler.close()
        return data


_MATCHER = BlocklistMatcher()

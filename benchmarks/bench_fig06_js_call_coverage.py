"""Fig. 6: JS API call coverage of WPM relative to WPM_hide."""

from conftest import report


def test_benchmark_fig6(benchmark, bench_paired):
    rows = benchmark(bench_paired.fig6, 0)

    lines = ["(paper: Screen.top ~99% covered, Screen.availLeft only "
             "~63% — calls into freshly created iframes go unobserved "
             "by vanilla OpenWPM)", "",
             "| symbol | WPM calls | WPM_hide calls | coverage |",
             "|---|---|---|---|"]
    by_symbol = {}
    for row in rows[:15]:
        lines.append(f"| {row['symbol']} | {row['wpm']} | "
                     f"{row['wpm_hide']} | {row['coverage']:.2f} |")
    for row in rows:
        by_symbol[row["symbol"]] = row
    report("fig06_js_call_coverage", "Fig 6 - JS call coverage", lines)

    avail_left = by_symbol.get("Screen.availLeft")
    screen_top = by_symbol.get("Screen.top")
    assert avail_left is not None and screen_top is not None
    # The iframe-heavy API is substantially under-covered by vanilla.
    assert avail_left["coverage"] < 0.8
    assert screen_top["coverage"] > avail_left["coverage"]
    # webdriver probing itself is well covered (top-window accesses).
    webdriver = by_symbol.get("Navigator.webdriver")
    assert webdriver is not None and webdriver["coverage"] > 0.8

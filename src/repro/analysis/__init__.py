"""Presentation helpers: text tables, bar charts, CSV series export.

Used by the examples and benchmark reports to render the paper's
figures as terminal-friendly artifacts.
"""

from repro.analysis.charts import (
    bar_chart,
    grouped_bar_chart,
    render_table,
    series_to_csv,
)

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "render_table",
    "series_to_csv",
]
